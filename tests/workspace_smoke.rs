//! Workspace wiring smoke test: every umbrella re-export must be
//! reachable through `mpil_suite`, and one cross-crate end-to-end run
//! (overlay generation → MPIL over the discrete-event sim) must succeed.
//!
//! This is the cheapest possible guard against manifest regressions —
//! a member crate dropped from the root `[dependencies]`, or a renamed
//! lib target, fails this file at compile time before any deeper test
//! runs.

use mpil_suite::mpil::{DynamicConfig, DynamicNetwork, LookupStatus, MpilConfig};
use mpil_suite::mpil_id::Id;
use mpil_suite::mpil_overlay::{generators, NodeIdx};
use mpil_suite::mpil_sim::{AlwaysOn, ConstantLatency, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Touches one symbol from every crate the umbrella re-exports; holding
/// them in one array keeps the list in sync with `src/lib.rs` by
/// inspection (10 member crates; `mpil-bench` and `mpil-cli` are
/// dev-dependencies exercised by their own test suites).
#[test]
fn every_umbrella_reexport_is_reachable() {
    let reachable = [
        ("mpil", {
            MpilConfig::default().validate().expect("default config");
            true
        }),
        ("mpil_id", {
            mpil_suite::mpil_id::Id::from_low_u64(1) != mpil_suite::mpil_id::Id::from_low_u64(2)
        }),
        ("mpil_overlay", {
            let mut rng = SmallRng::seed_from_u64(1);
            generators::random_regular(16, 4, &mut rng).is_ok()
        }),
        ("mpil_sim", SimTime::ZERO.as_micros() == 0),
        (
            "mpil_chord",
            mpil_suite::mpil_chord::ChordConfig::default().successor_list_len >= 1,
        ),
        (
            "mpil_kademlia",
            mpil_suite::mpil_kademlia::KademliaConfig::default().k >= 1,
        ),
        (
            "mpil_pastry",
            mpil_suite::mpil_pastry::PastryConfig::default().leaf_set_size >= 2,
        ),
        ("mpil_gossip", {
            let config = mpil_suite::mpil_gossip::GossipConfig::default();
            config.assert_valid();
            config.view_size >= 1
        }),
        ("mpil_net", mpil_suite::mpil_net::WIRE_VERSION >= 1),
        ("mpil_analysis", {
            let model = mpil_suite::mpil_analysis::AnalysisModel::base4();
            model.expected_local_maxima_regular(1000, 8) > 0.0
        }),
        ("mpil_workload", {
            let mut stats = mpil_suite::mpil_workload::RunningStats::new();
            stats.push(1.0);
            stats.count() == 1
        }),
        (
            "mpil_harness",
            mpil_suite::mpil_harness::EngineSpec::Chord.label() == "Chord",
        ),
    ];
    for (name, ok) in reachable {
        assert!(ok, "umbrella re-export `{name}` misbehaved");
    }
}

/// One full cross-crate path: generate an overlay with `mpil_overlay`,
/// drive MPIL over the `mpil_sim` event kernel, and observe a
/// successful lookup for an object inserted from a different node.
#[test]
fn overlay_to_sim_lookup_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(42);
    let topo = generators::random_regular(64, 6, &mut rng).expect("generate overlay");

    let ids = topo.ids().to_vec();
    let neighbors: Vec<Vec<NodeIdx>> = topo
        .iter_nodes()
        .map(|n| topo.neighbors(n).to_vec())
        .collect();
    let config = DynamicConfig {
        mpil: MpilConfig::default()
            .with_max_flows(10)
            .with_num_replicas(5),
        heartbeat_period: None,
    };
    let mut net = DynamicNetwork::new(
        ids,
        neighbors,
        config,
        Box::new(AlwaysOn),
        Box::new(ConstantLatency(SimDuration::from_millis(10))),
        7,
    );

    let object = Id::from_low_u64(0xcafe);
    net.insert(NodeIdx::new(0), object);
    net.run_to_quiescence();

    let deadline = SimTime::from_secs(3600);
    let lookup = net.issue_lookup(NodeIdx::new(33), object, deadline);
    net.run_until(deadline);
    // hops == 0 is legal: with 5 replicas on 64 nodes the querier itself
    // may hold one, so only the success of the lookup is asserted.
    match net.lookup_status(lookup) {
        LookupStatus::Succeeded { .. } => {}
        other => panic!("lookup did not succeed on a healthy overlay: {other:?}"),
    }
}
