//! The paper's central claim, as an invariant: one MPIL configuration
//! must work across *every* overlay family — structured (Pastry, Chord,
//! Kademlia pointer graphs) and unstructured (random, power-law) —
//! without parameter retuning.

use mpil_bench::dhts::{mean_out_degree, run_mpil_over, OverlaySource};
use mpil_bench::perturb::PerturbRun;

const SOURCES: [OverlaySource; 5] = [
    OverlaySource::Pastry,
    OverlaySource::Chord,
    OverlaySource::Kademlia,
    OverlaySource::RandomRegular(12),
    OverlaySource::PowerLaw,
];

fn mini(p: f64, seed: u64) -> PerturbRun {
    PerturbRun {
        nodes: 150,
        operations: 20,
        idle_secs: 30,
        offline_secs: 30,
        probability: p,
        deadline_cap_secs: 60,
        loss_probability: 0.0,
        seed,
    }
}

#[test]
fn one_configuration_works_on_every_family() {
    for src in SOURCES {
        let r = run_mpil_over(src, mini(0.0, 51));
        assert!(
            r.success_rate >= 90.0,
            "{}: success {} below bar",
            src.label(),
            r.success_rate
        );
        assert!(
            r.mean_replicas >= 2.0,
            "{}: too few replicas ({})",
            src.label(),
            r.mean_replicas
        );
    }
}

#[test]
fn cost_stays_in_one_band_across_families() {
    // Lookup traffic must not blow up on any family: the quota bounds it
    // at max_flows × path work, independent of the graph.
    let mut costs = Vec::new();
    for src in SOURCES {
        let r = run_mpil_over(src, mini(0.0, 52));
        let per_lookup = r.lookup_messages as f64 / 20.0;
        assert!(
            per_lookup <= 60.0,
            "{}: {per_lookup} msgs/lookup breaks the quota band",
            src.label()
        );
        costs.push(per_lookup);
    }
    let max = costs.iter().cloned().fold(f64::MIN, f64::max);
    let min = costs.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min <= 4.0,
        "cost varies {min:.1}-{max:.1} msgs/lookup across families — not overlay-independent"
    );
}

#[test]
fn structured_pointer_graphs_have_sane_shape() {
    for src in [
        OverlaySource::Pastry,
        OverlaySource::Chord,
        OverlaySource::Kademlia,
    ] {
        let (ids, nbrs) = src.build(150, 53);
        assert_eq!(ids.len(), 150);
        let d = mean_out_degree(&nbrs);
        assert!(
            (4.0..=80.0).contains(&d),
            "{}: out-degree {d} outside plausible range",
            src.label()
        );
    }
}

#[test]
fn moderate_perturbation_does_not_break_any_family() {
    for src in SOURCES {
        let r = run_mpil_over(src, mini(0.5, 54));
        assert!(
            r.success_rate >= 75.0,
            "{} at p=0.5: {}",
            src.label(),
            r.success_rate
        );
    }
}
