//! Property-based tests over the whole stack: for arbitrary overlays,
//! parameters and seeds, MPIL's structural invariants must hold.

use mpil::{plan_forwarding, MpilConfig, StaticEngine};
use mpil_id::{Id, IdSpace};
use mpil_overlay::{generators, NodeIdx, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// An arbitrary small connected topology from one of the generator
/// families.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (0u8..5, 20usize..120, any::<u64>()).prop_map(|(family, n, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        match family {
            0 => generators::random_regular(n, 4.min(n - 1), &mut rng).unwrap(),
            1 => generators::power_law(n.max(8), Default::default(), &mut rng).unwrap(),
            2 => generators::ring(n.max(3), &mut rng).unwrap(),
            3 => generators::grid(4, (n / 4).max(2), &mut rng).unwrap(),
            _ => generators::complete(n.clamp(2, 40), &mut rng).unwrap(),
        }
    })
}

fn arb_config() -> impl Strategy<Value = MpilConfig> {
    (1u32..20, 1u32..6, any::<bool>()).prop_map(|(mf, r, ds)| {
        MpilConfig::default()
            .with_max_flows(mf)
            .with_num_replicas(r)
            .with_duplicate_suppression(ds)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn insert_respects_bounds_on_arbitrary_overlays(
        topo in arb_topology(),
        config in arb_config(),
        seed in any::<u64>(),
        oseed in any::<u64>(),
    ) {
        let mut engine = StaticEngine::new(&topo, config, seed);
        let object = Id::from_low_u64(oseed | 1);
        let origin = NodeIdx::new((oseed % topo.len() as u64) as u32);
        let report = engine.insert(origin, object);
        // At least one replica always lands (the flow ends at SOME local
        // maximum, possibly the origin itself).
        prop_assert!(report.replicas >= 1);
        prop_assert!(u64::from(report.replicas) <= config.replica_bound());
        prop_assert!(report.flows_created <= config.max_flows);
        // Replica holders must actually hold it.
        let holders = engine.replica_holders(object);
        prop_assert_eq!(holders.len() as u32, report.replicas);
    }

    #[test]
    fn lookup_never_false_positive(
        topo in arb_topology(),
        config in arb_config(),
        seed in any::<u64>(),
    ) {
        let mut engine = StaticEngine::new(&topo, config, seed);
        // Nothing inserted: lookups must all miss.
        let object = Id::from_low_u64(seed | 3);
        let report = engine.lookup(NodeIdx::new(0), object);
        prop_assert!(!report.success);
        prop_assert_eq!(report.first_reply_hops, None);
    }

    #[test]
    fn lookup_from_replica_holder_is_instant(
        topo in arb_topology(),
        seed in any::<u64>(),
    ) {
        let config = MpilConfig::default().with_max_flows(10).with_num_replicas(3);
        let mut engine = StaticEngine::new(&topo, config, seed);
        let object = Id::from_low_u64(seed | 7);
        engine.insert(NodeIdx::new(0), object);
        let holders = engine.replica_holders(object);
        prop_assert!(!holders.is_empty());
        let report = engine.lookup(holders[0], object);
        prop_assert!(report.success);
        prop_assert_eq!(report.first_reply_hops, Some(0));
        prop_assert_eq!(report.messages, 0);
    }

    #[test]
    fn quota_conservation_exhaustive(quota in 0u32..100, given in 0u32..2, cands in 0usize..200) {
        let plan = plan_forwarding(quota, given, cands);
        prop_assert!(plan.m as usize <= cands);
        prop_assert!(plan.m <= quota + given);
        if plan.m > 0 {
            let sum: u32 = plan.child_quotas.iter().sum();
            prop_assert_eq!(sum + plan.m, quota + given);
            // Round-robin residue: quotas differ by at most one.
            let min = plan.child_quotas.iter().min().copied().unwrap();
            let max = plan.child_quotas.iter().max().copied().unwrap();
            prop_assert!(max - min <= 1);
            // Residue goes to the front.
            prop_assert!(plan.child_quotas.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    #[test]
    fn duplicate_suppression_never_increases_traffic(
        topo in arb_topology(),
        seed in any::<u64>(),
    ) {
        let base = MpilConfig::default().with_max_flows(8).with_num_replicas(3);
        let object = Id::from_low_u64(seed | 9);
        let origin = NodeIdx::new((seed % topo.len() as u64) as u32);
        let with_ds = {
            let mut e = StaticEngine::new(&topo, base.with_duplicate_suppression(true), seed);
            e.insert(origin, object)
        };
        let without_ds = {
            let mut e = StaticEngine::new(&topo, base.with_duplicate_suppression(false), seed);
            e.insert(origin, object)
        };
        prop_assert!(with_ds.messages <= without_ds.messages);
    }

    #[test]
    fn metric_agreement_between_crates(a in any::<u64>(), b in any::<u64>()) {
        // The metric the engines route on is exactly the id-crate metric.
        let x = Id::from_low_u64(a);
        let y = Id::from_low_u64(b);
        let space = IdSpace::base4();
        prop_assert_eq!(
            space.common_digits(x, y),
            mpil_id::common_digits(x, y, 2)
        );
    }

    #[test]
    fn analysis_probabilities_are_probabilities(d in 1usize..500) {
        let model = mpil_analysis::AnalysisModel::base4();
        let c = model.local_max_probability(d);
        prop_assert!((0.0..=1.0).contains(&c));
        let hops = model.expected_hops_regular(d);
        prop_assert!(hops >= 1.0);
    }
}
