//! Integration tests of the perturbation experiments (small scale): the
//! paper's headline claims must hold on miniature runs.

use mpil_bench::perturb::{run_system, PerturbRun, System};

fn run(nodes: usize, ops: usize, idle: u64, offline: u64, p: f64, seed: u64) -> PerturbRun {
    PerturbRun {
        nodes,
        operations: ops,
        idle_secs: idle,
        offline_secs: offline,
        probability: p,
        deadline_cap_secs: 60,
        loss_probability: 0.0,
        seed,
    }
}

#[test]
fn both_systems_near_perfect_unperturbed() {
    for system in [
        System::Pastry,
        System::PastryRr,
        System::MpilDs,
        System::MpilNoDs,
    ] {
        let r = run_system(system, run(150, 25, 30, 30, 0.0, 21));
        assert!(
            r.success_rate >= 96.0,
            "{} at p=0: {}",
            system.label(),
            r.success_rate
        );
    }
}

#[test]
fn paper_headline_mpil_beats_pastry_under_heavy_perturbation() {
    // Figure 11's core claim, at 30:30 and 300:300 with high p.
    for (idle, offline) in [(30u64, 30u64), (300, 300)] {
        let pastry = run_system(System::Pastry, run(200, 30, idle, offline, 0.9, 22));
        let mpil = run_system(System::MpilNoDs, run(200, 30, idle, offline, 0.9, 22));
        assert!(
            mpil.success_rate > pastry.success_rate,
            "{idle}:{offline}: MPIL {} <= Pastry {}",
            mpil.success_rate,
            pastry.success_rate
        );
    }
}

#[test]
fn mpil_without_ds_at_least_as_robust_as_with_ds() {
    // The paper: "MPIL without DS always gives higher success rates than
    // MPIL with the duplicate suppression" (dynamic overlays). Averaged
    // over settings to damp small-sample noise.
    let mut with_ds = 0.0;
    let mut without_ds = 0.0;
    for seed in [23u64, 24, 25] {
        let a = run_system(System::MpilDs, run(200, 30, 300, 300, 1.0, seed));
        let b = run_system(System::MpilNoDs, run(200, 30, 300, 300, 1.0, seed));
        with_ds += a.success_rate;
        without_ds += b.success_rate;
    }
    assert!(
        without_ds >= with_ds,
        "w/o DS {without_ds} should beat w/ DS {with_ds}"
    );
}

#[test]
fn rr_improves_pastry_under_perturbation() {
    // Replication on Route leaves replicas along the (shared-origin)
    // path, so it should not hurt and usually helps.
    let mut plain = 0.0;
    let mut rr = 0.0;
    for seed in [26u64, 27, 28] {
        plain += run_system(System::Pastry, run(200, 30, 300, 300, 0.8, seed)).success_rate;
        rr += run_system(System::PastryRr, run(200, 30, 300, 300, 0.8, seed)).success_rate;
    }
    assert!(
        rr >= plain,
        "RR {rr} should not be worse than plain {plain}"
    );
}

#[test]
fn mpil_traffic_exceeds_pastry_lookup_traffic() {
    // Figure 12 left: MPIL multicasts, so its lookup traffic dwarfs
    // Pastry's single path...
    let run_cfg = run(200, 30, 30, 30, 0.3, 29);
    let pastry = run_system(System::Pastry, run_cfg);
    let mpil = run_system(System::MpilNoDs, run_cfg);
    assert!(
        mpil.lookup_messages > pastry.lookup_messages,
        "MPIL {} vs Pastry {} lookup msgs",
        mpil.lookup_messages,
        pastry.lookup_messages
    );
    // ...while Figure 12 right: Pastry's total including maintenance
    // dwarfs MPIL's maintenance-free total.
    assert!(
        pastry.total_messages > mpil.total_messages,
        "Pastry total {} vs MPIL total {}",
        pastry.total_messages,
        mpil.total_messages
    );
}

#[test]
fn mpil_replica_count_matches_paper_expectation() {
    // Section 6.2: with 10 max flows and 5 per-flow replicas over the
    // Pastry overlay, "the number of replicas actually inserted ... is
    // typically 6-7".
    let r = run_system(System::MpilDs, run(1000, 40, 30, 30, 0.0, 30));
    assert!(
        r.mean_replicas >= 4.0 && r.mean_replicas <= 12.0,
        "mean replicas {} outside the paper's ballpark",
        r.mean_replicas
    );
}

#[test]
fn perturbation_monotone_in_probability_for_pastry() {
    // More flapping cannot systematically help (allow small noise).
    let lo = run_system(System::Pastry, run(200, 40, 30, 30, 0.2, 31));
    let hi = run_system(System::Pastry, run(200, 40, 30, 30, 1.0, 31));
    assert!(
        lo.success_rate >= hi.success_rate - 5.0,
        "p=0.2 {} vs p=1.0 {}",
        lo.success_rate,
        hi.success_rate
    );
}
