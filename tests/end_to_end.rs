//! Cross-crate integration tests: overlays + MPIL + analysis together.

use mpil::{MpilConfig, StaticEngine};
use mpil_analysis::{AnalysisModel, DegreeDistribution};
use mpil_id::{Id, IdSpace};
use mpil_overlay::{generators, stats, NodeIdx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Counts metric local maxima on a topology for one object.
fn count_local_maxima(topo: &mpil_overlay::Topology, object: Id, space: IdSpace) -> usize {
    topo.iter_nodes()
        .filter(|&n| {
            let own = space.common_digits(object, topo.id(n));
            topo.neighbors(n)
                .iter()
                .all(|&m| space.common_digits(object, topo.id(m)) <= own)
        })
        .count()
}

#[test]
fn analysis_matches_simulation_on_regular_graphs() {
    // Section 5's closed form against an actual generated topology: the
    // mean local-maxima count over many random objects must sit within a
    // few percent of N·C(d).
    let mut rng = SmallRng::seed_from_u64(7);
    let n = 2000;
    let d = 20;
    let topo = generators::random_regular(n, d, &mut rng).unwrap();
    let model = AnalysisModel::base4();
    // The simulation counts MPIL's actual definition (ties allowed), so
    // compare against the tie-aware closed form; the paper's Figure 7
    // curve is the strict variant (see EXPERIMENTS.md).
    let expected = model.expected_local_maxima_regular_with_ties(n, d);

    let trials = 60;
    let mut total = 0usize;
    for _ in 0..trials {
        let object = Id::random(&mut rng);
        total += count_local_maxima(&topo, object, IdSpace::base4());
    }
    let measured = total as f64 / trials as f64;
    let rel = (measured - expected).abs() / expected;
    assert!(
        rel < 0.10,
        "formula {expected:.1} vs measured {measured:.1} (rel err {rel:.3})"
    );
}

#[test]
fn analysis_general_formula_matches_power_law_simulation() {
    // The degree-distribution-weighted formula against a power-law graph.
    let mut rng = SmallRng::seed_from_u64(8);
    let n = 2000;
    let topo = generators::power_law(n, Default::default(), &mut rng).unwrap();
    let hist = stats::degree_histogram(&topo);
    let dist = DegreeDistribution::from_histogram(&hist);
    let model = AnalysisModel::base4();
    // Tie-aware, degree-weighted expectation.
    let expected: f64 = n as f64
        * dist
            .iter()
            .map(|(d, p)| p * model.local_max_probability_with_ties(d))
            .sum::<f64>();

    let trials = 60;
    let mut total = 0usize;
    for _ in 0..trials {
        let object = Id::random(&mut rng);
        total += count_local_maxima(&topo, object, IdSpace::base4());
    }
    let measured = total as f64 / trials as f64;
    let rel = (measured - expected).abs() / expected;
    // The independence assumption is only approximate on clustered
    // graphs; 15% is tight enough to catch real regressions.
    assert!(
        rel < 0.15,
        "formula {expected:.1} vs measured {measured:.1} (rel err {rel:.3})"
    );
}

#[test]
fn inserts_land_only_on_local_maxima() {
    let mut rng = SmallRng::seed_from_u64(9);
    let topo = generators::power_law(600, Default::default(), &mut rng).unwrap();
    let config = MpilConfig::default()
        .with_max_flows(20)
        .with_num_replicas(4);
    let mut engine = StaticEngine::new(&topo, config, 10);
    let space = IdSpace::base4();
    for k in 0..30u64 {
        let object = Id::random(&mut rng);
        let origin = NodeIdx::new((k % 600) as u32);
        engine.insert(origin, object);
        for holder in engine.replica_holders(object) {
            let own = space.common_digits(object, topo.id(holder));
            let beaten = topo
                .neighbors(holder)
                .iter()
                .any(|&m| space.common_digits(object, topo.id(m)) > own);
            assert!(!beaten, "replica stored at a non-local-maximum {holder}");
        }
    }
}

#[test]
fn replica_and_flow_bounds_hold_everywhere() {
    let mut rng = SmallRng::seed_from_u64(10);
    let topos = vec![
        generators::random_regular(300, 10, &mut rng).unwrap(),
        generators::power_law(300, Default::default(), &mut rng).unwrap(),
        generators::grid(15, 20, &mut rng).unwrap(),
        generators::star(100, &mut rng).unwrap(),
    ];
    for topo in &topos {
        for (mf, r) in [(1u32, 1u32), (5, 2), (10, 5), (30, 5)] {
            let config = MpilConfig::default()
                .with_max_flows(mf)
                .with_num_replicas(r);
            let mut engine = StaticEngine::new(topo, config, 11);
            for k in 0..10u64 {
                let object = Id::random(&mut rng);
                let origin = NodeIdx::new((k * 13 % topo.len() as u64) as u32);
                let ins = engine.insert(origin, object);
                assert!(u64::from(ins.replicas) <= config.replica_bound());
                assert!(ins.flows_created <= mf);
                let look = engine.lookup(origin, object);
                assert!(look.flows_created <= mf);
            }
        }
    }
}

#[test]
fn success_rate_scales_with_budget_like_table_1() {
    // Table 1's qualitative content: success grows in both max_flows and
    // per-flow replicas, and r=1 is far worse than r>=2.
    let mut rng = SmallRng::seed_from_u64(12);
    let topo = generators::power_law(1200, Default::default(), &mut rng).unwrap();
    let insert_config = MpilConfig::default()
        .with_max_flows(30)
        .with_num_replicas(5);
    let mut engine = StaticEngine::new(&topo, insert_config, 13);
    let objects: Vec<(Id, NodeIdx)> = (0..60)
        .map(|_| (Id::random(&mut rng), NodeIdx::new(rng.gen_range(0..1200))))
        .collect();
    for &(object, origin) in &objects {
        engine.insert(origin, object);
    }
    let rate = |mf: u32, r: u32, engine: &mut StaticEngine<'_>| -> f64 {
        engine.set_config(
            MpilConfig::default()
                .with_max_flows(mf)
                .with_num_replicas(r),
        );
        let mut ok = 0;
        for (k, &(object, _)) in objects.iter().enumerate() {
            let origin = NodeIdx::new(((k * 31 + 5) % 1200) as u32);
            if engine.lookup(origin, object).success {
                ok += 1;
            }
        }
        f64::from(ok) / objects.len() as f64
    };
    let r1 = rate(5, 1, &mut engine);
    let r2 = rate(5, 2, &mut engine);
    let r5 = rate(15, 5, &mut engine);
    assert!(r2 >= r1, "more replicas per flow helps: {r2} vs {r1}");
    assert!(r5 >= r2, "more flows helps: {r5} vs {r2}");
    assert!(r1 < 0.95, "r=1 leaves a visible gap (paper: 52-61%)");
    assert!(r5 > 0.95, "15 flows x 5 replicas is near-perfect");
}

#[test]
fn overlay_generators_deliver_claimed_structures() {
    let mut rng = SmallRng::seed_from_u64(14);
    // Regular: exact degrees, connected.
    let reg = generators::random_regular(500, 100, &mut rng).unwrap();
    assert!(reg.iter_nodes().all(|v| reg.degree(v) == 100));
    assert!(stats::is_connected(&reg));
    // Power-law: connected, min degree >= 1, heavy tail.
    let pl = generators::power_law(3000, Default::default(), &mut rng).unwrap();
    assert!(stats::is_connected(&pl));
    let hist = stats::degree_histogram(&pl);
    assert_eq!(hist.first().copied().unwrap_or(0), 0, "no degree-0 nodes");
    assert!(
        hist.len() > 50,
        "hubs exist (max degree {})",
        hist.len() - 1
    );
    // Transit-stub: latencies positive and bounded.
    let ts = mpil_overlay::transit_stub::generate(100, Default::default(), &mut rng).unwrap();
    let l = ts.latency_us(NodeIdx::new(0), NodeIdx::new(99));
    assert!((2_000..1_000_000).contains(&l));
}

#[test]
fn deletion_protocol_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(15);
    let topo = generators::random_regular(200, 10, &mut rng).unwrap();
    let config = MpilConfig::default()
        .with_max_flows(10)
        .with_num_replicas(3);
    let mut engine = StaticEngine::new(&topo, config, 16);
    let object = Id::random(&mut rng);
    let ins = engine.insert(NodeIdx::new(0), object);
    assert!(ins.replicas >= 1);
    assert!(engine.lookup(NodeIdx::new(100), object).success);
    assert_eq!(engine.delete(object) as u32, ins.replicas);
    assert!(!engine.lookup(NodeIdx::new(100), object).success);
}
