//! Tiny-scale smoke tests of every figure/table runner: each must
//! produce structurally sane output fast, so a regression in any
//! experiment path is caught by `cargo test` without running the full
//! binaries.

use mpil::MpilConfig;
use mpil_analysis::AnalysisModel;
use mpil_bench::perturb::{run_system, PerturbRun, System};
use mpil_bench::static_exp::{insertion_behavior, lookup_behavior, paper_insert_config, Family};

fn mini(system_idle: u64, offline: u64, p: f64) -> PerturbRun {
    PerturbRun {
        nodes: 100,
        operations: 12,
        idle_secs: system_idle,
        offline_secs: offline,
        probability: p,
        deadline_cap_secs: 60,
        loss_probability: 0.0,
        seed: 77,
    }
}

#[test]
fn fig1_point_runs() {
    let r = run_system(System::Pastry, mini(30, 30, 0.5));
    assert!((0.0..=100.0).contains(&r.success_rate));
    assert!(r.total_messages > 0);
}

#[test]
fn fig7_series_is_monotone() {
    let model = AnalysisModel::base4();
    let mut prev = f64::INFINITY;
    for d in (10..=100).step_by(10) {
        let v = model.expected_local_maxima_regular(4000, d);
        assert!(v > 0.0 && v < prev, "d={d}: {v} (prev {prev})");
        prev = v;
    }
    // Doubling N doubles the expectation exactly.
    let a = model.expected_local_maxima_regular(4000, 30);
    let b = model.expected_local_maxima_regular(8000, 30);
    assert!((b - 2.0 * a).abs() < 1e-9);
}

#[test]
fn fig8_series_in_paper_band() {
    let model = AnalysisModel::base4();
    for n in [2000usize, 8000, 16000] {
        let v = model.expected_replicas_complete(n);
        assert!((1.4..1.8).contains(&v), "N={n}: {v}");
    }
}

#[test]
fn fig9_point_runs() {
    let b = insertion_behavior(Family::PowerLaw, 300, 1, 20, paper_insert_config(), 3);
    assert_eq!(b.insertions, 20);
    assert!(b.mean_replicas >= 1.0);
    assert!(b.mean_traffic >= b.mean_replicas - 1.0);
}

#[test]
fn tables_point_runs() {
    let lookup = MpilConfig::default()
        .with_max_flows(10)
        .with_num_replicas(3);
    let b = lookup_behavior(
        Family::Random { degree: 20 },
        300,
        1,
        20,
        paper_insert_config(),
        lookup,
        4,
    );
    assert_eq!(b.lookups, 20);
    assert!(b.success_rate > 50.0, "got {}", b.success_rate);
    assert!(b.mean_flows <= 10.0, "flow budget respected");
}

#[test]
fn fig10_metrics_consistent() {
    let lookup = MpilConfig::default()
        .with_max_flows(10)
        .with_num_replicas(5);
    let b = lookup_behavior(
        Family::PowerLaw,
        300,
        1,
        20,
        paper_insert_config(),
        lookup,
        5,
    );
    if b.success_rate > 0.0 {
        assert!(b.mean_hops >= 0.0);
        assert!(b.mean_traffic_to_first_reply <= b.mean_traffic + 1e-9);
    }
}

#[test]
fn fig11_ordering_holds_at_extreme_perturbation() {
    let run = mini(300, 300, 1.0);
    let pastry = run_system(System::Pastry, run);
    let mpil = run_system(System::MpilNoDs, run);
    assert!(
        mpil.success_rate >= pastry.success_rate,
        "MPIL {} vs Pastry {}",
        mpil.success_rate,
        pastry.success_rate
    );
}

#[test]
fn fig12_traffic_relations_hold() {
    let run = mini(30, 30, 0.4);
    let pastry = run_system(System::Pastry, run);
    let mpil = run_system(System::MpilDs, run);
    assert!(mpil.lookup_messages > pastry.lookup_messages);
    assert!(pastry.total_messages > mpil.total_messages);
}
