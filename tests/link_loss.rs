//! Failure injection: link loss (Castro et al.'s dependability knob)
//! on top of the paper's systems. Small-scale versions of the
//! `ext_link_loss` extension experiment.

use mpil_bench::perturb::{run_system, PerturbRun, System};

fn run(loss: f64, flap: f64, seed: u64) -> PerturbRun {
    PerturbRun {
        nodes: 150,
        operations: 25,
        idle_secs: 30,
        offline_secs: 30,
        probability: flap,
        deadline_cap_secs: 60,
        loss_probability: loss,
        seed,
    }
}

#[test]
fn light_loss_is_absorbed_by_both_systems() {
    // 5% loss, no flapping: Pastry's per-hop retransmission and MPIL's
    // flow redundancy should both stay near-perfect.
    let pastry = run_system(System::Pastry, run(0.05, 0.0, 31));
    let mpil = run_system(System::MpilNoDs, run(0.05, 0.0, 31));
    assert!(
        pastry.success_rate >= 90.0,
        "Pastry at 5% loss: {}",
        pastry.success_rate
    );
    assert!(
        mpil.success_rate >= 90.0,
        "MPIL at 5% loss: {}",
        mpil.success_rate
    );
}

#[test]
fn heavy_loss_degrades_both_systems() {
    let lossless = run_system(System::Pastry, run(0.0, 0.0, 32));
    let lossy = run_system(System::Pastry, run(0.5, 0.0, 32));
    assert!(
        lossy.success_rate < lossless.success_rate,
        "50% loss must hurt Pastry: {} vs {}",
        lossy.success_rate,
        lossless.success_rate
    );
}

#[test]
fn mpil_retains_the_lead_under_combined_loss_and_flapping() {
    // The Figure 11 ordering must survive adding 10% link loss.
    let pastry = run_system(System::Pastry, run(0.1, 0.9, 33));
    let mpil = run_system(System::MpilNoDs, run(0.1, 0.9, 33));
    assert!(
        mpil.success_rate > pastry.success_rate,
        "MPIL {} vs Pastry {} under loss+flapping",
        mpil.success_rate,
        pastry.success_rate
    );
}

#[test]
fn loss_injection_is_deterministic() {
    let a = run_system(System::MpilDs, run(0.2, 0.3, 34));
    let b = run_system(System::MpilDs, run(0.2, 0.3, 34));
    assert_eq!(a, b);
}
