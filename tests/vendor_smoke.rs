//! Smoke tests for the `vendor/` stub layer (see `vendor/README.md`).
//!
//! Experiments in this repo cite seeds; their results are only
//! reproducible while the vendored `rand` stream and the vendored
//! `serde` encoding stay fixed. These tests pin both **from the
//! consumer side** — a stub regression that would silently skew every
//! experiment fails here first.

use mpil::{MpilConfig, RoutingMetric, SplitPolicy};
use mpil_id::IdSpace;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{json, Deserialize, Serialize};

/// The raw xoshiro256++ stream for a fixed seed, pinned to exact
/// values. If this test fails, the vendored `rand` changed behavior and
/// every seeded experiment in the repo silently changed with it.
#[test]
fn small_rng_stream_is_pinned() {
    let mut rng = SmallRng::seed_from_u64(0xD5_2005);
    let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        vec![
            0x3dac_06b9_ab0a_438f,
            0x1161_9537_833f_005b,
            0x05e4_09cb_e873_d93b,
            0x66c9_1937_ed0e_a0d4,
        ],
        "vendored SmallRng stream changed — seeded experiments are no \
         longer reproducible"
    );

    let mut rng = SmallRng::seed_from_u64(0xD5_2005);
    let draws: Vec<u32> = (0..4).map(|_| rng.gen_range(0..1000u32)).collect();
    assert_eq!(draws, vec![935, 603, 683, 876]);

    let mut rng = SmallRng::seed_from_u64(0xD5_2005);
    let f: f64 = rng.gen();
    assert!((f - 0.240_906_162_575_847_74).abs() < 1e-15, "got {f}");
}

/// Same seed, same stream — across independent constructions.
#[test]
fn small_rng_is_deterministic_per_seed() {
    let mut a = SmallRng::seed_from_u64(99);
    let mut b = SmallRng::seed_from_u64(99);
    for _ in 0..256 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    let mut c = SmallRng::seed_from_u64(100);
    let diverged = (0..64).any(|_| a.next_u64() != c.next_u64());
    assert!(diverged, "different seeds must give different streams");
}

/// A core config struct survives a serde round-trip through the stub's
/// JSON text format, field for field.
#[test]
fn mpil_config_round_trips_through_serde() {
    let config = MpilConfig {
        space: IdSpace::base16(),
        max_flows: 12,
        num_replicas: 3,
        duplicate_suppression: false,
        split_policy: SplitPolicy::MetricTies,
        metric: RoutingMetric::CommonDigits,
    };
    let text = json::to_string(&config);
    let back: MpilConfig = json::from_str(&text).expect("well-formed JSON round-trip");
    assert_eq!(
        back, config,
        "serde round-trip must be lossless; got {text}"
    );

    // The default config (the paper's Section 6.2 parameters) too.
    let default = MpilConfig::default();
    let back: MpilConfig = json::from_str(&json::to_string(&default)).expect("round-trip");
    assert_eq!(back, default);
}

/// The derive handles the shapes the workspace relies on: tuple
/// structs, data-carrying enum variants, and nested containers.
#[test]
fn serde_derive_covers_workspace_shapes() {
    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrapper(u64, bool);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Status {
        Idle,
        Busy { jobs: u32, tag: String },
        Batch(Vec<u8>),
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        wrapper: Wrapper,
        statuses: Vec<Status>,
        matrix: Vec<Vec<u16>>,
        opt: Option<f64>,
    }

    let value = Nested {
        wrapper: Wrapper(u64::MAX, true),
        statuses: vec![
            Status::Idle,
            Status::Busy {
                jobs: 7,
                tag: String::from("quota \"split\""),
            },
            Status::Batch(vec![0, 127, 255]),
        ],
        matrix: vec![vec![1, 2], vec![], vec![3]],
        opt: None,
    };
    let text = json::to_string(&value);
    let back: Nested = json::from_str(&text).expect("round-trip");
    assert_eq!(back, value, "encoded as {text}");
}
