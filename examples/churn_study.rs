//! Perturbation study: MPIL vs Pastry under flapping nodes — a miniature
//! of the paper's Figure 11 experiment, runnable in seconds.
//!
//! ```text
//! cargo run --release --example churn_study
//! ```
//!
//! Builds a 300-node Pastry overlay, inserts 40 objects, then flaps nodes
//! (30 s online / 30 s offline) at increasing probabilities and compares
//! lookup success of Pastry routing (with full maintenance) against MPIL
//! routing over the *same frozen overlay* with zero maintenance.

use mpil_bench::perturb::{run_system, PerturbRun, System};

fn main() {
    println!("perturbation study: 300 nodes, 40 lookups per point, idle:offline = 30:30\n");
    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "flap p", "MSPastry", "MPIL w/ DS", "MPIL w/o DS"
    );
    for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let run = PerturbRun {
            nodes: 300,
            operations: 40,
            idle_secs: 30,
            offline_secs: 30,
            probability: p,
            deadline_cap_secs: 60,
            loss_probability: 0.0,
            seed: 11,
        };
        let pastry = run_system(System::Pastry, run);
        let mpil_ds = run_system(System::MpilDs, run);
        let mpil_no = run_system(System::MpilNoDs, run);
        println!(
            "{p:>10.2} {:>11.1}% {:>13.1}% {:>13.1}%",
            pastry.success_rate, mpil_ds.success_rate, mpil_no.success_rate
        );
    }
    println!("\nMPIL's redundant flows keep finding replicas while Pastry's");
    println!("single path fails whenever the root (or a hop) is perturbed.");
}
