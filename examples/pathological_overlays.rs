//! Overlay independence on pathological topologies.
//!
//! ```text
//! cargo run --release --example pathological_overlays
//! ```
//!
//! The paper's position is that insert/lookup should work over *any*
//! overlay — including ones no DHT would ever build. This example runs
//! the identical MPIL configuration over a ring, a line, a star, a grid,
//! a complete graph, and the paper's two families, and prints how success
//! and cost degrade (gracefully) with the overlay's shape.

use mpil::{MpilConfig, StaticEngine};
use mpil_id::Id;
use mpil_overlay::{generators, stats, NodeIdx, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn measure(name: &str, topo: &Topology, rng: &mut SmallRng) {
    let insert = MpilConfig::default()
        .with_max_flows(30)
        .with_num_replicas(5);
    let lookup = MpilConfig::default()
        .with_max_flows(10)
        .with_num_replicas(5);
    let mut engine = StaticEngine::new(topo, insert, 4);
    let n = topo.len();
    let trials = 50;
    let objects: Vec<(Id, NodeIdx, NodeIdx)> = (0..trials)
        .map(|_| {
            (
                Id::random(rng),
                NodeIdx::new(rng.gen_range(0..n as u32)),
                NodeIdx::new(rng.gen_range(0..n as u32)),
            )
        })
        .collect();
    for &(object, owner, _) in &objects {
        engine.insert(owner, object);
    }
    engine.set_config(lookup);
    let mut ok = 0;
    let mut msgs = 0u64;
    let mut hops = 0u32;
    for &(object, _, from) in &objects {
        let r = engine.lookup(from, object);
        msgs += r.messages;
        if r.success {
            ok += 1;
            hops += r.first_reply_hops.unwrap_or(0);
        }
    }
    println!(
        "{name:<22} diam≈{:>3}  success {:>3}/{trials}  avg msgs {:>6.1}  avg hops {:>5.1}",
        stats::estimate_diameter(topo, 4),
        ok,
        msgs as f64 / trials as f64,
        if ok > 0 {
            f64::from(hops) / f64::from(ok)
        } else {
            f64::NAN
        },
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(2024);
    println!("same MPIL configuration (insert 30x5, lookup 10x5) on every overlay:\n");
    let n = 400;
    let cases: Vec<(&str, Topology)> = vec![
        (
            "power-law",
            generators::power_law(n, Default::default(), &mut rng)?,
        ),
        (
            "random regular d=20",
            generators::random_regular(n, 20, &mut rng)?,
        ),
        ("complete", generators::complete(200, &mut rng)?),
        ("grid 20x20", generators::grid(20, 20, &mut rng)?),
        ("ring", generators::ring(n, &mut rng)?),
        ("line", generators::line(n, &mut rng)?),
        ("star", generators::star(n, &mut rng)?),
    ];
    for (name, topo) in &cases {
        measure(name, topo, &mut rng);
    }
    println!("\nno overlay-specific tuning, no maintenance, no structure assumptions:");
    println!("every well-connected shape (diameter ≲ 10) succeeds fully at identical");
    println!("cost, and even extreme-diameter chains (ring/line) degrade by running");
    println!("out of search horizon — not by crashing or needing a different protocol.");
    Ok(())
}
