//! Quickstart: insert and look up objects with MPIL over an arbitrary
//! overlay.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! MPIL needs nothing from the overlay but each node's neighbor list, so
//! this example builds a random graph, inserts a handful of object
//! pointers, and looks them up from other nodes — printing the redundancy
//! and cost figures the paper's evaluation is built around.

use mpil::{MpilConfig, StaticEngine};
use mpil_id::Id;
use mpil_overlay::{generators, NodeIdx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(2005);

    // 1. Any overlay works. Here: 500 nodes, each with 16 random peers.
    let topo = generators::random_regular(500, 16, &mut rng)?;
    println!(
        "overlay: {} nodes, {} edges, mean degree {:.1}",
        topo.len(),
        topo.edge_count(),
        mpil_overlay::stats::mean_degree(&topo)
    );

    // 2. The paper's methodology: insert with a generous budget (30
    //    flows × 5 per-flow replicas — insertions are rare, lookups are
    //    not), then look up with a light one (10 × 5).
    let insert_config = MpilConfig::default()
        .with_max_flows(30)
        .with_num_replicas(5);
    let lookup_config = MpilConfig::default()
        .with_max_flows(10)
        .with_num_replicas(5);
    let mut engine = StaticEngine::new(&topo, insert_config, 7);

    // 3. Insert ten object pointers from random owners.
    let objects: Vec<Id> = (0..10).map(|_| Id::random(&mut rng)).collect();
    for &object in &objects {
        let owner = NodeIdx::new(rng.gen_range(0..500));
        let report = engine.insert(owner, object);
        println!(
            "insert {}…: {} replicas, {} messages, {} flows",
            &object.to_string()[..8],
            report.replicas,
            report.messages,
            report.flows_created
        );
    }

    // 4. Look everything up from different random nodes.
    engine.set_config(lookup_config);
    let mut found = 0;
    for &object in &objects {
        let origin = NodeIdx::new(rng.gen_range(0..500));
        let report = engine.lookup(origin, object);
        if report.success {
            found += 1;
            println!(
                "lookup {}…: hit in {} hops ({} messages)",
                &object.to_string()[..8],
                report
                    .first_reply_hops
                    .expect("successful lookups have hops"),
                report.messages
            );
        } else {
            println!("lookup {}…: MISS", &object.to_string()[..8]);
        }
    }
    println!("{found}/10 lookups succeeded");

    // 5. Owner-driven deletion removes every replica.
    let removed = engine.delete(objects[0]);
    println!("deleted object 0 from {removed} replica holders");
    assert!(!engine.lookup(NodeIdx::new(1), objects[0]).success);
    Ok(())
}
