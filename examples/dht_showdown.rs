//! DHT showdown: Pastry vs Chord vs Kademlia vs MPIL under perturbation.
//!
//! ```text
//! cargo run --release --example dht_showdown
//! ```
//!
//! A miniature of the `ext_dht_comparison` experiment, driving each
//! substrate's public API directly: build a converged 200-node overlay
//! of each kind, insert the same 30 objects, switch on the paper's
//! 30:30 flapping at p = 0.8, and issue one lookup per period. The
//! maintained single-copy DHTs lose lookups to offline roots; MPIL,
//! with no maintenance at all, rides through on redundant flows and
//! replicas.

use mpil::{DynamicConfig, DynamicNetwork, LookupStatus, MpilConfig};
use mpil_chord::{ChordConfig, ChordSim};
use mpil_id::Id;
use mpil_kademlia::{KademliaConfig, KademliaSim};
use mpil_overlay::NodeIdx;
use mpil_sim::{AlwaysOn, ConstantLatency, Flapping, FlappingConfig, SimDuration};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const N: usize = 200;
const OBJECTS: usize = 30;
const FLAP_P: f64 = 0.8;
const SEED: u64 = 2005;

fn flapping(rng: &mut SmallRng, origin: NodeIdx, start: mpil_sim::SimTime) -> Flapping {
    let cfg = FlappingConfig {
        idle: SimDuration::from_secs(30),
        offline: SimDuration::from_secs(30),
        probability: FLAP_P,
        start,
    };
    let mut f = Flapping::new(cfg, N, SEED ^ 0xf1a9, rng);
    f.exempt(origin);
    f
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let objects: Vec<Id> = (0..OBJECTS).map(|_| Id::random(&mut rng)).collect();
    let latency = || Box::new(ConstantLatency(SimDuration::from_millis(20)));
    println!("{N} nodes, {OBJECTS} objects, 30:30 flapping at p = {FLAP_P} (origin exempt)\n");
    run_chord(&objects, &mut rng, latency());
    run_kademlia(&objects, &mut rng, latency(), 1, 1);
    run_kademlia(&objects, &mut rng, latency(), 8, 3);
    run_mpil(&objects, &mut rng, latency());
    println!("\n(the maintained single-copy DHTs lose whatever their roots lose;\n MPIL's redundancy needs no maintenance at all)");
}

fn run_chord(objects: &[Id], rng: &mut SmallRng, latency: Box<dyn mpil_sim::LatencyModel>) {
    let origin = NodeIdx::new(0);
    let config = ChordConfig::default();
    let ids = mpil_chord::random_ids(N, rng);
    let states = mpil_chord::build_converged_states(&ids, &config);
    let mut sim = ChordSim::new(ids, states, config, Box::new(AlwaysOn), latency, SEED);
    for &o in objects {
        sim.insert(origin, o);
    }
    sim.run_to_quiescence();
    let f = flapping(rng, origin, sim.now());
    sim.set_availability(Box::new(f));
    sim.start_maintenance();
    let period = SimDuration::from_secs(60);
    let mut handles = Vec::new();
    for &o in objects {
        let deadline = sim.now() + period;
        handles.push(sim.issue_lookup(origin, o, deadline));
        let next = sim.now() + period;
        sim.run_until(next);
    }
    let ok = handles
        .iter()
        .filter(|&&h| {
            matches!(
                sim.lookup_outcome(h),
                mpil_chord::LookupOutcome::Succeeded { .. }
            )
        })
        .count();
    report("Chord", ok, objects.len());
}

fn run_kademlia(
    objects: &[Id],
    rng: &mut SmallRng,
    latency: Box<dyn mpil_sim::LatencyModel>,
    k: usize,
    alpha: usize,
) {
    let origin = NodeIdx::new(0);
    let config = KademliaConfig::default().with_k(k).with_alpha(alpha);
    let ids = mpil_chord::random_ids(N, rng);
    let tables = mpil_kademlia::build_converged_tables(&ids, &config);
    let mut sim = KademliaSim::new(ids, tables, config, Box::new(AlwaysOn), latency, SEED);
    for &o in objects {
        sim.insert(origin, o);
    }
    sim.run_to_quiescence();
    let f = flapping(rng, origin, sim.now());
    sim.set_availability(Box::new(f));
    sim.start_maintenance();
    let period = SimDuration::from_secs(60);
    let mut handles = Vec::new();
    for &o in objects {
        let deadline = sim.now() + period;
        handles.push(sim.issue_lookup(origin, o, deadline));
        let next = sim.now() + period;
        sim.run_until(next);
    }
    let ok = handles
        .iter()
        .filter(|&&h| {
            matches!(
                sim.lookup_outcome(h),
                mpil_kademlia::LookupOutcome::Succeeded { .. }
            )
        })
        .count();
    report(&format!("Kademlia k={k} α={alpha}"), ok, objects.len());
}

fn run_mpil(objects: &[Id], rng: &mut SmallRng, latency: Box<dyn mpil_sim::LatencyModel>) {
    let origin = NodeIdx::new(0);
    // MPIL routes over the *Chord* pointer graph, frozen: the strongest
    // form of the overlay-independence claim in this comparison.
    let config = ChordConfig::default();
    let ids = mpil_chord::random_ids(N, rng);
    let states = mpil_chord::build_converged_states(&ids, &config);
    let neighbors: Vec<Vec<NodeIdx>> = states.iter().map(|s| s.neighbor_list()).collect();
    let mut net = DynamicNetwork::new(
        ids,
        neighbors,
        DynamicConfig {
            mpil: MpilConfig::default()
                .with_max_flows(10)
                .with_num_replicas(5),
            heartbeat_period: None,
        },
        Box::new(AlwaysOn),
        latency,
        SEED,
    );
    for &o in objects {
        net.insert(origin, o);
    }
    net.run_to_quiescence();
    let f = flapping(rng, origin, net.now());
    net.set_availability(Box::new(f));
    let period = SimDuration::from_secs(60);
    let mut handles = Vec::new();
    for &o in objects {
        let deadline = net.now() + period;
        handles.push(net.issue_lookup(origin, o, deadline));
        let next = net.now() + period;
        net.run_until(next);
    }
    let ok = handles
        .iter()
        .filter(|&&h| matches!(net.lookup_status(h), LookupStatus::Succeeded { .. }))
        .count();
    report("MPIL (frozen graph)", ok, objects.len());
}

fn report(label: &str, ok: usize, total: usize) {
    println!(
        "  {label:<20} {ok:>2}/{total} lookups ({:.0}%)",
        100.0 * ok as f64 / total as f64
    );
}
