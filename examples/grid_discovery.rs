//! Grid resource discovery over a legacy overlay (the paper's motivating
//! scenario from Section 1).
//!
//! ```text
//! cargo run --release --example grid_discovery
//! ```
//!
//! A Grid deployment already has an overlay — here an Inet-style
//! power-law network of compute sites — and we are not allowed to
//! restructure it or run DHT maintenance on it. MPIL layers resource
//! discovery (e.g. "which site exports dataset X?") directly onto the
//! existing links: sites publish resource advertisements as object
//! pointers, and clients discover them with multi-path lookups.

use mpil::{MpilConfig, StaticEngine};
use mpil_id::Id;
use mpil_overlay::{generators, stats, NodeIdx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A resource advertisement: hash the resource name into the 160-bit key
/// space (a stand-in for SHA-1).
fn resource_key(name: &str) -> Id {
    // FNV-1a folded over the 20 ID bytes: deterministic, collision-safe
    // enough for an example.
    let mut bytes = [0u8; 20];
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (i, b) in name.bytes().cycle().take(160).enumerate() {
        h ^= u64::from(b).wrapping_add(i as u64);
        h = h.wrapping_mul(0x1_0000_01b3);
        bytes[i % 20] ^= (h >> 32) as u8;
    }
    Id::from_bytes(bytes)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(1977);

    // The legacy Grid overlay: heavy-tailed, as deployed networks tend
    // to be (Section 6.1 argues the same).
    let sites = 2000;
    let topo = generators::power_law(sites, Default::default(), &mut rng)?;
    println!(
        "grid overlay: {sites} sites, {} links, diameter ≈ {}",
        topo.edge_count(),
        stats::estimate_diameter(&topo, 8)
    );

    let config = MpilConfig::default()
        .with_max_flows(20)
        .with_num_replicas(4);
    let mut engine = StaticEngine::new(&topo, config, 99);

    // Sites advertise heterogeneous resources.
    let resources = [
        "dataset/climate-2005",
        "dataset/genome-hg17",
        "cpu/itanium-cluster",
        "cpu/opteron-cluster",
        "storage/tape-silo",
        "service/render-farm",
        "service/matlab-license",
    ];
    for name in &resources {
        let exporter = NodeIdx::new(rng.gen_range(0..sites as u32));
        let report = engine.insert(exporter, resource_key(name));
        println!(
            "site {exporter} exports {name:<24} -> {} directory replicas",
            report.replicas
        );
    }

    // Clients anywhere in the Grid discover them.
    println!("\ndiscovery from random client sites:");
    let mut total_hops = 0u32;
    for name in &resources {
        let client = NodeIdx::new(rng.gen_range(0..sites as u32));
        let report = engine.lookup(client, resource_key(name));
        match report.first_reply_hops {
            Some(hops) if report.success => {
                total_hops += hops;
                println!(
                    "  {name:<24} found from site {client} in {hops} hops, {} msgs",
                    report.messages
                );
            }
            _ => println!("  {name:<24} NOT FOUND from site {client}"),
        }
    }
    println!(
        "\nmean discovery latency: {:.1} hops (no overlay maintenance ever ran)",
        f64::from(total_hops) / resources.len() as f64
    );
    Ok(())
}
