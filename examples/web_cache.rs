//! Cooperative web caching with heartbeat-based deletion — the paper's
//! second motivating application (Section 1), on the event-driven engine.
//!
//! ```text
//! cargo run --release --example web_cache
//! ```
//!
//! Edge proxies form a random overlay. When a proxy caches a URL it
//! inserts a pointer keyed by the URL's hash; other proxies resolve cache
//! misses by MPIL lookup instead of going to the origin server. Replica
//! holders heartbeat the owner (Section 4.4's deletion protocol), so when
//! the owner evicts the entry it can delete every pointer replica.

use mpil::{DynamicConfig, DynamicNetwork, LookupStatus, MpilConfig};
use mpil_id::Id;
use mpil_overlay::{generators, NodeIdx};
use mpil_sim::{AlwaysOn, ConstantLatency, SimDuration};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn url_key(url: &str) -> Id {
    let mut bytes = [0u8; 20];
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (i, b) in url.bytes().cycle().take(200).enumerate() {
        h ^= u64::from(b).wrapping_add(i as u64);
        h = h.wrapping_mul(0x1_0000_01b3);
        bytes[i % 20] ^= (h >> 24) as u8;
    }
    Id::from_bytes(bytes)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(8080);
    let proxies = 400;
    let topo = generators::random_regular(proxies, 12, &mut rng)?;

    let config = DynamicConfig {
        mpil: MpilConfig::default()
            .with_max_flows(20)
            .with_num_replicas(5),
        // Replica holders heartbeat the owner every 20 simulated seconds.
        heartbeat_period: Some(SimDuration::from_secs(20)),
    };
    let mut net = DynamicNetwork::from_topology(
        &topo,
        config,
        Box::new(AlwaysOn),
        Box::new(ConstantLatency(SimDuration::from_millis(15))),
        1,
    );

    let urls = [
        "http://example.org/index.html",
        "http://example.org/logo.png",
        "http://news.example.com/today",
        "http://video.example.net/clip.mpg",
    ];

    // Proxy 0 caches all four and publishes pointers.
    let owner = NodeIdx::new(0);
    for url in &urls {
        net.insert(owner, url_key(url));
    }
    net.run_until(net.now() + SimDuration::from_secs(65));
    for url in &urls {
        println!(
            "{url:<36} pointer replicas: {}",
            net.replica_holders(url_key(url)).len()
        );
    }
    println!("heartbeats sent so far: {}", net.stats().heartbeats_sent);

    // A cache miss at proxy 123 resolves via MPIL.
    let client = NodeIdx::new(123);
    let deadline = net.now() + SimDuration::from_secs(30);
    let lk = net.issue_lookup(client, url_key(urls[0]), deadline);
    net.run_until(deadline);
    match net.lookup_status(lk) {
        LookupStatus::Succeeded { hops, latency } => println!(
            "\nproxy {client} resolved {} in {hops} hops ({latency})",
            urls[0]
        ),
        other => println!("\nproxy {client} lookup outcome: {other:?}"),
    }

    // The owner evicts one entry: heartbeats told it where the replicas
    // are, so explicit deletes reach all of them.
    net.delete(owner, url_key(urls[1]));
    net.run_until(net.now() + SimDuration::from_secs(30));
    println!(
        "after eviction, {} replicas of {} remain",
        net.replica_holders(url_key(urls[1])).len(),
        urls[1]
    );

    // Misses for evicted content fail cleanly.
    let lk2 = net.issue_lookup(
        NodeIdx::new(rng.gen_range(0..proxies as u32)),
        url_key(urls[1]),
        net.now() + SimDuration::from_secs(30),
    );
    net.run_until(net.now() + SimDuration::from_secs(31));
    println!("lookup of evicted entry: {:?}", net.lookup_status(lk2));
    Ok(())
}
