//! Live deployment: MPIL on real threads and real UDP sockets.
//!
//! ```text
//! cargo run --release --example live_cluster
//! ```
//!
//! Everything else in this repository runs under a deterministic
//! discrete-event simulator; this example is the "production" path: a
//! 64-node overlay where every node is an OS thread with its own
//! loopback UDP socket, speaking the versioned wire format of
//! [`mpil_net::codec`]. It inserts object pointers, perturbs a quarter
//! of the fleet (nodes silently drop every datagram, exactly the
//! paper's model of an unresponsive host), and shows lookups riding
//! through on redundant flows.

use std::time::Duration;

use mpil::MpilConfig;
use mpil_id::Id;
use mpil_net::{LiveClusterBuilder, TransportKind};
use mpil_overlay::{generators, NodeIdx};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(2005);
    let n = 64;
    let topo = generators::random_regular(n, 8, &mut rng)?;
    println!("spawning {n} nodes as threads with loopback UDP sockets...");

    let mut cluster = LiveClusterBuilder::new()
        .transport(TransportKind::Udp)
        .config(
            MpilConfig::default()
                .with_max_flows(10)
                .with_num_replicas(5),
        )
        .seed(7)
        .spawn(&topo)?;

    // Insert a handful of object pointers through node 0.
    let objects: Vec<Id> = (0..8).map(|_| Id::random(&mut rng)).collect();
    println!("\ninserting {} objects through node 0:", objects.len());
    for (i, &o) in objects.iter().enumerate() {
        let holders = cluster.insert(NodeIdx::new(0), o, Duration::from_millis(400));
        println!("  object {i}: {} replicas at {holders:?}", holders.len());
    }

    // Healthy lookups from a different entry node.
    println!("\nlookups from node 13 (healthy cluster):");
    for (i, &o) in objects.iter().enumerate() {
        match cluster.lookup(NodeIdx::new(13), o, Duration::from_secs(2)) {
            Some(hit) => println!(
                "  object {i}: found at {} in {} hops, {:?}",
                hit.holder, hit.hops, hit.elapsed
            ),
            None => println!("  object {i}: MISS"),
        }
    }

    // Perturb a quarter of the fleet and look up again.
    println!("\nperturbing 16 of {n} nodes for 30 s (they drop every datagram)...");
    for i in (3..n as u32).step_by(4) {
        cluster.perturb(NodeIdx::new(i), Duration::from_secs(30));
    }
    let mut ok = 0;
    for &o in &objects {
        if cluster
            .lookup(NodeIdx::new(0), o, Duration::from_secs(2))
            .is_some()
        {
            ok += 1;
        }
    }
    println!(
        "lookups under perturbation: {ok}/{} succeeded",
        objects.len()
    );

    let stats = cluster.shutdown();
    let forwards: u64 = stats.iter().map(|s| s.forwards).sum();
    let stores: u64 = stats.iter().map(|s| s.stores).sum();
    let dropped: u64 = stats.iter().map(|s| s.dropped_perturbed).sum();
    println!("\ncluster stats: {forwards} forwards, {stores} replica deposits, {dropped} frames dropped while perturbed");
    Ok(())
}
