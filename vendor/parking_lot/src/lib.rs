//! Offline stub of [`parking_lot`](https://crates.io/crates/parking_lot).
//! See `vendor/README.md` for the policy.
//!
//! Wraps `std::sync` primitives behind parking_lot's `Result`-free API:
//! `lock()` returns the guard directly. Poisoning (a holder panicked) is
//! surfaced as a panic in the next locker, which matches how parking_lot
//! users treat a poisoned invariant anyway.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked (std poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .expect("parking_lot stub: mutex poisoned by a panicked holder")
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("parking_lot stub: mutex poisoned by a panicked holder"),
        }
    }
}

/// A reader-writer lock whose methods return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .expect("parking_lot stub: rwlock poisoned by a panicked holder")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .expect("parking_lot stub: rwlock poisoned by a panicked holder")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(String::from("a"));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(&*r1, "a");
            assert_eq!(&*r2, "a");
        }
        l.write().push('b');
        assert_eq!(l.into_inner(), "ab");
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }
}
