//! Offline stub of [`proptest`](https://proptest-rs.github.io/proptest).
//! See `vendor/README.md` for the policy.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the assertion message and
//!   the case number; re-running is deterministic (seeds derive from the
//!   test's module path + name via FNV-1a), so failures reproduce
//!   exactly.
//! * **No persistence files**, no forking, no timeouts.
//! * Strategies are plain generators: [`Strategy::generate`] draws a
//!   value from a [`TestRng`](test_runner::TestRng).
//!
//! The macro surface (`proptest!`, `prop_assert*`, `prop_assume!`,
//! `prop_oneof!`) and the strategy combinators used by this workspace
//! (`any`, ranges, tuples, `prop_map`, `Just`, `collection::vec`,
//! `array::uniform20`) match upstream syntax, so tests written against
//! this stub also compile against real proptest.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Config, RNG, and error plumbing used by the `proptest!` runner.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Runner configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejected (`prop_assume!`) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// The deterministic RNG strategies draw from.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// An RNG seeded from a test's identity, stable across runs.
        pub fn deterministic(test_name: &str) -> Self {
            TestRng(SmallRng::seed_from_u64(fnv1a(test_name)))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// FNV-1a over a string: the seed derivation for [`TestRng`].
    pub fn fnv1a(s: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: the case does not count either way.
        Reject(String),
        /// `prop_assert*!` failed: the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (assumed-away) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (upstream `prop_map`).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { strategy: self, f }
        }

        /// Type-erases the strategy so heterogeneous strategies of the
        /// same `Value` can be stored together (see `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// See [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.as_ref().generate(rng)
        }
    }

    /// Uniform choice among equally weighted strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds from the boxed arms; panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($S:ident . $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::marker::PhantomData;
    use rand::{Rng, RngCore};

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-balanced; magnitudes spread over ~2^±52.
            let mantissa: f64 = rng.gen();
            let exp = rng.gen_range(-52i32..=52);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            sign * mantissa * exp2(exp)
        }
    }

    fn exp2(e: i32) -> f64 {
        if e >= 0 {
            (1u64 << e.min(62)) as f64
        } else {
            1.0 / (1u64 << (-e).min(62)) as f64
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A full-domain strategy for `T` (upstream `any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (only `vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::ops::Range;
    use rand::Rng;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                rng.gen_range(self.size.clone())
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod sample {
    //! Sampling from explicit value lists (only `select`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// The strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// Uniformly selects one of the given values.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "prop::sample::select needs options");
        Select { options }
    }
}

pub mod array {
    //! Fixed-size array strategies (`uniformN`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// The strategy returned by the `uniformN` constructors.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.0.generate(rng))
        }
    }

    macro_rules! uniform_ctor {
        ($($name:ident => $n:literal),*) => {$(
            /// An array of N values drawn independently from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }
    uniform_ctor!(
        uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform20 => 20, uniform32 => 32
    );
}

pub mod prelude {
    //! The glob import used by property tests.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs property-test functions: `proptest! { #[test] fn f(x in strat) { .. } }`.
///
/// Each `fn` becomes a regular `#[test]` that draws `config.cases`
/// successful cases from a deterministic [`TestRng`](test_runner::TestRng).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
     $(#[$attr:meta])*
     fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(__r)) => {
                        __rejected += 1;
                        if __rejected > __config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({}); last: {}",
                                stringify!($name), __rejected, __r
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), __passed, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {x}")` — fails the
/// current case (works only inside [`proptest!`] bodies).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional trailing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                    __l, __r, ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional trailing message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  both: {:?}",
                    __l
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&($left), &($right));
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  both: {:?}\n{}",
                    __l, ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// `prop_assume!(cond)` — rejects the case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_oneof![s1, s2, ...]` — uniform choice among the arm strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn determinism_per_test_name() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic("combinators");
        let strat = crate::collection::vec((0u32..10, any::<bool>()), 1..5).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = strat.generate(&mut rng);
            assert!((1..5).contains(&n));
        }
        let arr = crate::array::uniform20(any::<u8>()).generate(&mut rng);
        assert_eq!(arr.len(), 20);
        let choice = prop_oneof![0u8..1, 10u8..11, Just(99u8)].generate(&mut rng);
        assert!(choice == 0 || choice == 10 || choice == 99);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn runner_draws_in_range(x in 5u32..15, (lo, hi) in (0u8..10, 100u8..200)) {
            prop_assert!((5..15).contains(&x));
            prop_assert!(lo < 10 && hi >= 100);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
