//! Offline stub of [`crossbeam`](https://crates.io/crates/crossbeam).
//! See `vendor/README.md` for the policy.
//!
//! * [`channel`] — re-exports `std::sync::mpsc`, whose implementation
//!   has itself been crossbeam-based since Rust 1.67 (and whose `Sender`
//!   is `Sync` since 1.72), so semantics match what the transports need:
//!   unbounded MPSC, `recv_timeout`, disconnect errors.
//! * [`thread`] — `scope`/`spawn` on top of `std::thread::scope`, with
//!   crossbeam's `Result`-returning panic contract.

#![forbid(unsafe_code)]

pub mod channel {
    //! Unbounded MPSC channels (std-backed).

    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// An unbounded channel (upstream `crossbeam_channel::unbounded`).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's panic-capturing contract.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The spawn context passed to [`scope`]'s closure and to each
    /// spawned thread's closure (upstream nests spawns through it; this
    /// stub supports spawning from the scope closure only).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The argument passed to `f` mirrors
        /// crossbeam's nested-scope handle; it is a placeholder here.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&NestedScope { _private: () }))
        }
    }

    /// Placeholder for the scope handle crossbeam passes to spawned
    /// closures (commonly bound as `|_|`). Nested spawning through it is
    /// not supported by the stub.
    pub struct NestedScope {
        _private: (),
    }

    /// Runs `f` with a scope in which threads borrowing the environment
    /// can be spawned; joins them all before returning.
    ///
    /// Returns `Err` with the panic payload if any scoped thread (or the
    /// closure itself) panicked, like upstream crossbeam.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn channels_send_and_disconnect() {
        let (tx, rx) = crate::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)).unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)).unwrap(), 2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(crate::channel::RecvTimeoutError::Timeout)
        );
        drop((tx, tx2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(crate::channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn scope_joins_workers() {
        let counter = AtomicUsize::new(0);
        let r = crate::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            7u32
        });
        assert_eq!(r.expect("no panic"), 7);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn scope_reports_worker_panic_as_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
