//! Offline stub of [`bytes`](https://crates.io/crates/bytes). See
//! `vendor/README.md` for the policy.
//!
//! [`Bytes`] is a plain `Vec<u8>` wrapper (cloning copies — upstream's
//! refcounted zero-copy clone is a performance feature, not a semantic
//! one). [`Buf`]/[`BufMut`] implement the big-endian fixed-width
//! accessors the wire codec uses.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, RangeBounds};

/// An immutable byte buffer (upstream: cheaply cloneable; here: a Vec).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Wraps a static byte string.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: bytes.to_vec(),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A sub-buffer over `range` (copies in this stub).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes {
            data: self.data[start..end].to_vec(),
        }
    }

    /// The contents as a new `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.data {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data == *other
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Shortens the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source; all integers are **big-endian**.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// All `get_*` methods panic when the source is exhausted, matching
    /// upstream `bytes`.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Reads exactly `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor; all integers are **big-endian**.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16(0x0102);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 3);

        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u8(), 0xAB);
        assert_eq!(rd.get_u16(), 0x0102);
        assert_eq!(rd.get_u32(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        rd.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn slice_and_truncate() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(&b.slice(2..)[..], &[2, 3, 4, 5]);
        assert_eq!(&b.slice(1..=2)[..], &[1, 2]);
        let mut m = BytesMut::new();
        m.put_slice(&[9, 9, 9, 9]);
        m.truncate(2);
        assert_eq!(&m[..], &[9, 9]);
        assert_eq!(Bytes::from_static(b"hi"), Bytes::copy_from_slice(b"hi"));
    }
}
