//! Offline stub of [`criterion`](https://crates.io/crates/criterion).
//! See `vendor/README.md` for the policy.
//!
//! Supports the workspace's bench files syntactically and functionally:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and `black_box`. Instead of
//! criterion's statistical engine it times a fixed batch per benchmark
//! and prints mean wall-clock time per iteration — enough to eyeball
//! regressions offline; use real criterion for publishable numbers.

#![forbid(unsafe_code)]
// Benchmark harness: wall-clock measurement is its whole purpose.
#![allow(clippy::disallowed_types)]

use std::fmt;
use std::time::Instant;

/// Opaque value barrier: prevents the optimizer from deleting the
/// benchmarked computation. (`std::hint::black_box` under the hood.)
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark label, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`iter`](Bencher::iter) runs the payload.
pub struct Bencher {
    iters: u64,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Times `routine` over a fixed batch of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then the timed batch.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = Some(elapsed.as_nanos() as f64 / self.iters as f64);
    }
}

fn run_one(label: &str, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        iters,
        mean_ns: None,
    };
    f(&mut bencher);
    match bencher.mean_ns {
        Some(ns) if ns >= 1_000_000.0 => {
            println!("bench {label:<50} {:>12.3} ms/iter", ns / 1e6);
        }
        Some(ns) if ns >= 1_000.0 => {
            println!("bench {label:<50} {:>12.3} us/iter", ns / 1e3);
        }
        Some(ns) => println!("bench {label:<50} {:>12.1} ns/iter", ns),
        None => println!("bench {label:<50}      (no iter() call)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration batch (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// The harness entry point handed to each benchmark function.
pub struct Criterion {
    default_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_iters: 10 }
    }
}

impl Criterion {
    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.default_iters, f);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let default_iters = self.default_iters;
        BenchmarkGroup {
            name: name.into(),
            sample_size: default_iters,
            _criterion: self,
        }
    }
}

/// Declares a group runner: `criterion_group!(benches, f1, f2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_plumbing_runs() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        ran += 1;
        assert_eq!(ran, 1);
    }
}
