//! Offline stub of the `fxhash` crate: the rustc/Firefox "Fx" hash.
//!
//! The workspace's simulation state is keyed by small integers and
//! 160-bit random ids; `std`'s default SipHash spends more time hashing
//! than the probe sequences it protects would ever cost. Fx is a
//! non-cryptographic multiply-rotate hash — a handful of cycles per
//! word — and, unlike `RandomState`, it is **deterministic across
//! processes**, which this workspace treats as a feature: any iteration
//! over an `FxHashMap`/`FxHashSet` is reproducible for a given insertion
//! history, so seeded experiments stay seeded.
//!
//! Stub policy per `vendor/README.md`: upstream's names and signatures
//! (`FxHasher`, `FxHashMap`, `FxHashSet`, `FxBuildHasher`, `hash64`) so
//! swapping in the real crate is a manifest-only change.

// This crate defines the sanctioned deterministic wrappers around the
// std tables, so it is the one place the clippy D001 mirror is waived.
#[allow(clippy::disallowed_types)]
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// 64-bit Fx multiplier (the golden-ratio constant rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx streaming hasher: rotate, xor, multiply per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            // Length tag in the top byte so "ab" and "ab\0" differ.
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using Fx hashing.
#[allow(clippy::disallowed_types)]
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using Fx hashing.
#[allow(clippy::disallowed_types)]
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes one value to 64 bits with Fx.
pub fn hash64<T: Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_round_trip() {
        let mut m: FxHashMap<u64, &'static str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.remove(&2), Some("two"));
        assert_eq!(m.len(), 1);

        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((3, 4)));
        assert!(!s.insert((3, 4)));
        assert!(s.contains(&(3, 4)));
    }

    #[test]
    fn hashing_is_deterministic_across_hashers() {
        assert_eq!(hash64(&42u64), hash64(&42u64));
        assert_ne!(hash64(&42u64), hash64(&43u64));
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        "hello world".hash(&mut a);
        "hello world".hash(&mut b);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for i in 0..100 {
                m.insert(i * 7919, i);
            }
            m.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
