//! Offline stub of `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` targeting the vendored `serde` stub's
//! value-tree model (see `vendor/serde`).
//!
//! No `syn`/`quote` — the container shape is parsed straight off the
//! `proc_macro` token stream. Supported shapes, which cover every derive
//! in this workspace:
//!
//! * structs with named fields and tuple structs,
//! * enums with unit (discriminants allowed), tuple, and struct
//!   variants, externally tagged as in upstream serde.
//!
//! Anything else (generics, `#[serde(...)]` attributes) is a compile
//! error here rather than a silent mis-serialization.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The container shape the parser recovered.
enum Shape {
    /// `struct S { a: T, b: U }` with field names.
    Named(Vec<String>),
    /// `struct S(T, U);` with field count.
    Tuple(usize),
    /// `enum E { ... }` with per-variant shapes.
    Enum(Vec<Variant>),
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

/// How a variant carries data.
enum VariantKind {
    /// `A` or `A = 3`.
    Unit,
    /// `A(T, U)` with field count.
    Tuple(usize),
    /// `A { x: T }` with field names.
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_container(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Map(::std::vec::Vec::from([{}]))",
                entries.join(", ")
            )
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::Value::Seq(::std::vec::Vec::from([{}]))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            // Externally tagged, like upstream serde's default:
            // unit -> "Variant"; data -> {"Variant": payload}.
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(\
                                 ::std::vec::Vec::from([(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Seq(::std::vec::Vec::from([{}])))]))",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(\
                                 ::std::vec::Vec::from([(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Map(::std::vec::Vec::from([{}])))]))",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(",\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_container(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             ::serde::map_get(__map, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __map = ::serde::Value::as_map(v)\
                     .ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = ::serde::Value::as_seq(v)\
                     .ok_or_else(|| ::serde::DeError::expected(\"seq\", \"{name}\"))?;\n\
                 if __seq.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError(::std::format!(\
                         \"expected {n} elements for {name}, got {{}}\", __seq.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __seq = ::serde::Value::as_seq(__payload)\
                                         .ok_or_else(|| ::serde::DeError::expected(\
                                             \"seq\", \"{name}::{vn}\"))?;\n\
                                     if __seq.len() != {n} {{\n\
                                         return ::std::result::Result::Err(::serde::DeError(\
                                             ::std::format!(\"expected {n} elements for \
                                             {name}::{vn}, got {{}}\", __seq.len())));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                             ::serde::map_get(__map, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __map = ::serde::Value::as_map(__payload)\
                                         .ok_or_else(|| ::serde::DeError::expected(\
                                             \"map\", \"{name}::{vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __payload) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {data}\n\
                             __other => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::DeError::expected(\
                         \"string or single-entry map\", \"{name}\")),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated Deserialize impl must parse")
}

/// Parses the container name and [`Shape`] from a derive input stream.
fn parse_container(input: TokenStream) -> (String, Shape) {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(kw)) => kw.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(name)) => name.to_string(),
        other => panic!("serde_derive stub: expected container name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    match (keyword.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            (name, Shape::Named(parse_named_fields(g.stream())))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            (name, Shape::Tuple(count_tuple_fields(g.stream())))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let variants = parse_variants(g.stream());
            (name, Shape::Enum(variants))
        }
        (kw, other) => panic!(
            "serde_derive stub: unsupported container `{kw} {name}` (body {other:?}); \
             only field structs, tuple structs and unit enums are supported"
        ),
    }
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading `#[...]` attribute groups (doc comments included).
fn skip_attributes(tokens: &mut TokenIter) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde_derive stub: malformed attribute, found {other:?}"),
        }
    }
}

/// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(tokens: &mut TokenIter) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Extracts field names from the body of a braced struct.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(field)) => {
                fields.push(field.to_string());
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!(
                        "serde_derive stub: expected `:` after field `{field}`, found {other:?}"
                    ),
                }
                skip_type_until_comma(&mut tokens);
            }
            other => panic!("serde_derive stub: expected field name, found {other:?}"),
        }
    }
    fields
}

/// Consumes a type, stopping after the `,` that ends the field (or at
/// end of stream). Tracks `<...>` nesting so commas inside generic
/// arguments don't end the field early.
fn skip_type_until_comma(tokens: &mut TokenIter) {
    let mut angle_depth = 0i32;
    for tt in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the fields of a tuple struct body: segments separated by
/// top-level commas, ignoring a trailing comma.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut fields = 0usize;
    let mut in_segment = false;
    for tt in body {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if in_segment {
                        fields += 1;
                        in_segment = false;
                    }
                    continue;
                }
                _ => {}
            }
        }
        in_segment = true;
    }
    if in_segment {
        fields += 1;
    }
    fields
}

/// Extracts variants (unit, tuple, or struct) from an enum body.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(variant)) => {
                let name = variant.to_string();
                match tokens.next() {
                    None => {
                        variants.push(Variant {
                            name,
                            kind: VariantKind::Unit,
                        });
                        break;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        variants.push(Variant {
                            name,
                            kind: VariantKind::Unit,
                        });
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        // Integer discriminant: skip its expression.
                        skip_type_until_comma(&mut tokens);
                        variants.push(Variant {
                            name,
                            kind: VariantKind::Unit,
                        });
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        variants.push(Variant {
                            name,
                            kind: VariantKind::Tuple(count_tuple_fields(g.stream())),
                        });
                        eat_optional_comma(&mut tokens);
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        variants.push(Variant {
                            name,
                            kind: VariantKind::Struct(parse_named_fields(g.stream())),
                        });
                        eat_optional_comma(&mut tokens);
                    }
                    other => panic!(
                        "serde_derive stub: unexpected token after variant \
                         `{name}`: {other:?}"
                    ),
                }
            }
            other => panic!("serde_derive stub: expected enum variant, found {other:?}"),
        }
    }
    variants
}

/// Consumes a single `,` if present.
fn eat_optional_comma(tokens: &mut TokenIter) {
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        tokens.next();
    }
}
