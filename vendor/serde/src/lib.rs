//! Offline stub of [`serde`](https://serde.rs). See `vendor/README.md`.
//!
//! Upstream serde separates the data model (`Serializer`/`Deserializer`
//! visitors) from formats. This stub collapses that onto one
//! self-describing value tree, [`Value`], which is all the workspace
//! needs: the MPIL crates only `#[derive(Serialize, Deserialize)]` on
//! config/report structs and unit enums. A tiny JSON reader/writer
//! ([`json`]) is included so round-trips can cross a text boundary, which
//! is what the vendor smoke test exercises.
//!
//! Supported shapes (enforced by `serde_derive` at compile time):
//!
//! * structs with named fields → [`Value::Map`];
//! * tuple structs → [`Value::Seq`];
//! * enums with unit variants (discriminants allowed) → [`Value::Str`].

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the stub's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string (also unit-enum variants).
    Str(String),
    /// A sequence (also tuple structs and arrays).
    Seq(Vec<Value>),
    /// Named fields, in declaration order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Why deserialization failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// A type-mismatch error.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError(format!("expected {what} for {context}"))
    }
}

/// Looks up a field in a [`Value::Map`]'s entries (derive-internal).
pub fn map_get<'v>(map: &'v [(String, Value)], key: &str) -> Result<&'v Value, DeError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{key}`")))
}

/// Serialization into the stub's [`Value`] model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the stub's [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("integer", &format!("{other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => i64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("integer", &format!("{other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::expected("float", &format!("{other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", &format!("{other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "array"))?;
        if seq.len() != N {
            return Err(DeError(format!("expected {N} elements, got {}", seq.len())));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($T:ident . $idx:tt),+))*) => {$(
        impl<$($T: Serialize),+> Serialize for ($($T,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($T: Deserialize),+> Deserialize for ($($T,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                let expected = [$( $idx + 1 ),+].len();
                if seq.len() != expected {
                    return Err(DeError(format!(
                        "expected {expected} elements, got {}",
                        seq.len()
                    )));
                }
                Ok(($($T::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

pub mod json {
    //! A minimal JSON writer/reader over [`Value`](super::Value): the
    //! stub's stand-in for `serde_json`.

    use super::{DeError, Deserialize, Serialize, Value};

    /// Serializes any [`Serialize`] type to a JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&value.to_value(), &mut out);
        out
    }

    /// Deserializes any [`Deserialize`] type from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on malformed JSON or a shape mismatch.
    pub fn from_str<T: Deserialize>(s: &str) -> Result<T, DeError> {
        let mut p = Parser {
            s: s.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.s.len() {
            return Err(DeError("trailing characters after JSON value".into()));
        }
        T::from_value(&v)
    }

    fn write_value(v: &Value, out: &mut String) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::F64(x) => {
                if x.is_finite() {
                    // Keep a decimal point so floats stay floats on re-read.
                    let s = format!("{x:?}");
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(s, out),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(item, out);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (k, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    write_value(val, out);
                }
                out.push('}');
            }
        }
    }

    fn write_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    struct Parser<'a> {
        s: &'a [u8],
        i: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, DeError> {
            self.skip_ws();
            self.s
                .get(self.i)
                .copied()
                .ok_or_else(|| DeError("unexpected end of JSON".into()))
        }

        fn eat(&mut self, b: u8) -> Result<(), DeError> {
            if self.peek()? == b {
                self.i += 1;
                Ok(())
            } else {
                Err(DeError(format!(
                    "expected `{}` at byte {}",
                    b as char, self.i
                )))
            }
        }

        fn lit(&mut self, word: &str, v: Value) -> Result<Value, DeError> {
            if self.s[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(DeError(format!("invalid literal at byte {}", self.i)))
            }
        }

        fn value(&mut self) -> Result<Value, DeError> {
            match self.peek()? {
                b'n' => self.lit("null", Value::Null),
                b't' => self.lit("true", Value::Bool(true)),
                b'f' => self.lit("false", Value::Bool(false)),
                b'"' => self.string().map(Value::Str),
                b'[' => {
                    self.eat(b'[')?;
                    let mut items = Vec::new();
                    if self.peek()? == b']' {
                        self.i += 1;
                        return Ok(Value::Seq(items));
                    }
                    loop {
                        items.push(self.value()?);
                        match self.peek()? {
                            b',' => self.i += 1,
                            b']' => {
                                self.i += 1;
                                return Ok(Value::Seq(items));
                            }
                            c => {
                                return Err(DeError(format!(
                                    "expected `,` or `]`, found `{}`",
                                    c as char
                                )))
                            }
                        }
                    }
                }
                b'{' => {
                    self.eat(b'{')?;
                    let mut entries = Vec::new();
                    if self.peek()? == b'}' {
                        self.i += 1;
                        return Ok(Value::Map(entries));
                    }
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.eat(b':')?;
                        entries.push((key, self.value()?));
                        match self.peek()? {
                            b',' => self.i += 1,
                            b'}' => {
                                self.i += 1;
                                return Ok(Value::Map(entries));
                            }
                            c => {
                                return Err(DeError(format!(
                                    "expected `,` or `}}`, found `{}`",
                                    c as char
                                )))
                            }
                        }
                    }
                }
                _ => self.number(),
            }
        }

        fn string(&mut self) -> Result<String, DeError> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                let Some(&b) = self.s.get(self.i) else {
                    return Err(DeError("unterminated string".into()));
                };
                self.i += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(&e) = self.s.get(self.i) else {
                            return Err(DeError("unterminated escape".into()));
                        };
                        self.i += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hex = self
                                    .s
                                    .get(self.i..self.i + 4)
                                    .ok_or_else(|| DeError("short \\u escape".into()))?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| DeError("bad \\u escape".into()))?,
                                    16,
                                )
                                .map_err(|_| DeError("bad \\u escape".into()))?;
                                self.i += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| DeError("bad \\u code point".into()))?,
                                );
                            }
                            other => {
                                return Err(DeError(format!(
                                    "unknown escape `\\{}`",
                                    other as char
                                )))
                            }
                        }
                    }
                    other => {
                        // Re-decode UTF-8: back up and take the full char.
                        if other < 0x80 {
                            out.push(other as char);
                        } else {
                            let start = self.i - 1;
                            let rest = std::str::from_utf8(&self.s[start..])
                                .map_err(|_| DeError("invalid UTF-8 in string".into()))?;
                            let c = rest.chars().next().expect("non-empty");
                            out.push(c);
                            self.i = start + c.len_utf8();
                        }
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, DeError> {
            self.skip_ws();
            let start = self.i;
            if self.s.get(self.i) == Some(&b'-') {
                self.i += 1;
            }
            while self.s.get(self.i).is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                self.i += 1;
            }
            let text = std::str::from_utf8(&self.s[start..self.i])
                .map_err(|_| DeError("invalid number".into()))?;
            if text.is_empty() {
                return Err(DeError(format!("expected a value at byte {start}")));
            }
            if !text.contains(['.', 'e', 'E']) {
                if let Some(stripped) = text.strip_prefix('-') {
                    if let Ok(n) = stripped.parse::<u64>() {
                        if n <= i64::MAX as u64 {
                            return Ok(Value::I64(-(n as i64)));
                        }
                    }
                } else if let Ok(n) = text.parse::<u64>() {
                    return Ok(Value::U64(n));
                }
            }
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| DeError(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let v = vec![1u32, 5, 9];
        let s = json::to_string(&v);
        assert_eq!(s, "[1,5,9]");
        assert_eq!(json::from_str::<Vec<u32>>(&s).unwrap(), v);

        let f = 0.25f64;
        assert_eq!(json::from_str::<f64>(&json::to_string(&f)).unwrap(), f);

        let s = String::from("hi \"there\"\n");
        assert_eq!(json::from_str::<String>(&json::to_string(&s)).unwrap(), s);

        assert_eq!(json::from_str::<Option<u8>>("null").unwrap(), None);
        assert_eq!(json::from_str::<Option<u8>>("7").unwrap(), Some(7));
        assert_eq!(json::from_str::<[u8; 3]>("[1,2,3]").unwrap(), [1, 2, 3]);
    }

    #[test]
    fn negative_and_float_numbers_parse() {
        assert_eq!(json::from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(json::from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert!(json::from_str::<u32>("-1").is_err());
        assert!(json::from_str::<u8>("300").is_err());
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        for bad in ["", "{", "[1,", "\"abc", "tru", "{\"a\":}", "[1 2]", "nullx"] {
            assert!(json::from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    impl Deserialize for Value {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            Ok(v.clone())
        }
    }
}
