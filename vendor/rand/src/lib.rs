//! Offline stub of the [`rand`](https://crates.io/crates/rand) 0.8 API
//! surface this workspace uses. See `vendor/README.md` for the policy.
//!
//! The stub is **not** a drop-in statistical replacement for upstream
//! `rand` — it implements exactly the subset the MPIL crates call:
//!
//! * [`SmallRng`](rngs::SmallRng) — xoshiro256++ (the same family
//!   upstream `SmallRng` uses on 64-bit targets), seeded either from a
//!   32-byte seed or via [`SeedableRng::seed_from_u64`] (SplitMix64
//!   expansion, as upstream);
//! * [`Rng::gen_range`] over integer and float ranges (Lemire-style
//!   rejection for integers, so small ranges are unbiased);
//! * [`Rng::gen`], [`Rng::gen_bool`], [`Rng::fill`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`]
//!   (Fisher–Yates).
//!
//! Determinism is the load-bearing property: experiments cite seeds, so
//! a given seed must reproduce the same stream forever. The stream is
//! pinned by `tests/` here and by the workspace-level vendor smoke test.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable RNG, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanding it with SplitMix64 (the
    /// same construction upstream uses, so streams match intent even if
    /// not upstream bit-for-bit).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 bits of mantissa -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform `u64` in `[0, bound)` by rejection (unbiased).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Reject the tail of the 2^64 space that does not divide evenly.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <f64 as Standard>::sample_standard(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <f64 as Standard>::sample_standard(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Buffers that [`Rng::fill`] can fill.
pub trait Fill {
    /// Fills `self` with random data.
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl Fill for [u32] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for v in self.iter_mut() {
            *v = rng.next_u32();
        }
    }
}

impl Fill for [u64] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for v in self.iter_mut() {
            *v = rng.next_u64();
        }
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (`bool`, floats in `[0,1)`, full-width
    /// integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNGs (only [`SmallRng`]).

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG: **xoshiro256++**, the algorithm
    /// upstream `rand::rngs::SmallRng` uses on 64-bit platforms.
    ///
    /// Not cryptographically secure; statistically solid for simulation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            SmallRng { s }
        }
    }
}

pub mod seq {
    //! Sequence helpers (only [`SliceRandom`]).

    use super::Rng;

    /// Random operations on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles only enough to randomly select `amount` elements;
        /// returns `(selected, rest)`. As in upstream rand, the selected
        /// elements end up at the **tail** of the slice.
        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let boundary = self.len().saturating_sub(amount);
            for i in (boundary..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
            let (rest, selected) = self.split_at_mut(boundary);
            (selected, rest)
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10u32);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(5..=7i64);
            assert!((5..=7).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_and_shuffle_are_deterministic() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut a = [0u8; 20];
        rng.fill(&mut a);
        assert_ne!(a, [0u8; 20]);

        let mut v: Vec<u32> = (0..50).collect();
        let mut w = v.clone();
        v.shuffle(&mut SmallRng::seed_from_u64(9));
        w.shuffle(&mut SmallRng::seed_from_u64(9));
        assert_eq!(v, w);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn float_sampling_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
