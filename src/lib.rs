//! # mpil-suite
//!
//! Umbrella crate for the MPIL reproduction workspace. It re-exports every
//! member crate so that the root-level integration tests (`tests/`) and
//! examples (`examples/`) can exercise the whole system through one import.
//!
//! The actual functionality lives in the member crates:
//!
//! * [`mpil`] — the Multi-Path Insertion/Lookup algorithm (the paper's
//!   contribution).
//! * [`mpil_id`] — 160-bit identifier space and routing metrics.
//! * [`mpil_overlay`] — overlay graphs and generators (random, power-law,
//!   complete, transit-stub).
//! * [`mpil_sim`] — deterministic discrete-event simulation kernel, the
//!   flapping perturbation model, and link-loss injection.
//! * [`mpil_pastry`] — the Pastry/MSPastry baseline DHT with overlay
//!   maintenance.
//! * [`mpil_chord`] — the Chord baseline DHT (successor lists, fingers,
//!   stabilization).
//! * [`mpil_kademlia`] — the Kademlia baseline DHT (k-buckets, iterative
//!   α-parallel lookups).
//! * [`mpil_gossip`] — the epidemic/unstructured engine (gossip partial
//!   views with suspicion; k-random-walk and expanding-ring lookups).
//! * [`mpil_net`] — the live thread-per-node runtime (wire codec,
//!   channel/UDP transports, perturbable clusters).
//! * [`mpil_analysis`] — closed-form analysis from Section 5 of the paper.
//! * [`mpil_workload`] — workload generators, experiment harness, statistics.
//! * [`mpil_harness`] — the `DiscoveryEngine` trait over all five engines,
//!   `Scenario` descriptors, and the parallel multi-seed `ExperimentRunner`.
//!
//! Insert from one node, look up from another, on an arbitrary overlay:
//!
//! ```
//! use mpil_suite::mpil::{MpilConfig, StaticEngine};
//! use mpil_suite::mpil_id::Id;
//! use mpil_suite::mpil_overlay::{generators, NodeIdx};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let topo = generators::random_regular(48, 6, &mut rng)?;
//! let mut engine = StaticEngine::new(&topo, MpilConfig::default(), 7);
//!
//! let object = Id::from_low_u64(0xcafe);
//! let ins = engine.insert(NodeIdx::new(0), object);
//! assert!(ins.replicas >= 1);
//! assert!(engine.lookup(NodeIdx::new(17), object).success);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use mpil;
pub use mpil_analysis;
pub use mpil_chord;
pub use mpil_gossip;
pub use mpil_harness;
pub use mpil_id;
pub use mpil_kademlia;
pub use mpil_net;
pub use mpil_overlay;
pub use mpil_pastry;
pub use mpil_sim;
pub use mpil_workload;
