//! # mpil-analysis
//!
//! The closed-form analysis of Section 5 of the paper: expected numbers of
//! **local maxima**, **replicas**, and **hops** for MPIL over general,
//! random-regular, and complete topologies.
//!
//! With an `M`-digit ID space in base `2^b` and uniformly random IDs, the
//! probability that a node's ID shares exactly `k` digit positions with a
//! message ID is the binomial
//!
//! ```text
//! A(k) = C(M,k) · (1/2^b)^k · ((2^b−1)/2^b)^(M−k)
//! ```
//!
//! A node of degree `d` is a *local maximum* for the message when every
//! neighbor matches strictly fewer digits, giving
//!
//! ```text
//! C(d) = Σ_{k=1}^{M} A(k) · B(k)^d ,   B(k) = Σ_{j<k} A(j)
//! ```
//!
//! The expected number of local maxima is `N·C` (weighted by the degree
//! distribution for irregular graphs), the expected random-walk hop count
//! to a local maximum is `1/C`, and on a complete topology the expected
//! number of replicas is `N · Σ_k A(k) · D(k)^(N−1)` with the *inclusive*
//! CDF `D` (ties all store).
//!
//! ```
//! use mpil_analysis::AnalysisModel;
//! let model = AnalysisModel::base4();
//! // Figure 7's middle curve: 8000 nodes, degree 40.
//! let maxima = model.expected_local_maxima_regular(8000, 40);
//! assert!(maxima > 100.0 && maxima < 400.0);
//! // Figure 8: complete topologies sit near 1.6 replicas.
//! let replicas = model.expected_replicas_complete(8000);
//! assert!(replicas > 1.4 && replicas < 1.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lgamma;
mod model;

pub use lgamma::{ln_binomial, ln_gamma};
pub use model::{AnalysisModel, DegreeDistribution};
