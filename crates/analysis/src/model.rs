//! The Section 5 probability model.

use serde::{Deserialize, Serialize};

use crate::lgamma::ln_binomial;

/// A degree distribution `P(deg = d)` for the general-topology formula.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeDistribution {
    probs: Vec<(usize, f64)>,
}

impl DegreeDistribution {
    /// Builds a distribution from `(degree, probability)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are negative or do not sum to ~1.
    pub fn new(probs: Vec<(usize, f64)>) -> Self {
        let total: f64 = probs.iter().map(|&(_, p)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "degree probabilities sum to {total}, not 1"
        );
        assert!(probs.iter().all(|&(_, p)| p >= 0.0));
        DegreeDistribution { probs }
    }

    /// The empirical degree distribution of a histogram (`hist[d]` =
    /// number of nodes of degree `d`), e.g. from
    /// `mpil_overlay::stats::degree_histogram`.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    pub fn from_histogram(hist: &[usize]) -> Self {
        let total: usize = hist.iter().sum();
        assert!(total > 0, "empty degree histogram");
        let probs = hist
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(d, &c)| (d, c as f64 / total as f64))
            .collect();
        DegreeDistribution { probs }
    }

    /// Iterates `(degree, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.probs.iter().copied()
    }
}

/// The analysis model for an `M`-digit base-`2^b` ID space.
///
/// Precomputes the k-common pmf `A`, the exclusive CDF `B`, the inclusive
/// CDF `D`, and — for numerical stability at large exponents — the upper
/// tails `1 − B` and `1 − D` directly as suffix sums.
#[derive(Debug, Clone)]
pub struct AnalysisModel {
    m: usize,
    pmf: Vec<f64>,       // A(k), k = 0..=M
    tail_excl: Vec<f64>, // 1 - B(k) = P(X >= k)
    tail_incl: Vec<f64>, // 1 - D(k) = P(X > k)
}

impl AnalysisModel {
    /// Builds the model for `m` digits with `radix = 2^b` possible digit
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `radix < 2`.
    pub fn new(m: usize, radix: u32) -> Self {
        assert!(m > 0, "need at least one digit");
        assert!(radix >= 2, "radix must be at least 2");
        let q = 1.0 / f64::from(radix);
        let ln_q = q.ln();
        let ln_1q = (1.0 - q).ln();
        let pmf: Vec<f64> = (0..=m)
            .map(|k| {
                (ln_binomial(m as u64, k as u64) + k as f64 * ln_q + (m - k) as f64 * ln_1q).exp()
            })
            .collect();
        // Suffix sums give accurate small tails.
        let mut tail_incl = vec![0.0; m + 2];
        for k in (0..=m).rev() {
            tail_incl[k] = tail_incl[k + 1] + pmf[k];
        }
        // tail_incl[k] currently = P(X >= k); shift for the two views.
        let tail_excl: Vec<f64> = (0..=m).map(|k| tail_incl[k]).collect(); // P(X >= k)
        let tail_incl: Vec<f64> = (0..=m).map(|k| tail_incl[k + 1]).collect(); // P(X > k)
        AnalysisModel {
            m,
            pmf,
            tail_excl,
            tail_incl,
        }
    }

    /// The paper's default space for MPIL: 160-bit IDs in base 4
    /// (M = 80 digits).
    pub fn base4() -> Self {
        AnalysisModel::new(80, 4)
    }

    /// Pastry's space: 160-bit IDs in base 16 (M = 40 digits).
    pub fn base16() -> Self {
        AnalysisModel::new(40, 16)
    }

    /// Number of digits `M`.
    pub fn num_digits(&self) -> usize {
        self.m
    }

    /// `A(k)`: probability a random ID is `k`-common with the message.
    pub fn k_common_probability(&self, k: usize) -> f64 {
        self.pmf.get(k).copied().unwrap_or(0.0)
    }

    /// `B(k) = P(X < k)`: probability a random ID matches fewer than `k`
    /// digits.
    pub fn cdf_exclusive(&self, k: usize) -> f64 {
        1.0 - self.tail_excl.get(k).copied().unwrap_or(0.0)
    }

    /// `D(k) = P(X <= k)`.
    pub fn cdf_inclusive(&self, k: usize) -> f64 {
        1.0 - self.tail_incl.get(k).copied().unwrap_or(0.0)
    }

    /// `C(d)`: probability that a node of degree `d` is a local maximum
    /// (every neighbor strictly less common than it).
    pub fn local_max_probability(&self, degree: usize) -> f64 {
        let d = degree as f64;
        let mut c = 0.0;
        for k in 1..=self.m {
            let a = self.pmf[k];
            if a == 0.0 {
                continue;
            }
            // B(k)^d computed as exp(d·ln(1−tail)) for accuracy near 1.
            let tail = self.tail_excl[k];
            let b_pow = if tail >= 1.0 {
                0.0
            } else {
                (d * (-tail).ln_1p()).exp()
            };
            c += a * b_pow;
        }
        c
    }

    /// Like [`AnalysisModel::local_max_probability`], but counting a node
    /// as a local maximum when no neighbor is *strictly* more common —
    /// i.e. allowing ties, which is the definition MPIL's insertion
    /// actually uses (Section 4.4: "none of its neighbor nodes have a
    /// higher MPIL routing metric value"). The paper's Figure 7 formula
    /// uses the tie-free `B(k)^d` and therefore *undercounts* realized
    /// local maxima by 30–60% at these digit distributions; simulation
    /// cross-checks must compare against this variant (EXPERIMENTS.md
    /// discusses the gap).
    pub fn local_max_probability_with_ties(&self, degree: usize) -> f64 {
        let d = degree as f64;
        let mut c = 0.0;
        for k in 1..=self.m {
            let a = self.pmf[k];
            if a == 0.0 {
                continue;
            }
            let tail = self.tail_incl[k]; // P(X > k)
            let d_pow = if tail >= 1.0 {
                0.0
            } else {
                (d * (-tail).ln_1p()).exp()
            };
            c += a * d_pow;
        }
        c
    }

    /// Expected number of local maxima on a random `degree`-regular
    /// topology of `n` nodes: `N · C(d)` (Figure 7).
    pub fn expected_local_maxima_regular(&self, n: usize, degree: usize) -> f64 {
        n as f64 * self.local_max_probability(degree)
    }

    /// Tie-aware expected local maxima (what a simulation measures).
    pub fn expected_local_maxima_regular_with_ties(&self, n: usize, degree: usize) -> f64 {
        n as f64 * self.local_max_probability_with_ties(degree)
    }

    /// Expected number of local maxima under an arbitrary degree
    /// distribution (the general formula of Section 5.1).
    pub fn expected_local_maxima(&self, n: usize, degrees: &DegreeDistribution) -> f64 {
        let c: f64 = degrees
            .iter()
            .map(|(d, p)| p * self.local_max_probability(d))
            .sum();
        n as f64 * c
    }

    /// Expected random-walk hops to reach a local maximum on a
    /// `degree`-regular topology: `1 / C(d)` (Section 5.2).
    pub fn expected_hops_regular(&self, degree: usize) -> f64 {
        1.0 / self.local_max_probability(degree)
    }

    /// Expected number of replicas on a complete topology of `n` nodes:
    /// `N · Σ_k A(k) · D(k)^(N−1)` (Figure 8). Ties at the global maximum
    /// all store, hence the inclusive CDF.
    pub fn expected_replicas_complete(&self, n: usize) -> f64 {
        assert!(n >= 2, "complete topology needs at least two nodes");
        let e = (n - 1) as f64;
        let mut total = 0.0;
        for k in 1..=self.m {
            let a = self.pmf[k];
            if a == 0.0 {
                continue;
            }
            let tail = self.tail_incl[k];
            let d_pow = if tail >= 1.0 {
                0.0
            } else {
                (e * (-tail).ln_1p()).exp()
            };
            total += a * d_pow;
        }
        n as f64 * total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for model in [AnalysisModel::base4(), AnalysisModel::base16()] {
            let sum: f64 = (0..=model.num_digits())
                .map(|k| model.k_common_probability(k))
                .sum();
            assert!((sum - 1.0).abs() < 1e-12, "pmf sums to {sum}");
        }
    }

    #[test]
    fn cdfs_are_monotone_and_consistent() {
        let m = AnalysisModel::base4();
        for k in 0..80 {
            assert!(m.cdf_exclusive(k) <= m.cdf_exclusive(k + 1) + 1e-15);
            assert!(m.cdf_inclusive(k) <= m.cdf_inclusive(k + 1) + 1e-15);
            // D(k) = B(k) + A(k)
            let diff = m.cdf_inclusive(k) - m.cdf_exclusive(k) - m.k_common_probability(k);
            assert!(diff.abs() < 1e-12, "k={k}: {diff}");
        }
        assert!((m.cdf_inclusive(80) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn local_max_probability_decreases_with_degree() {
        let m = AnalysisModel::base4();
        let mut prev = 1.0;
        for d in [1usize, 5, 10, 20, 50, 100, 500] {
            let c = m.local_max_probability(d);
            assert!(c > 0.0 && c < prev, "C({d}) = {c} (prev {prev})");
            prev = c;
        }
    }

    #[test]
    fn local_max_probability_close_to_one_over_d_plus_one() {
        // Without ties, P(one of d+1 iid values is the strict max) would
        // be exactly 1/(d+1); ties only reduce it. With M=80 digits the
        // distribution is fairly spread, so C(d) is a bit below 1/(d+1).
        let m = AnalysisModel::base4();
        for d in [10usize, 30, 100] {
            let c = m.local_max_probability(d);
            let upper = 1.0 / (d as f64 + 1.0);
            assert!(c < upper, "C({d}) = {c} should be < {upper}");
            assert!(c > 0.55 * upper, "C({d}) = {c} too far below {upper}");
        }
    }

    #[test]
    fn figure7_magnitudes() {
        // Eyeballed from Figure 7 of the paper: at degree 10 the 16000-
        // node curve sits near 1100, at degree 100 near 110–130.
        let m = AnalysisModel::base4();
        let at10 = m.expected_local_maxima_regular(16000, 10);
        assert!((900.0..1400.0).contains(&at10), "d=10: {at10}");
        let at100 = m.expected_local_maxima_regular(16000, 100);
        assert!((80.0..200.0).contains(&at100), "d=100: {at100}");
    }

    #[test]
    fn figure8_magnitudes() {
        // Figure 8: expected replicas on complete topologies hovers in
        // roughly [1.55, 1.63] for N in [2000, 16000].
        let m = AnalysisModel::base4();
        for n in [2000usize, 4000, 8000, 16000] {
            let r = m.expected_replicas_complete(n);
            assert!((1.4..1.8).contains(&r), "N={n}: {r}");
        }
    }

    #[test]
    fn tie_aware_probability_exceeds_strict() {
        let m = AnalysisModel::base4();
        for d in [5usize, 20, 100] {
            let strict = m.local_max_probability(d);
            let ties = m.local_max_probability_with_ties(d);
            assert!(ties > strict, "d={d}: ties {ties} <= strict {strict}");
            assert!(ties < 3.0 * strict, "d={d}: gap implausibly large");
        }
    }

    #[test]
    fn expected_hops_is_inverse_of_c() {
        let m = AnalysisModel::base4();
        let c = m.local_max_probability(40);
        assert!((m.expected_hops_regular(40) - 1.0 / c).abs() < 1e-12);
    }

    #[test]
    fn general_formula_matches_regular_for_point_mass() {
        let m = AnalysisModel::base4();
        let dist = DegreeDistribution::new(vec![(30, 1.0)]);
        let a = m.expected_local_maxima(5000, &dist);
        let b = m.expected_local_maxima_regular(5000, 30);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn mixed_degree_distribution_interpolates() {
        let m = AnalysisModel::base4();
        let dist = DegreeDistribution::new(vec![(10, 0.5), (100, 0.5)]);
        let mixed = m.expected_local_maxima(1000, &dist);
        let lo = m.expected_local_maxima_regular(1000, 100);
        let hi = m.expected_local_maxima_regular(1000, 10);
        assert!(mixed > lo && mixed < hi);
    }

    #[test]
    fn histogram_constructor_normalizes() {
        let mut hist = vec![0usize; 11];
        hist[3] = 30;
        hist[10] = 70;
        let dist = DegreeDistribution::from_histogram(&hist);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(dist.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn degree_distribution_must_normalize() {
        let _ = DegreeDistribution::new(vec![(3, 0.4)]);
    }
}
