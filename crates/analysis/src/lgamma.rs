//! Log-gamma and log-binomial, implemented from scratch (no external
//! math crates are available offline).

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, 9 coefficients; ~15 significant digits for `x > 0`).
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection branch is not needed here and
/// keeping the domain positive avoids silent nonsense).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `-inf` for `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn gamma_at_integers_is_factorial() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            assert!(
                close(ln_gamma(f64::from(n)), fact.ln(), 1e-12),
                "Γ({n}) mismatch"
            );
            fact *= f64::from(n);
        }
    }

    #[test]
    fn gamma_half_is_sqrt_pi() {
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
    }

    #[test]
    fn gamma_reflection_branch_works() {
        // Γ(0.25) ≈ 3.6256099082...
        assert!(close(ln_gamma(0.25), 3.625_609_908_221_908f64.ln(), 1e-10));
    }

    #[test]
    fn binomial_small_cases_exact() {
        let exact = |n: u64, k: u64| -> f64 {
            let mut num = 1.0f64;
            for i in 0..k {
                num *= (n - i) as f64 / (i + 1) as f64;
            }
            num
        };
        for n in 0..30u64 {
            for k in 0..=n {
                assert!(
                    close(ln_binomial(n, k), exact(n, k).ln(), 1e-10),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn binomial_edge_cases() {
        assert_eq!(ln_binomial(5, 0), 0.0);
        assert_eq!(ln_binomial(5, 5), 0.0);
        assert_eq!(ln_binomial(3, 9), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_large_values_finite() {
        let v = ln_binomial(160, 80);
        assert!(v.is_finite());
        // C(160,80) ~ 9.2e46 => ln ~ 108.1
        assert!((v - 108.13).abs() < 0.1, "got {v}");
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn gamma_rejects_non_positive() {
        let _ = ln_gamma(0.0);
    }
}
