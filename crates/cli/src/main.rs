//! `mpilctl` — the command-line driver (see [`mpil_cli`] for the
//! synopsis).

fn main() {
    match mpil_cli::dispatch(std::env::args().skip(1)) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("mpilctl: {e}");
            std::process::exit(2);
        }
    }
}
