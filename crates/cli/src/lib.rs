//! # mpil-cli
//!
//! Implementation of `mpilctl`, the command-line driver of the MPIL
//! reproduction. Each subcommand is a plain function from parsed
//! arguments to a rendered [`String`], so the whole surface is testable
//! without spawning processes:
//!
//! ```text
//! mpilctl overlay  --family powerlaw --nodes 4000 [--degree D] [--seed S]
//! mpilctl analyze  --what local-maxima --nodes 16000 --degree 50
//! mpilctl analyze  --what replicas --nodes 8000
//! mpilctl simulate --family random --nodes 1000 --ops 100 [--max-flows 10] [--replicas 5]
//! mpilctl perturb  --system mpil --nodes 300 --ops 50 --idle 30 --offline 30 --p 0.5 [--loss 0.1]
//! mpilctl live     --nodes 32 --degree 6 --ops 5 [--udp]
//! mpilctl serve    --port P --nodes 48 --spares 4 [--udp]
//! mpilctl load     --embedded --objects 100 --lookups 500 [--rate R]
//! ```
//!
//! Run `mpilctl help` for the same synopsis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;

use mpil_bench::Args;

/// A subcommand failure, rendered to stderr by `main`.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The synopsis printed by `mpilctl help`.
pub const USAGE: &str = "\
mpilctl — MPIL resource discovery toolkit

USAGE:
  mpilctl <command> [--key value]...

COMMANDS:
  overlay   generate an overlay and print its statistics
            --family powerlaw|random|regular|complete|pastry|chord|kademlia
            --nodes N [--degree D] [--seed S]
  analyze   closed-form expectations from the paper's Section 5
            --what local-maxima --nodes N --degree D [--base4|--base16]
            --what replicas --nodes N
  simulate  one static insert/lookup campaign (paper Section 6.1)
            --family powerlaw|random|regular|complete --nodes N --ops K
            [--degree D] [--max-flows F] [--replicas R] [--no-ds] [--seed S]
  perturb   one perturbation run (paper Sections 3/6.2)
            --system pastry|pastry-rr|chord|kademlia|mpil|mpil-ds
            --nodes N --ops K --idle S --offline S --p P [--loss L] [--seed S]
  sweep     one perturbation scenario across many seeds, in parallel
            (same flags as perturb) [--seeds K] [--workers W] [--json]
  live      spawn a real thread-per-node cluster and run operations
            --nodes N [--degree D] [--ops K] [--udp] [--seed S]
  serve     run the mpild daemon in the foreground (control on loopback UDP)
            [--port P] [--nodes N] [--degree D] [--spares S] [--udp]
            [--max-flows F] [--replicas R] [--timeout-ms T] [--retries N]
  load      drive a daemon with the insert-then-lookup workload
            --addr HOST:PORT | --embedded [--ctrl-udp]
            [--objects N] [--lookups K] [--rate R] [--window W] [--workers C]
            [--churn-period-ms P] [--min-success PCT] [--max-p99-ms MS]
  help      print this message
";

/// Dispatches a full argument vector (without the program name).
///
/// # Errors
///
/// [`CliError`] with a user-facing message on unknown commands or
/// invalid parameters.
pub fn dispatch<I: IntoIterator<Item = String>>(args: I) -> Result<String, CliError> {
    let mut iter = args.into_iter();
    let Some(command) = iter.next() else {
        return Ok(USAGE.to_string());
    };
    let rest = Args::parse(iter);
    match command.as_str() {
        "overlay" => commands::overlay::run(&rest),
        "analyze" => commands::analyze::run(&rest),
        "simulate" => commands::simulate::run(&rest),
        "perturb" => commands::perturb::run(&rest),
        "sweep" => commands::sweep::run(&rest),
        "live" => commands::live::run(&rest),
        "serve" => commands::serve::run(&rest),
        "load" => commands::load::run(&rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError(format!(
            "unknown command {other:?}; run `mpilctl help`"
        ))),
    }
}
