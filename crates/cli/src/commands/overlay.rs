//! `mpilctl overlay` — generate an overlay and print its statistics.

use mpil_bench::dhts::{mean_out_degree, OverlaySource};
use mpil_bench::Args;
use mpil_overlay::stats;

use crate::CliError;

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError`] on unknown families or infeasible parameters.
pub fn run(args: &Args) -> Result<String, CliError> {
    let family = args.value("family").unwrap_or("powerlaw").to_string();
    let nodes = args.value_or("nodes", 1000usize);
    let degree = args.value_or("degree", 16usize);
    let seed = args.value_or("seed", 42u64);

    // Structured overlays report directed out-degree statistics.
    let structured = match family.as_str() {
        "pastry" => Some(OverlaySource::Pastry),
        "chord" => Some(OverlaySource::Chord),
        "kademlia" => Some(OverlaySource::Kademlia),
        _ => None,
    };
    if let Some(src) = structured {
        let (_, nbrs) = src.build(nodes, seed);
        let mut degrees: Vec<usize> = nbrs.iter().map(Vec::len).collect();
        degrees.sort_unstable();
        return Ok(format!(
            "{} overlay: {} nodes (directed pointer graph)\n\
             out-degree: mean {:.1}, min {}, median {}, max {}\n",
            family,
            nodes,
            mean_out_degree(&nbrs),
            degrees.first().copied().unwrap_or(0),
            degrees[degrees.len() / 2],
            degrees.last().copied().unwrap_or(0),
        ));
    }

    let topo = super::build_topology(&family, nodes, degree, seed)?;
    let hist = stats::degree_histogram(&topo);
    let (min_d, max_d) = (
        hist.iter().position(|&c| c > 0).unwrap_or(0),
        hist.iter().rposition(|&c| c > 0).unwrap_or(0),
    );
    Ok(format!(
        "{} overlay: {} nodes, {} edges\n\
         degree: mean {:.1}, min {}, max {}\n\
         connected: {}\n\
         diameter (sampled): {}\n",
        family,
        topo.len(),
        topo.edge_count(),
        stats::mean_degree(&topo),
        min_d,
        max_d,
        stats::is_connected(&topo),
        stats::estimate_diameter(&topo, 8),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn powerlaw_overlay_reports_stats() {
        let out = run(&args("--family powerlaw --nodes 200 --seed 1")).expect("ok");
        assert!(out.contains("200 nodes"));
        assert!(out.contains("connected: true"));
    }

    #[test]
    fn chord_overlay_reports_out_degree() {
        let out = run(&args("--family chord --nodes 100 --seed 1")).expect("ok");
        assert!(out.contains("directed pointer graph"));
        assert!(out.contains("out-degree"));
    }

    #[test]
    fn unknown_family_is_an_error() {
        let err = run(&args("--family banana")).expect_err("must fail");
        assert!(err.0.contains("banana"));
    }
}
