//! `mpilctl serve` — run the `mpild` daemon in the foreground.
//!
//! A thin wrapper over the `mpild` crate: binds the loopback-UDP
//! control socket, prints the address, and serves until a client sends
//! a drain frame (`mpilctl load --stop-daemon`, or `mpil-load`).

use std::io::Write;

use mpil_bench::Args;
use mpild::{args as dargs, Daemon, UdpControl};

use crate::CliError;

/// Runs the subcommand. Blocks until the daemon is drained; the
/// returned string is the daemon's final JSON report.
///
/// # Errors
///
/// [`CliError`] if the control socket cannot bind or the cluster fails
/// to spawn.
pub fn run(args: &Args) -> Result<String, CliError> {
    let config = dargs::daemon_config(args);
    let port: u16 = args.value_or("port", 0);
    let ctrl =
        UdpControl::bind(port).map_err(|e| CliError(format!("cannot bind port {port}: {e}")))?;
    let addr = ctrl
        .local_addr()
        .map_err(|e| CliError(format!("control socket has no address: {e}")))?;
    // Announce the address immediately — scripts parse this line to
    // find the ephemeral port before the cluster finishes spawning.
    println!(
        "{{\"mpild\":\"listening\",\"ctrl_addr\":\"{addr}\",\"nodes\":{},\"spares\":{}}}",
        config.nodes, config.spares
    );
    let _ = std::io::stdout().flush();
    let daemon = Daemon::spawn(config, ctrl).map_err(|e| CliError(format!("daemon spawn: {e}")))?;
    Ok(daemon.run().to_json())
}
