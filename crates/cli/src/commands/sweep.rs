//! `mpilctl sweep` — one scenario fanned across seeds on the parallel
//! experiment runner, with merged statistics (and optional JSON).

use mpil_bench::Args;
use mpil_harness::ExperimentRunner;
use mpil_workload::RunningStats;

use crate::CliError;

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError`] on an unknown `--system`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let scenario = super::perturb::parse_scenario(args)?;
    let count = args.value_or("seeds", 8u64);
    if count == 0 {
        return Err(CliError("--seeds must be at least 1".into()));
    }
    let first = scenario.run.seed;
    let Some(end) = first.checked_add(count) else {
        return Err(CliError(format!(
            "--seed {first} + --seeds {count} overflows the seed range"
        )));
    };
    let seeds: Vec<u64> = (first..end).collect();
    let workers = args.value_or("workers", 0usize);
    let runner = if workers == 0 {
        ExperimentRunner::default()
    } else {
        ExperimentRunner::new(workers)
    };
    let sweep = runner.run_seeds(&scenario, &seeds);
    if args.flag("json") {
        return Ok(sweep.to_json());
    }
    let fmt = |s: &RunningStats| {
        format!(
            "mean {:.1}, std {:.1}, min {:.1}, max {:.1}",
            s.mean(),
            s.std_dev(),
            s.min(),
            s.max()
        )
    };
    Ok(format!(
        "{scenario}\n\
         seeds            = {} ({}..{})\n\
         workers          = {}\n\
         success rate %   : {}\n\
         lookup msgs      : {}\n\
         total msgs       : {}\n\
         reply hops       : {}\n\
         replicas/object  : {}\n",
        seeds.len(),
        seeds.first().copied().unwrap_or(0),
        seeds.last().copied().unwrap_or(0),
        runner.workers(),
        fmt(&sweep.stats.success_rate),
        fmt(&sweep.stats.lookup_messages),
        fmt(&sweep.stats.total_messages),
        fmt(&sweep.stats.mean_reply_hops),
        fmt(&sweep.stats.mean_replicas),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn sweep_reports_merged_stats() {
        let out = run(&args(
            "--system mpil-chord --nodes 100 --ops 8 --p 0.0 --seeds 2 --workers 2",
        ))
        .expect("ok");
        assert!(out.contains("seeds            = 2"), "got:\n{out}");
        assert!(out.contains("success rate %"), "got:\n{out}");
    }

    #[test]
    fn sweep_emits_json() {
        let out = run(&args(
            "--system mpil-chord --nodes 100 --ops 8 --p 0.0 --seeds 2 --json",
        ))
        .expect("ok");
        assert!(out.contains("\"per_seed\""), "got:\n{out}");
        assert!(out.contains("\"merged\""), "got:\n{out}");
    }

    #[test]
    fn sweep_json_header_is_self_describing() {
        // The document alone must identify the engine and seed range.
        let out = run(&args(
            "--system gossip --nodes 80 --ops 6 --p 0.0 --seed 7 --seeds 2 --json",
        ))
        .expect("ok");
        assert!(
            out.contains("\"engine\": \"Gossip k-walk view=8 k=8 ttl=16\""),
            "got:\n{out}"
        );
        assert!(
            out.contains("\"seed_range\": {\"first\": 7, \"last\": 8, \"count\": 2}"),
            "got:\n{out}"
        );
        assert!(out.contains("\"scenario\": \"Gossip k-walk"), "got:\n{out}");
    }

    #[test]
    fn sweep_rejects_unknown_system() {
        assert!(run(&args("--system banana --seeds 2")).is_err());
    }

    #[test]
    fn sweep_rejects_zero_seeds() {
        let err = run(&args("--system mpil-chord --nodes 100 --ops 8 --seeds 0"))
            .expect_err("zero seeds");
        assert!(err.0.contains("--seeds"), "{err}");
    }

    #[test]
    fn sweep_rejects_seed_range_overflow() {
        let err = run(&args(
            "--system mpil-chord --nodes 100 --ops 8 --seed 18446744073709551615 --seeds 2",
        ))
        .expect_err("overflow");
        assert!(err.0.contains("overflow"), "{err}");
    }
}
