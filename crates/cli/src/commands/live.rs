//! `mpilctl live` — spawn a real thread-per-node cluster.

use std::time::Duration;

use mpil::MpilConfig;
use mpil_bench::Args;
use mpil_id::Id;
use mpil_net::{LiveClusterBuilder, TransportKind};
use mpil_overlay::NodeIdx;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::CliError;

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError`] if the overlay cannot be generated or the UDP mesh
/// cannot bind.
pub fn run(args: &Args) -> Result<String, CliError> {
    let nodes = args.value_or("nodes", 32usize);
    let degree = args.value_or("degree", 6usize);
    let ops = args.value_or("ops", 5usize);
    let seed = args.value_or("seed", 42u64);
    let transport = if args.flag("udp") {
        TransportKind::Udp
    } else {
        TransportKind::Channel
    };

    let topo = super::build_topology("random", nodes, degree, seed)?;
    let mut cluster = LiveClusterBuilder::new()
        .transport(transport)
        .config(
            MpilConfig::default()
                .with_max_flows(10)
                .with_num_replicas(5),
        )
        .seed(seed)
        .spawn(&topo)
        .map_err(|e| CliError(format!("failed to spawn cluster: {e}")))?;

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x11ee);
    let mut out = format!(
        "live cluster: {nodes} threads over {} transport\n",
        if args.flag("udp") {
            "loopback UDP"
        } else {
            "in-process channels"
        }
    );
    let objects: Vec<Id> = (0..ops).map(|_| Id::random(&mut rng)).collect();
    for (i, &o) in objects.iter().enumerate() {
        let holders = cluster.insert(NodeIdx::new(0), o, Duration::from_millis(300));
        out.push_str(&format!("insert {i}: {} replicas\n", holders.len()));
    }
    let mut ok = 0;
    let mut total = Duration::ZERO;
    for &o in &objects {
        if let Some(hit) =
            cluster.lookup(NodeIdx::new((nodes - 1) as u32), o, Duration::from_secs(2))
        {
            ok += 1;
            total += hit.elapsed;
        }
    }
    out.push_str(&format!(
        "lookups: {ok}/{} found, mean latency {:?}\n",
        objects.len(),
        total.checked_div(ok.max(1) as u32).unwrap_or_default(),
    ));
    cluster.shutdown();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn channel_cluster_runs_end_to_end() {
        let out = run(&args("--nodes 16 --degree 4 --ops 3")).expect("ok");
        assert!(out.contains("lookups: 3/3"), "got:\n{out}");
    }
}
