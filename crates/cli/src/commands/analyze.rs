//! `mpilctl analyze` — Section 5 closed forms.

use mpil_analysis::AnalysisModel;
use mpil_bench::Args;

use crate::CliError;

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError`] on an unknown `--what`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let what = args.value("what").unwrap_or("local-maxima").to_string();
    let nodes = args.value_or("nodes", 16_000usize);
    let model = if args.flag("base16") {
        AnalysisModel::base16()
    } else {
        AnalysisModel::base4()
    };
    match what.as_str() {
        "local-maxima" | "local_maxima" => {
            let degree = args.value_or("degree", 50usize);
            let strict = model.expected_local_maxima_regular(nodes, degree);
            let ties = model.expected_local_maxima_regular_with_ties(nodes, degree);
            let hops = model.expected_hops_regular(degree);
            Ok(format!(
                "random regular overlay, N = {nodes}, degree = {degree} (base-{})\n\
                 E[#local maxima]          = {strict:.1}   (paper's strict-dominance formula, Fig. 7)\n\
                 E[#local maxima w/ ties]  = {ties:.1}   (MPIL's actual tie-allowing definition)\n\
                 E[hops to a local max]    = {hops:.2}   (random walk, 1/C)\n",
                if args.flag("base16") { 16 } else { 4 },
            ))
        }
        "replicas" => {
            let r = model.expected_replicas_complete(nodes);
            Ok(format!(
                "complete overlay, N = {nodes} (base-{})\n\
                 E[#replicas] = {r:.4}   (paper's Figure 8 band: 1.55-1.63)\n",
                if args.flag("base16") { 16 } else { 4 },
            ))
        }
        other => Err(CliError(format!(
            "unknown analysis {other:?} (want local-maxima|replicas)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn local_maxima_matches_figure_7() {
        let out = run(&args("--what local-maxima --nodes 16000 --degree 100")).expect("ok");
        // Figure 7 reads ≈120 for N=16000, d=100.
        assert!(out.contains("118."), "got:\n{out}");
    }

    #[test]
    fn replicas_inside_figure_8_band() {
        let out = run(&args("--what replicas --nodes 8000")).expect("ok");
        assert!(out.contains("1.59"), "got:\n{out}");
    }

    #[test]
    fn unknown_what_is_an_error() {
        assert!(run(&args("--what entropy")).is_err());
    }
}
