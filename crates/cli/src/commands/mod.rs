//! `mpilctl` subcommands. Each module exposes
//! `run(&Args) -> Result<String, CliError>`.

pub mod analyze;
pub mod live;
pub mod load;
pub mod overlay;
pub mod perturb;
pub mod serve;
pub mod simulate;
pub mod sweep;

use crate::CliError;
use mpil_overlay::{generators, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Builds one of the plain graph families (the structured overlays are
/// handled by [`overlay`] itself, which needs their neighbor lists, not
/// a `Topology`).
pub(crate) fn build_topology(
    family: &str,
    nodes: usize,
    degree: usize,
    seed: u64,
) -> Result<Topology, CliError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let topo = match family {
        "powerlaw" | "power-law" => generators::power_law(nodes, Default::default(), &mut rng),
        "random" | "regular" => generators::random_regular(nodes, degree, &mut rng),
        "complete" => generators::complete(nodes, &mut rng),
        other => {
            return Err(CliError(format!(
                "unknown overlay family {other:?} (want powerlaw|random|regular|complete)"
            )))
        }
    };
    topo.map_err(|e| CliError(format!("overlay generation failed: {e}")))
}
