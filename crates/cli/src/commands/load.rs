//! `mpilctl load` — drive a daemon with the insert-then-lookup load.
//!
//! With `--addr HOST:PORT` it targets a running `mpild`; with
//! `--embedded` it spawns a daemon thread in-process first (all
//! `mpilctl serve` flags apply). Reports one JSON line; `--min-success`
//! and `--max-p99-ms` turn it into a pass/fail gate.

use mpil_bench::Args;
use mpild::{
    args as dargs, probe_live_nodes, run_embedded, run_load, CtrlKind, LoadReport, UdpCtrlClient,
};

use crate::CliError;

fn check_gates(args: &Args, report: &LoadReport) -> Result<(), CliError> {
    if let Some(min) = args
        .value("min-success")
        .and_then(|v| v.parse::<f64>().ok())
    {
        let got = report.lookup.success_pct();
        if got < min {
            return Err(CliError(format!(
                "gate failed: lookup success {got:.2}% < {min:.2}%"
            )));
        }
    }
    if let Some(max) = args.value("max-p99-ms").and_then(|v| v.parse::<f64>().ok()) {
        let got = report.lookup.p99_ms;
        if got > max {
            return Err(CliError(format!(
                "gate failed: lookup p99 {got:.2} ms > {max:.2} ms"
            )));
        }
    }
    Ok(())
}

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError`] when the daemon is unreachable, fails to spawn, or a
/// gate is violated.
pub fn run(args: &Args) -> Result<String, CliError> {
    let (report, daemon_json) = if args.flag("embedded") {
        let dcfg = dargs::daemon_config(args);
        let lcfg = dargs::load_config(args, dcfg.nodes);
        let ctrl = if args.flag("ctrl-udp") {
            CtrlKind::Udp
        } else {
            CtrlKind::Channel
        };
        let (report, daemon_report) =
            run_embedded(dcfg, &lcfg, ctrl).map_err(|e| CliError(e.to_string()))?;
        (report, Some(daemon_report.to_json()))
    } else {
        let Some(addr) = args.value("addr").and_then(|v| v.parse().ok()) else {
            return Err(CliError("need --addr HOST:PORT or --embedded".to_string()));
        };
        let mut conn =
            UdpCtrlClient::connect(addr).map_err(|e| CliError(format!("connect {addr}: {e}")))?;
        // Size the origin space to the actual cluster unless pinned.
        let nodes = match args.value("nodes").and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => probe_live_nodes(&mut conn, std::time::Duration::from_secs(2))
                .map_err(|e| CliError(e.to_string()))?,
        };
        let lcfg = dargs::load_config(args, nodes);
        let report = run_load(&mut conn, &lcfg).map_err(|e| CliError(e.to_string()))?;
        (report, None)
    };
    let line = match daemon_json {
        Some(daemon) => format!("{{\"load\":{},\"daemon\":{daemon}}}\n", report.to_json()),
        None => format!("{{\"load\":{}}}\n", report.to_json()),
    };
    check_gates(args, &report).map_err(|e| CliError(format!("{line}{e}")))?;
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn embedded_load_reports_and_passes_gates() {
        let out = run(&args(
            "--embedded --nodes 16 --degree 4 --objects 10 --lookups 30 \
             --workers 8 --seed 2 --min-success 90",
        ))
        .expect("embedded load");
        assert!(out.contains("\"load\":"), "got:\n{out}");
        assert!(out.contains("\"daemon\":"), "got:\n{out}");
    }

    #[test]
    fn impossible_gate_fails() {
        let err = run(&args(
            "--embedded --nodes 16 --degree 4 --objects 5 --lookups 10 \
             --seed 2 --max-p99-ms 0.000001",
        ))
        .expect_err("gate must fail");
        assert!(err.0.contains("gate failed"), "got: {err}");
    }
}
