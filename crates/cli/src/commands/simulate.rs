//! `mpilctl simulate` — one static insert/lookup campaign (the paper's
//! Section 6.1 methodology at user-chosen parameters).

use mpil::{MpilConfig, StaticEngine};
use mpil_bench::Args;
use mpil_id::Id;
use mpil_overlay::NodeIdx;
use mpil_workload::RunningStats;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::CliError;

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError`] on unknown families or invalid MPIL parameters.
pub fn run(args: &Args) -> Result<String, CliError> {
    let family = args.value("family").unwrap_or("random").to_string();
    let nodes = args.value_or("nodes", 1000usize);
    let degree = args.value_or("degree", 16usize);
    let ops = args.value_or("ops", 100usize);
    let max_flows = args.value_or("max-flows", 10u32);
    let replicas = args.value_or("replicas", 5u32);
    let seed = args.value_or("seed", 42u64);

    let topo = super::build_topology(&family, nodes, degree, seed)?;
    let config = MpilConfig::default()
        .with_max_flows(max_flows)
        .with_num_replicas(replicas)
        .with_duplicate_suppression(!args.flag("no-ds"));
    config
        .validate()
        .map_err(|e| CliError(format!("invalid MPIL parameters: {e}")))?;

    let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
    let mut engine = StaticEngine::new(&topo, config, seed);
    let mut rep = RunningStats::new();
    let mut ins_traffic = RunningStats::new();
    let mut ok = 0usize;
    let mut hops = RunningStats::new();
    let mut look_traffic = RunningStats::new();
    for _ in 0..ops {
        let object = Id::random(&mut rng);
        let a = NodeIdx::new(rng.gen_range(0..nodes as u32));
        let b = NodeIdx::new(rng.gen_range(0..nodes as u32));
        let ins = engine.insert(a, object);
        rep.push(f64::from(ins.replicas));
        ins_traffic.push(ins.messages as f64);
        let look = engine.lookup(b, object);
        look_traffic.push(look.messages as f64);
        if look.success {
            ok += 1;
            if let Some(h) = look.first_reply_hops {
                hops.push(f64::from(h));
            }
        }
    }
    Ok(format!(
        "{family} overlay, {nodes} nodes; {ops} insert/lookup pairs; \
         max_flows={max_flows}, per-flow replicas={replicas}, DS={}\n\
         lookup success        = {:.1}%\n\
         replicas per insert   = {:.1} (bound {})\n\
         insert traffic        = {:.1} msgs\n\
         lookup traffic        = {:.1} msgs\n\
         first-reply latency   = {:.2} hops\n",
        !args.flag("no-ds"),
        100.0 * ok as f64 / ops as f64,
        rep.mean(),
        max_flows * replicas,
        ins_traffic.mean(),
        look_traffic.mean(),
        hops.mean(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn random_overlay_campaign_succeeds() {
        let out = run(&args("--family random --nodes 200 --degree 12 --ops 20")).expect("ok");
        assert!(out.contains("lookup success"), "got:\n{out}");
        // r=5, f=10 gives 100% in the paper's Tables 1-2 at any size.
        assert!(out.contains("= 100.0%"), "got:\n{out}");
    }

    #[test]
    fn bad_mpil_parameters_are_an_error() {
        assert!(run(&args("--max-flows 0 --replicas 0 --nodes 50 --ops 1")).is_err());
    }
}
