//! `mpilctl perturb` — one perturbation run (Sections 3 / 6.2, plus the
//! Chord/Kademlia extension baselines).

use mpil_bench::Args;
use mpil_harness::{
    run_scenario, EngineSpec, LookupStrategy, OverlaySource, PerturbResult, PerturbRun, Scenario,
};

use crate::CliError;

/// Parses `--system` into a harness engine spec.
pub(crate) fn parse_system(system: &str) -> Result<EngineSpec, CliError> {
    Ok(match system {
        "pastry" => EngineSpec::Pastry {
            replication_on_route: false,
        },
        "pastry-rr" => EngineSpec::Pastry {
            replication_on_route: true,
        },
        "mpil" => EngineSpec::MpilOverPastry {
            duplicate_suppression: false,
        },
        "mpil-ds" => EngineSpec::MpilOverPastry {
            duplicate_suppression: true,
        },
        "mpil-chord" => EngineSpec::MpilOver(OverlaySource::Chord),
        "mpil-kademlia" => EngineSpec::MpilOver(OverlaySource::Kademlia),
        "mpil-gossip" => EngineSpec::MpilOver(OverlaySource::Gossip { view: 8 }),
        "chord" => EngineSpec::Chord,
        "kademlia" => EngineSpec::Kademlia { k: 8, alpha: 3 },
        "kademlia-1" => EngineSpec::Kademlia { k: 1, alpha: 1 },
        "gossip" | "gossip-walk" => EngineSpec::Gossip {
            view: 8,
            walkers: 8,
            ttl: 16,
            strategy: LookupStrategy::KRandomWalk,
        },
        "gossip-ring" => EngineSpec::Gossip {
            view: 8,
            walkers: 8,
            ttl: 8,
            strategy: LookupStrategy::ExpandingRing,
        },
        "plumtree" => EngineSpec::Epidemic {
            active: 5,
            passive: 24,
            strategy: LookupStrategy::Plumtree,
        },
        "foaf" => EngineSpec::Epidemic {
            active: 5,
            passive: 24,
            strategy: LookupStrategy::Foaf,
        },
        "mpil-hyparview" => EngineSpec::MpilOver(OverlaySource::HyParView { active: 8 }),
        other => {
            return Err(CliError(format!(
                "unknown system {other:?} (want pastry|pastry-rr|chord|kademlia|kademlia-1|\
                 gossip|gossip-ring|plumtree|foaf|mpil|mpil-ds|mpil-chord|mpil-kademlia|\
                 mpil-gossip|mpil-hyparview)"
            )))
        }
    })
}

/// Builds the scenario named by the standard perturbation flags.
pub(crate) fn parse_scenario(args: &Args) -> Result<Scenario, CliError> {
    let system = args.value("system").unwrap_or("mpil").to_string();
    let run = PerturbRun {
        nodes: args.value_or("nodes", 300usize),
        operations: args.value_or("ops", 60usize),
        idle_secs: args.value_or("idle", 30u64),
        offline_secs: args.value_or("offline", 30u64),
        probability: args.value_or("p", 0.5f64),
        deadline_cap_secs: args.value_or("deadline", 60u64),
        loss_probability: args.value_or("loss", 0.0f64),
        seed: args.value_or("seed", 42u64),
    };
    Ok(Scenario::new(parse_system(&system)?, run))
}

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError`] on an unknown `--system`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let scenario = parse_scenario(args)?;
    Ok(format!("{scenario}\n{}", detail(run_scenario(&scenario))))
}

fn detail(r: PerturbResult) -> String {
    format!(
        "success rate     = {:.1}%\n\
         lookup traffic   = {} msgs\n\
         total traffic    = {} msgs\n\
         reply hops       = {:.2}\n\
         replicas/object  = {:.1}\n",
        r.success_rate, r.lookup_messages, r.total_messages, r.mean_reply_hops, r.mean_replicas
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn mpil_run_reports_success() {
        let out = run(&args("--system mpil --nodes 120 --ops 10 --p 0.0")).expect("ok");
        assert!(out.contains("success rate"), "got:\n{out}");
        assert!(out.contains("MPIL without DS"), "got:\n{out}");
    }

    #[test]
    fn chord_baseline_runs() {
        let out = run(&args("--system chord --nodes 100 --ops 8 --p 0.0")).expect("ok");
        assert!(out.contains("success rate"), "got:\n{out}");
    }

    #[test]
    fn unknown_system_is_an_error() {
        assert!(run(&args("--system gnutella2")).is_err());
    }

    #[test]
    fn every_documented_system_parses() {
        for s in [
            "pastry",
            "pastry-rr",
            "chord",
            "kademlia",
            "kademlia-1",
            "gossip",
            "gossip-walk",
            "gossip-ring",
            "plumtree",
            "foaf",
            "mpil",
            "mpil-ds",
            "mpil-chord",
            "mpil-kademlia",
            "mpil-gossip",
            "mpil-hyparview",
        ] {
            assert!(parse_system(s).is_ok(), "{s}");
        }
    }

    #[test]
    fn gossip_run_reports_success() {
        let out = run(&args("--system gossip --nodes 100 --ops 8 --p 0.0")).expect("ok");
        assert!(out.contains("success rate"), "got:\n{out}");
        assert!(out.contains("Gossip k-walk"), "got:\n{out}");
    }

    #[test]
    fn plumtree_run_reports_success() {
        let out = run(&args("--system plumtree --nodes 100 --ops 8 --p 0.0")).expect("ok");
        assert!(out.contains("success rate"), "got:\n{out}");
        assert!(out.contains("Plumtree active=5"), "got:\n{out}");
    }
}
