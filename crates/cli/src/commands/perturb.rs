//! `mpilctl perturb` — one perturbation run (Sections 3 / 6.2, plus the
//! Chord/Kademlia extension baselines).

use mpil_bench::dhts::{run_baseline, run_mpil_over, Baseline, OverlaySource};
use mpil_bench::perturb::{run_system, PerturbRun, System};
use mpil_bench::Args;

use crate::CliError;

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError`] on an unknown `--system`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let system = args.value("system").unwrap_or("mpil").to_string();
    let run = PerturbRun {
        nodes: args.value_or("nodes", 300usize),
        operations: args.value_or("ops", 60usize),
        idle_secs: args.value_or("idle", 30u64),
        offline_secs: args.value_or("offline", 30u64),
        probability: args.value_or("p", 0.5f64),
        deadline_cap_secs: args.value_or("deadline", 60u64),
        loss_probability: args.value_or("loss", 0.0f64),
        seed: args.value_or("seed", 42u64),
    };
    let header = format!(
        "{} nodes, {} lookups, idle:offline={}:{}, flap p={}, loss={}\n",
        run.nodes,
        run.operations,
        run.idle_secs,
        run.offline_secs,
        run.probability,
        run.loss_probability
    );
    let body = match system.as_str() {
        "pastry" => detail(run_system(System::Pastry, run)),
        "pastry-rr" => detail(run_system(System::PastryRr, run)),
        "mpil" => detail(run_system(System::MpilNoDs, run)),
        "mpil-ds" => detail(run_system(System::MpilDs, run)),
        "mpil-chord" => detail(run_mpil_over(OverlaySource::Chord, run)),
        "mpil-kademlia" => detail(run_mpil_over(OverlaySource::Kademlia, run)),
        "chord" => rate_only(run_baseline(Baseline::Chord, run)),
        "kademlia" => rate_only(run_baseline(Baseline::Kademlia { k: 8, alpha: 3 }, run)),
        "kademlia-1" => rate_only(run_baseline(Baseline::Kademlia { k: 1, alpha: 1 }, run)),
        other => {
            return Err(CliError(format!(
                "unknown system {other:?} (want pastry|pastry-rr|chord|kademlia|kademlia-1|\
                 mpil|mpil-ds|mpil-chord|mpil-kademlia)"
            )))
        }
    };
    Ok(format!("{system}: {header}{body}"))
}

fn detail(r: mpil_bench::perturb::PerturbResult) -> String {
    format!(
        "success rate     = {:.1}%\n\
         lookup traffic   = {} msgs\n\
         total traffic    = {} msgs\n\
         reply hops       = {:.2}\n\
         replicas/object  = {:.1}\n",
        r.success_rate, r.lookup_messages, r.total_messages, r.mean_reply_hops, r.mean_replicas
    )
}

fn rate_only(rate: f64) -> String {
    format!("success rate     = {rate:.1}%\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn mpil_run_reports_success() {
        let out = run(&args("--system mpil --nodes 120 --ops 10 --p 0.0")).expect("ok");
        assert!(out.contains("success rate"), "got:\n{out}");
    }

    #[test]
    fn chord_baseline_runs() {
        let out = run(&args("--system chord --nodes 100 --ops 8 --p 0.0")).expect("ok");
        assert!(out.contains("success rate"), "got:\n{out}");
    }

    #[test]
    fn unknown_system_is_an_error() {
        assert!(run(&args("--system gnutella2")).is_err());
    }
}
