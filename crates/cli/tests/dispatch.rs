//! Top-level dispatch tests: command routing, help, and error paths.

fn dispatch(s: &str) -> Result<String, mpil_cli::CliError> {
    mpil_cli::dispatch(s.split_whitespace().map(String::from))
}

#[test]
fn no_args_prints_usage() {
    let out = mpil_cli::dispatch(std::iter::empty::<String>()).expect("usage");
    assert!(out.contains("USAGE"));
    assert!(out.contains("perturb"));
}

#[test]
fn help_variants_print_usage() {
    for h in ["help", "--help", "-h"] {
        assert!(dispatch(h).expect("usage").contains("mpilctl"));
    }
}

#[test]
fn unknown_command_errors_with_hint() {
    let err = dispatch("frobnicate").expect_err("must fail");
    assert!(err.to_string().contains("frobnicate"));
    assert!(err.to_string().contains("help"));
}

#[test]
fn overlay_command_routes() {
    let out = dispatch("overlay --family random --nodes 100 --degree 8").expect("ok");
    assert!(out.contains("100 nodes"));
}

#[test]
fn analyze_command_routes() {
    let out = dispatch("analyze --what local-maxima --nodes 4000 --degree 10").expect("ok");
    // Figure 7's leftmost point: ≈299 for N=4000, d=10.
    assert!(out.contains("299"), "got:\n{out}");
}

#[test]
fn simulate_command_routes() {
    let out = dispatch("simulate --family random --nodes 150 --degree 10 --ops 10").expect("ok");
    assert!(out.contains("lookup success"));
}

#[test]
fn errors_from_subcommands_propagate() {
    assert!(dispatch("overlay --family banana").is_err());
    assert!(dispatch("analyze --what banana").is_err());
    assert!(dispatch("perturb --system banana").is_err());
}
