//! `mpil-load`: the daemon's load generator.
//!
//! Drives a running [`Daemon`](crate::daemon::Daemon) through its
//! control plane with the paper's insert-then-lookup workload
//! ([`InsertLookupWorkload`]), paced by the clock-free
//! [`Pacer`](mpil_workload::Pacer):
//!
//! 1. **Announce phase** — closed loop (`workers` outstanding): the
//!    object table is inserted as fast as the daemon confirms replicas.
//! 2. **Lookup phase** — open loop at a configurable offered rate with
//!    a bounded in-flight window (the honest way to measure latency
//!    under load), or closed loop when no rate is given. Optionally a
//!    **churn plan** runs concurrently, perturbing random nodes through
//!    the admin plane mid-measurement — the live analogue of the
//!    paper's perturbation experiments.
//!
//! Per-request latency is measured client-side (issue to response,
//! through the daemon's retries) and recorded into
//! [`Percentiles`]; client-side deadlines bound the cost of lost
//! datagrams. All clock reads go through the sanctioned [`WallClock`].

use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

use mpil::MessageId;
use mpil_harness::WallClock;
use mpil_id::Id;
use mpil_net::{RequestTracker, RetryPolicy};
use mpil_overlay::NodeIdx;
use mpil_workload::{InsertLookupWorkload, Pacer, Percentiles, WorkloadConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::daemon::{
    ChannelControl, ChannelCtrlClient, Daemon, DaemonConfig, DaemonError, DaemonReport, UdpControl,
};
use crate::proto::{CtrlRequest, CtrlResponse};

/// Smallest poll slice (UDP sockets reject zero read timeouts).
const POLL: Duration = Duration::from_millis(1);
/// Tokens at or above this mark are admin traffic (churn perturbs,
/// drains), kept out of the request accounting.
const ADMIN_BASE: u64 = 1 << 63;

/// A client's connection to the daemon's control plane.
pub trait CtrlConnection {
    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// `std::io::Error` when the daemon is unreachable.
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()>;

    /// Receives one response frame, waiting at most `timeout`;
    /// `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// `std::io::Error` when the daemon is unreachable.
    fn recv(&mut self, timeout: Duration) -> std::io::Result<Option<Vec<u8>>>;
}

impl CtrlConnection for ChannelCtrlClient {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        ChannelCtrlClient::send(self, frame)
    }

    fn recv(&mut self, timeout: Duration) -> std::io::Result<Option<Vec<u8>>> {
        ChannelCtrlClient::recv(self, timeout)
    }
}

/// UDP client of a daemon's [`UdpControl`] socket.
#[derive(Debug)]
pub struct UdpCtrlClient {
    socket: UdpSocket,
}

impl UdpCtrlClient {
    /// Binds an ephemeral loopback socket and connects it to `addr`.
    ///
    /// # Errors
    ///
    /// Socket `bind`/`connect` failure.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.connect(addr)?;
        Ok(UdpCtrlClient { socket })
    }
}

impl CtrlConnection for UdpCtrlClient {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.socket.send(frame).map(|_| ())
    }

    fn recv(&mut self, timeout: Duration) -> std::io::Result<Option<Vec<u8>>> {
        self.socket.set_read_timeout(Some(timeout.max(POLL)))?;
        let mut buf = [0u8; 512];
        match self.socket.recv(&mut buf) {
            Ok(len) => Ok(Some(buf[..len].to_vec())),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            // A closed daemon port surfaces as ConnectionRefused on a
            // connected loopback socket; the caller's deadline logic
            // will fail the in-flight requests.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Mid-run churn: every `period`, perturb `count` random nodes for
/// `length` (via the admin plane, concurrent with the measurement).
#[derive(Debug, Clone, Copy)]
pub struct ChurnPlan {
    /// Interval between perturbation volleys.
    pub period: Duration,
    /// Nodes perturbed per volley.
    pub count: u32,
    /// How long each perturbed node stays deaf.
    pub length: Duration,
}

/// Load-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Object table size (announce phase inserts each once).
    pub objects: usize,
    /// Lookup count (cycling over the object table).
    pub lookups: u64,
    /// Live node count of the target daemon (origin indices are drawn
    /// below this).
    pub nodes: usize,
    /// Offered lookup rate per second (open loop); `None` = closed loop.
    pub rate: Option<f64>,
    /// In-flight window of the open-loop lookup phase.
    pub window: usize,
    /// Worker count of closed-loop phases (announce always, lookup
    /// when `rate` is `None`).
    pub workers: usize,
    /// Client-side deadline per request (covers daemon retries plus
    /// transit; lost datagrams are charged to this).
    pub timeout: Duration,
    /// Workload seed (object ids, origins, churn targets).
    pub seed: u64,
    /// Optional churn during the lookup phase.
    pub churn: Option<ChurnPlan>,
    /// Drain budget handed to the daemon at shutdown (embedded runs).
    pub drain: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            objects: 100,
            lookups: 500,
            nodes: 48,
            rate: None,
            window: 256,
            workers: 16,
            timeout: Duration::from_secs(2),
            seed: 1,
            churn: None,
            drain: Duration::from_millis(500),
        }
    }
}

/// A load-generation failure (daemon unreachable, spawn failure).
#[derive(Debug)]
pub struct LoadError(pub String);

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError(format!("control i/o: {e}"))
    }
}

/// One phase's results.
#[derive(Debug, Clone, Default)]
pub struct PhaseReport {
    /// Requests issued.
    pub issued: u64,
    /// Requests answered positively (replica confirmed / object found).
    pub ok: u64,
    /// Requests answered negatively (`NotFound`, daemon errors).
    pub rejected: u64,
    /// Requests that blew the client-side deadline.
    pub timeouts: u64,
    /// Wall seconds the phase took.
    pub duration_s: f64,
    /// Requests issued per second (the rate actually offered).
    pub offered_per_s: f64,
    /// Positive answers per second.
    pub achieved_per_s: f64,
    /// Latency percentiles over positive answers, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile latency, milliseconds.
    pub p999_ms: f64,
}

impl PhaseReport {
    /// Positive answers as a percentage of issued requests.
    pub fn success_pct(&self) -> f64 {
        if self.issued == 0 {
            100.0
        } else {
            self.ok as f64 * 100.0 / self.issued as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"issued\":{},\"ok\":{},\"rejected\":{},\"timeouts\":{},\
             \"success_pct\":{:.3},\"duration_s\":{:.3},\"offered_per_s\":{:.1},\
             \"achieved_per_s\":{:.1},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"p999_ms\":{:.3}}}",
            self.issued,
            self.ok,
            self.rejected,
            self.timeouts,
            self.success_pct(),
            self.duration_s,
            self.offered_per_s,
            self.achieved_per_s,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
        )
    }
}

/// The full load run: both phases plus churn accounting.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Announce (insert) phase.
    pub announce: PhaseReport,
    /// Lookup (measurement) phase.
    pub lookup: PhaseReport,
    /// Perturb volleys sent by the churn plan.
    pub churn_volleys: u64,
    /// Individual perturb requests sent.
    pub churn_perturbs: u64,
}

impl LoadReport {
    /// One-line JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"announce\":{},\"lookup\":{},\"churn_volleys\":{},\"churn_perturbs\":{}}}",
            self.announce.to_json(),
            self.lookup.to_json(),
            self.churn_volleys,
            self.churn_perturbs,
        )
    }
}

/// What a phase issues: announce or lookup frames over an op table.
enum PhaseKind<'a> {
    Announce(&'a [(Id, NodeIdx)]),
    /// Lookup over the object table with per-op random origins.
    Lookup {
        objects: &'a [Id],
        rng: SmallRng,
        nodes: usize,
    },
}

impl PhaseKind<'_> {
    fn op(&mut self, index: u64) -> (Id, u32) {
        match self {
            PhaseKind::Announce(ops) => {
                let (object, origin) = ops[index as usize % ops.len()];
                (object, origin.index() as u32)
            }
            PhaseKind::Lookup {
                objects,
                rng,
                nodes,
            } => {
                let object = objects[index as usize % objects.len()];
                (object, rng.gen_range(0..*nodes as u32))
            }
        }
    }

    fn request(&mut self, index: u64) -> CtrlRequest {
        let (object, origin) = self.op(index);
        match self {
            PhaseKind::Announce(_) => CtrlRequest::Announce { object, origin },
            PhaseKind::Lookup { .. } => CtrlRequest::Lookup { object, origin },
        }
    }
}

/// Churn scheduling state across a phase.
struct ChurnState {
    plan: ChurnPlan,
    next_at: Duration,
    rng: SmallRng,
    nodes: usize,
    next_token: u64,
    volleys: u64,
    perturbs: u64,
}

impl ChurnState {
    fn new(plan: ChurnPlan, nodes: usize, seed: u64, start: Duration) -> Self {
        ChurnState {
            plan,
            next_at: start + plan.period,
            rng: SmallRng::seed_from_u64(seed ^ 0xc4b2_9ce5),
            nodes,
            next_token: ADMIN_BASE,
            volleys: 0,
            perturbs: 0,
        }
    }

    fn pump<C: CtrlConnection>(&mut self, conn: &mut C, now: Duration) -> std::io::Result<()> {
        while now >= self.next_at {
            self.next_at += self.plan.period;
            self.volleys += 1;
            for _ in 0..self.plan.count {
                let node = self.rng.gen_range(0..self.nodes as u32);
                let req = CtrlRequest::Perturb {
                    node,
                    millis: self.plan.length.as_millis() as u32,
                };
                conn.send(&req.encode(self.next_token))?;
                self.next_token += 1;
                self.perturbs += 1;
            }
        }
        Ok(())
    }
}

/// Runs one phase to completion and returns its report.
#[allow(clippy::too_many_arguments)]
fn run_phase<C: CtrlConnection>(
    conn: &mut C,
    clock: &WallClock,
    mut pacer: Pacer,
    mut kind: PhaseKind<'_>,
    timeout: Duration,
    next_token: &mut u64,
    mut churn: Option<&mut ChurnState>,
) -> Result<PhaseReport, LoadError> {
    let phase_start = clock.elapsed();
    let mut deadlines: RequestTracker<()> = RequestTracker::new(RetryPolicy {
        timeout,
        retries: 0,
    });
    let mut latency = Percentiles::new();
    let mut report = PhaseReport::default();

    while !pacer.finished() {
        // 1. Issue everything the schedule has made due.
        let now_rel = clock.elapsed().saturating_sub(phase_start);
        let due = pacer.due(now_rel);
        for _ in 0..due {
            let req = kind.request(pacer.issued());
            let token = *next_token;
            *next_token += 1;
            conn.send(&req.encode(token))?;
            deadlines.track(MessageId(token), (), clock.elapsed());
            pacer.record_issued(1);
            report.issued += 1;
        }
        // 2. Inject churn on its own schedule.
        if let Some(churn) = churn.as_deref_mut() {
            churn.pump(conn, clock.elapsed())?;
        }
        // 3. Collect responses (the 1 ms poll doubles as the pacing
        //    sleep when nothing is due or outstanding).
        while let Some(raw) = conn.recv(POLL)? {
            let Ok((token, resp)) = CtrlResponse::decode(&raw) else {
                continue;
            };
            if token >= ADMIN_BASE {
                continue; // churn/drain acks
            }
            let Some(p) = deadlines.complete(MessageId(token)) else {
                continue; // response after the client-side deadline
            };
            pacer.record_completed(1);
            match resp {
                CtrlResponse::Announced { .. } | CtrlResponse::Found { .. } => {
                    report.ok += 1;
                    let ms = clock
                        .elapsed()
                        .saturating_sub(p.first_issued_at)
                        .as_secs_f64()
                        * 1e3;
                    latency.push(ms);
                }
                _ => report.rejected += 1,
            }
        }
        // 4. Enforce client-side deadlines.
        let now = clock.elapsed();
        while deadlines.pop_expired(now).is_some() {
            pacer.record_completed(1);
            report.timeouts += 1;
        }
    }

    report.duration_s = clock
        .elapsed()
        .saturating_sub(phase_start)
        .as_secs_f64()
        .max(1e-9);
    report.offered_per_s = report.issued as f64 / report.duration_s;
    report.achieved_per_s = report.ok as f64 / report.duration_s;
    report.p50_ms = latency.percentile(50.0).unwrap_or(0.0);
    report.p99_ms = latency.percentile(99.0).unwrap_or(0.0);
    report.p999_ms = latency.percentile(99.9).unwrap_or(0.0);
    Ok(report)
}

/// Runs the full announce-then-lookup load against a connected daemon.
///
/// # Errors
///
/// [`LoadError`] when the control connection dies.
pub fn run_load<C: CtrlConnection>(
    conn: &mut C,
    config: &LoadConfig,
) -> Result<LoadReport, LoadError> {
    let clock = WallClock::start();
    let workload = InsertLookupWorkload::generate(WorkloadConfig {
        objects: config.objects,
        nodes: config.nodes,
        fixed_origin: None,
        seed: config.seed,
    });
    let inserts: Vec<(Id, NodeIdx)> = workload.inserts().collect();
    let mut next_token = 0u64;

    let announce = run_phase(
        conn,
        &clock,
        Pacer::closed_loop(config.workers, config.objects as u64),
        PhaseKind::Announce(&inserts),
        timeout_floor(config.timeout),
        &mut next_token,
        None,
    )?;

    let mut churn = config
        .churn
        .map(|plan| ChurnState::new(plan, config.nodes, config.seed, clock.elapsed()));
    let lookup_pacer = match config.rate {
        Some(rate) => Pacer::open_loop(rate, config.window, config.lookups),
        None => Pacer::closed_loop(config.workers, config.lookups),
    };
    let lookup = run_phase(
        conn,
        &clock,
        lookup_pacer,
        PhaseKind::Lookup {
            objects: &workload.objects,
            rng: SmallRng::seed_from_u64(config.seed.wrapping_mul(0x9e37_79b9)),
            nodes: config.nodes,
        },
        timeout_floor(config.timeout),
        &mut next_token,
        churn.as_mut(),
    )?;

    Ok(LoadReport {
        announce,
        lookup,
        churn_volleys: churn.as_ref().map_or(0, |c| c.volleys),
        churn_perturbs: churn.as_ref().map_or(0, |c| c.perturbs),
    })
}

fn timeout_floor(t: Duration) -> Duration {
    t.max(Duration::from_millis(10))
}

/// Asks the daemon how many nodes it serves (a `Stats` round-trip) so
/// remote clients size their origin space to the actual cluster
/// instead of guessing `--nodes` — a mismatch turns every origin past
/// the daemon's range into a `BAD_NODE` reject.
///
/// # Errors
///
/// [`LoadError`] when the daemon does not answer within `timeout`.
pub fn probe_live_nodes<C: CtrlConnection>(
    conn: &mut C,
    timeout: Duration,
) -> Result<usize, LoadError> {
    conn.send(&CtrlRequest::Stats.encode(ADMIN_BASE))?;
    let clock = WallClock::start();
    while clock.elapsed() < timeout {
        if let Some(raw) = conn.recv(POLL)? {
            if let Ok((ADMIN_BASE, CtrlResponse::Stats(body))) = CtrlResponse::decode(&raw) {
                return Ok(body.live_nodes as usize);
            }
        }
    }
    Err(LoadError(
        "stats probe got no answer (daemon down, or wrong --addr?)".to_string(),
    ))
}

/// Which control plane an embedded run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlKind {
    /// Real loopback-UDP datagrams (exercises the full wire path).
    Udp,
    /// In-process channels (deterministic delivery; the CI smoke).
    Channel,
}

/// Spawns a daemon on a background thread, runs the load against it,
/// then drains it and returns both reports. The cluster's data-plane
/// transport comes from `daemon.transport`; `ctrl` picks the control
/// plane.
///
/// # Errors
///
/// [`LoadError`] when the daemon fails to spawn or the run dies.
pub fn run_embedded(
    daemon: DaemonConfig,
    load: &LoadConfig,
    ctrl: CtrlKind,
) -> Result<(LoadReport, DaemonReport), LoadError> {
    match ctrl {
        CtrlKind::Channel => {
            let (server, mut client) = ChannelControl::pair();
            let handle = std::thread::spawn(move || Daemon::spawn(daemon, server).map(Daemon::run));
            finish_embedded(&mut client, load, handle)
        }
        CtrlKind::Udp => {
            let server = UdpControl::bind(0).map_err(|e| LoadError(format!("ctrl bind: {e}")))?;
            let addr = server
                .local_addr()
                .map_err(|e| LoadError(format!("ctrl addr: {e}")))?;
            let handle = std::thread::spawn(move || Daemon::spawn(daemon, server).map(Daemon::run));
            let mut client =
                UdpCtrlClient::connect(addr).map_err(|e| LoadError(format!("connect: {e}")))?;
            finish_embedded(&mut client, load, handle)
        }
    }
}

type DaemonHandle = std::thread::JoinHandle<Result<DaemonReport, DaemonError>>;

fn finish_embedded<C: CtrlConnection>(
    client: &mut C,
    load: &LoadConfig,
    handle: DaemonHandle,
) -> Result<(LoadReport, DaemonReport), LoadError> {
    let result = run_load(client, load);
    // Always try to drain, even after a failed run, so the thread exits.
    let drain = CtrlRequest::Drain {
        millis: load.drain.as_millis() as u32,
    };
    let _ = client.send(&drain.encode(ADMIN_BASE));
    let daemon_report = match handle.join() {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => return Err(LoadError(format!("daemon: {e}"))),
        Err(_) => return Err(LoadError("daemon thread panicked".to_string())),
    };
    Ok((result?, daemon_report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_channel_run_completes_with_high_success() {
        let daemon = DaemonConfig {
            nodes: 24,
            degree: 6,
            seed: 3,
            ..DaemonConfig::default()
        };
        let load = LoadConfig {
            objects: 20,
            lookups: 60,
            nodes: 24,
            workers: 8,
            seed: 3,
            ..LoadConfig::default()
        };
        let (report, daemon_report) =
            run_embedded(daemon, &load, CtrlKind::Channel).expect("embedded run");
        assert_eq!(report.announce.issued, 20);
        assert_eq!(report.lookup.issued, 60);
        assert!(
            report.lookup.success_pct() >= 99.0,
            "healthy cluster must answer lookups ({})",
            report.lookup.to_json()
        );
        assert!(daemon_report.stats.hits >= 59);
        assert!(report.lookup.p99_ms > 0.0, "latency must be measured");
    }

    #[test]
    fn open_loop_rate_is_respected_on_the_wire() {
        let daemon = DaemonConfig {
            nodes: 16,
            degree: 4,
            seed: 4,
            ..DaemonConfig::default()
        };
        let load = LoadConfig {
            objects: 10,
            lookups: 100,
            nodes: 16,
            rate: Some(400.0),
            window: 64,
            seed: 4,
            ..LoadConfig::default()
        };
        let (report, _) = run_embedded(daemon, &load, CtrlKind::Udp).expect("embedded run");
        // 100 lookups at 400/s should take ~0.25 s; allow generous slop
        // for CI but catch a broken scheduler (instant or 10x slow).
        assert!(
            report.lookup.duration_s > 0.15 && report.lookup.duration_s < 5.0,
            "open-loop pacing off: {} s",
            report.lookup.duration_s
        );
        assert!(report.lookup.success_pct() >= 90.0);
    }

    #[test]
    fn stats_probe_reports_the_cluster_size() {
        let daemon = DaemonConfig {
            nodes: 20,
            degree: 6,
            spares: 4,
            seed: 6,
            ..DaemonConfig::default()
        };
        let (server, mut client) = ChannelControl::pair();
        let handle = std::thread::spawn(move || Daemon::spawn(daemon, server).map(Daemon::run));
        let nodes =
            probe_live_nodes(&mut client, Duration::from_secs(5)).expect("probe must answer");
        assert_eq!(nodes, 20, "spares are parked, not live");
        let _ = client.send(&CtrlRequest::Drain { millis: 100 }.encode(ADMIN_BASE));
        handle.join().expect("daemon thread").expect("daemon run");
    }

    #[test]
    fn churn_plan_fires_and_run_survives() {
        let daemon = DaemonConfig {
            nodes: 32,
            degree: 8,
            seed: 5,
            mpil: mpil::MpilConfig::default()
                .with_max_flows(10)
                .with_num_replicas(5),
            ..DaemonConfig::default()
        };
        let load = LoadConfig {
            objects: 20,
            lookups: 200,
            nodes: 32,
            rate: Some(500.0),
            window: 128,
            seed: 5,
            churn: Some(ChurnPlan {
                period: Duration::from_millis(50),
                count: 2,
                length: Duration::from_millis(120),
            }),
            ..LoadConfig::default()
        };
        let (report, daemon_report) =
            run_embedded(daemon, &load, CtrlKind::Channel).expect("embedded run");
        assert!(report.churn_volleys > 0, "churn must actually fire");
        assert!(report.churn_perturbs >= report.churn_volleys);
        assert_eq!(daemon_report.perturbs, report.churn_perturbs);
        let dropped: u64 = daemon_report
            .node_stats
            .iter()
            .map(|s| s.dropped_perturbed)
            .sum();
        assert!(dropped > 0, "perturbed nodes must have dropped frames");
        assert!(
            report.lookup.success_pct() >= 80.0,
            "replicated lookups should mostly ride out churn: {}",
            report.lookup.to_json()
        );
    }
}
