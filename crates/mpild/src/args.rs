//! Flag parsing shared by the `mpild`/`mpil-load` binaries and the
//! `mpilctl serve`/`mpilctl load` subcommands, on top of the
//! workspace's [`Args`] (`--key value` / `--flag`) convention.

use std::time::Duration;

use mpil::MpilConfig;
use mpil_bench::Args;
use mpil_net::{RetryPolicy, TransportKind};

use crate::daemon::DaemonConfig;
use crate::load::{ChurnPlan, LoadConfig};

/// Builds a [`DaemonConfig`] from flags:
/// `--nodes N --degree D --spares S --seed K --udp --max-flows F
/// --replicas R --no-ds --timeout-ms T --retries N`.
pub fn daemon_config(args: &Args) -> DaemonConfig {
    let defaults = DaemonConfig::default();
    let mut mpil = MpilConfig::default()
        .with_max_flows(args.value_or("max-flows", 10))
        .with_num_replicas(args.value_or("replicas", 3));
    if args.flag("no-ds") {
        mpil = mpil.with_duplicate_suppression(false);
    }
    DaemonConfig {
        nodes: args.value_or("nodes", defaults.nodes),
        degree: args.value_or("degree", defaults.degree),
        spares: args.value_or("spares", defaults.spares),
        seed: args.value_or("seed", defaults.seed),
        transport: if args.flag("udp") {
            TransportKind::Udp
        } else {
            TransportKind::Channel
        },
        mpil,
        retry: RetryPolicy {
            timeout: Duration::from_millis(args.value_or("timeout-ms", 150)),
            retries: args.value_or("retries", 2),
        },
        fallback_drain: Duration::from_millis(args.value_or("fallback-drain-ms", 500)),
    }
}

/// Builds a [`LoadConfig`] from flags:
/// `--objects N --lookups K --rate R --window W --workers C
/// --client-timeout-ms T --seed S --drain-ms D
/// --churn-period-ms P --churn-count N --churn-length-ms L`.
///
/// `nodes` is the target daemon's live node count (origins are drawn
/// below it).
pub fn load_config(args: &Args, nodes: usize) -> LoadConfig {
    let defaults = LoadConfig::default();
    let churn = args.value("churn-period-ms").and_then(|v| {
        let period: u64 = v.parse().ok()?;
        Some(ChurnPlan {
            period: Duration::from_millis(period),
            count: args.value_or("churn-count", 2),
            length: Duration::from_millis(args.value_or("churn-length-ms", 200)),
        })
    });
    LoadConfig {
        objects: args.value_or("objects", defaults.objects),
        lookups: args.value_or("lookups", defaults.lookups),
        nodes,
        rate: args.value("rate").and_then(|v| v.parse().ok()),
        window: args.value_or("window", defaults.window),
        workers: args.value_or("workers", defaults.workers),
        timeout: Duration::from_millis(args.value_or("client-timeout-ms", 2000)),
        seed: args.value_or("seed", defaults.seed),
        churn,
        drain: Duration::from_millis(args.value_or("drain-ms", 500)),
    }
}
