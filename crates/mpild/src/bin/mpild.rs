//! `mpild` — the MPIL service daemon.
//!
//! Hosts a live thread-per-node MPIL cluster behind a loopback-UDP
//! control socket. Prints one JSON line on startup (with the bound
//! control address) and one final JSON report after a `drain` request
//! shuts it down.
//!
//! ```text
//! mpild [--port P] [--nodes N] [--degree D] [--spares S] [--seed K]
//!       [--udp] [--max-flows F] [--replicas R] [--no-ds]
//!       [--timeout-ms T] [--retries N]
//! ```

use std::io::Write;

use mpil_bench::Args;
use mpild::{args, Daemon, UdpControl};

const USAGE: &str = "\
mpild — MPIL service daemon (control plane on loopback UDP)

  --port P         control port (default 0 = ephemeral, printed on stdout)
  --nodes N        overlay nodes in service (default 48)
  --degree D       regular-graph degree (default 8)
  --spares S       parked spare nodes, joinable via the admin plane (default 0)
  --seed K         master seed (default 1)
  --udp            run the cluster data plane over loopback UDP (default: channels)
  --max-flows F    MPIL parallel flows (default 10)
  --replicas R     MPIL replicas (default 3)
  --no-ds          disable duplicate suppression
  --timeout-ms T   per-request timeout before a retry (default 150)
  --retries N      retries per request (default 2)

Stop it with `mpil-load --stop-daemon` or any client sending a drain
frame; the daemon drains in-flight work, joins the node threads, and
prints its final report as one JSON line.
";

fn main() {
    let a = Args::parse_env();
    if a.flag("help") {
        print!("{USAGE}");
        return;
    }
    let config = args::daemon_config(&a);
    let port: u16 = a.value_or("port", 0);
    let ctrl = match UdpControl::bind(port) {
        Ok(ctrl) => ctrl,
        Err(e) => {
            eprintln!("mpild: cannot bind control port {port}: {e}");
            std::process::exit(2);
        }
    };
    let addr = match ctrl.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("mpild: control socket has no address: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "{{\"mpild\":\"listening\",\"ctrl_addr\":\"{addr}\",\"nodes\":{},\"degree\":{},\
         \"spares\":{},\"seed\":{},\"transport\":\"{}\"}}",
        config.nodes,
        config.degree,
        config.spares,
        config.seed,
        if a.flag("udp") { "udp" } else { "channel" },
    );
    // The startup line is how scripts find the port — get it out before
    // the (potentially slow) cluster spawn.
    let _ = std::io::stdout().flush();
    let daemon = match Daemon::spawn(config, ctrl) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("mpild: {e}");
            std::process::exit(2);
        }
    };
    let report = daemon.run();
    println!("{}", report.to_json());
}
