//! `mpil-load` — load generator for `mpild`.
//!
//! Runs the paper's insert-then-lookup workload against a daemon:
//! announce phase closed-loop, lookup phase at a configurable offered
//! rate (open loop, bounded in-flight window) or closed-loop, with
//! optional flapping churn injected through the admin plane mid-run.
//! Prints one JSON line with latency percentiles and success rates,
//! and exits non-zero when a `--min-success` / `--max-p99-ms` gate (or
//! the `--budget-s` wall-clock budget) is violated.
//!
//! ```text
//! mpil-load --addr 127.0.0.1:PORT [workload flags] [gates]
//! mpil-load --embedded [--ctrl-udp] [daemon flags] [workload flags] [gates]
//!
//! workload: --objects N --lookups K --rate R --window W --workers C
//!           --client-timeout-ms T --seed S --drain-ms D
//!           --churn-period-ms P --churn-count N --churn-length-ms L
//! gates:    --min-success PCT --max-p99-ms MS --budget-s S
//! ```

use std::time::Duration;

use mpil_bench::Args;
use mpil_harness::WallClockBudget;
use mpild::{
    args, probe_live_nodes, run_embedded, run_load, CtrlKind, CtrlRequest, LoadReport,
    UdpCtrlClient,
};

const USAGE: &str = "\
mpil-load — load generator for mpild

Target (pick one):
  --addr HOST:PORT     drive a running mpild over loopback UDP
  --embedded           spawn a daemon thread in-process and drive it
                       (accepts all mpild flags; --ctrl-udp uses real
                       UDP for the control plane even when embedded)

Workload:
  --objects N          object table size / announce count (default 100)
  --lookups K          lookups over the table (default 500)
  --rate R             offered lookup rate per second (open loop);
                       omit for closed loop
  --window W           open-loop in-flight window (default 256)
  --workers C          closed-loop workers (default 16)
  --client-timeout-ms  per-request client deadline (default 2000)
  --seed S             workload seed (default 1)
  --nodes N            origin space (remote default: probed via stats)
  --churn-period-ms P  perturb a volley of nodes every P ms
  --churn-count N      nodes per volley (default 2)
  --churn-length-ms L  perturbation length (default 200)

Gates (exit 1 when violated):
  --min-success PCT    minimum lookup success percentage
  --max-p99-ms MS      maximum lookup p99 latency
  --budget-s S         wall-clock budget for the whole run

Other:
  --stop-daemon        send a drain to the remote daemon afterwards
  --drain-ms D         drain budget for that shutdown (default 500)
";

fn gate_failures(a: &Args, report: &LoadReport) -> Vec<String> {
    let mut failures = Vec::new();
    if let Some(min) = a.value("min-success").and_then(|v| v.parse::<f64>().ok()) {
        let got = report.lookup.success_pct();
        if got < min {
            failures.push(format!("lookup success {got:.2}% < gate {min:.2}%"));
        }
    }
    if let Some(max) = a.value("max-p99-ms").and_then(|v| v.parse::<f64>().ok()) {
        let got = report.lookup.p99_ms;
        if got > max {
            failures.push(format!("lookup p99 {got:.2} ms > gate {max:.2} ms"));
        }
    }
    failures
}

fn main() {
    let a = Args::parse_env();
    if a.flag("help") {
        print!("{USAGE}");
        return;
    }
    let budget = a
        .value("budget-s")
        .and_then(|v| v.parse::<f64>().ok())
        .map(|s| WallClockBudget::start(Duration::from_secs_f64(s)));

    let (report, daemon_json) = if a.flag("embedded") {
        let dcfg = args::daemon_config(&a);
        let lcfg = args::load_config(&a, dcfg.nodes);
        let ctrl = if a.flag("ctrl-udp") {
            CtrlKind::Udp
        } else {
            CtrlKind::Channel
        };
        match run_embedded(dcfg, &lcfg, ctrl) {
            Ok((report, daemon_report)) => (report, Some(daemon_report.to_json())),
            Err(e) => {
                eprintln!("mpil-load: {e}");
                std::process::exit(2);
            }
        }
    } else {
        let Some(addr) = a.value("addr").and_then(|v| v.parse().ok()) else {
            eprintln!("mpil-load: need --addr HOST:PORT or --embedded (see --help)");
            std::process::exit(2);
        };
        let mut conn = match UdpCtrlClient::connect(addr) {
            Ok(conn) => conn,
            Err(e) => {
                eprintln!("mpil-load: connect {addr}: {e}");
                std::process::exit(2);
            }
        };
        // Size the origin space to the actual cluster unless the user
        // pinned it: a stale --nodes turns origins past the daemon's
        // range into BAD_NODE rejects.
        let nodes = match a.value("nodes").and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => match probe_live_nodes(&mut conn, Duration::from_secs(2)) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("mpil-load: {e}");
                    std::process::exit(2);
                }
            },
        };
        let lcfg = args::load_config(&a, nodes);
        let report = match run_load(&mut conn, &lcfg) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("mpil-load: {e}");
                std::process::exit(2);
            }
        };
        if a.flag("stop-daemon") {
            use mpild::CtrlConnection;
            let drain = CtrlRequest::Drain {
                millis: lcfg.drain.as_millis() as u32,
            };
            let _ = conn.send(&drain.encode(u64::MAX));
        }
        (report, None)
    };

    match daemon_json {
        Some(daemon) => println!("{{\"load\":{},\"daemon\":{}}}", report.to_json(), daemon),
        None => println!("{{\"load\":{}}}", report.to_json()),
    }

    let mut failures = gate_failures(&a, &report);
    if let Some(budget) = budget {
        if let Err(e) = budget.check("mpil-load run") {
            failures.push(e);
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("mpil-load: GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}
