//! The `mpild` daemon: a live MPIL cluster behind a control plane.
//!
//! One [`Daemon`] owns a [`LiveCluster`] (one thread per overlay node
//! over a channel or loopback-UDP mesh) and a [`ControlPlane`] socket.
//! Its single-threaded event loop multiplexes three sources:
//!
//! 1. **Control requests** — announce / lookup / join / perturb / heal /
//!    stats / drain frames from clients ([`crate::proto`]);
//! 2. **Cluster events** — store-acks and lookup replies surfacing on
//!    the cluster's client endpoint ([`LiveCluster::poll_event`]);
//! 3. **Deadlines** — per-request timeouts tracked by a
//!    [`RequestTracker`], with bounded retries under fresh message ids.
//!
//! Data-plane requests are fully pipelined: a control frame is turned
//! into a [`LiveCluster::submit`] and a tracker entry, and the client
//! hears back when the matching event arrives (or the retry budget
//! dies). Every wall-clock read goes through the workspace's sanctioned
//! [`WallClock`] touchpoint; timestamps inside the daemon are plain
//! [`Duration`]s since startup.
//!
//! Shutdown is graceful by contract: a `Drain` request stops admission,
//! keeps pumping events until the in-flight set empties (or the drain
//! budget runs out, failing the stragglers), then drains the node
//! threads themselves via [`LiveCluster::shutdown_drain`].

use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

use mpil::{MessageKind, MpilConfig};
use mpil_harness::WallClock;
use mpil_id::Id;
use mpil_net::{
    ClientEvent, LiveClusterBuilder, NodeStats, RequestTracker, RetryPolicy, TransportKind,
};
use mpil_overlay::{generators, NodeIdx};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::proto::{err_code, CtrlRequest, CtrlResponse, StatsBody};

/// Smallest poll slice the daemon uses. UDP sockets reject a zero read
/// timeout, so this is the floor for every blocking wait.
const POLL: Duration = Duration::from_millis(1);
/// Control frames handled per loop iteration before the event pump gets
/// a turn (keeps a flooding client from starving in-flight replies).
const CTRL_BATCH: usize = 256;
/// Cluster events handled per loop iteration.
const EVENT_BATCH: usize = 1024;

/// One end of the daemon's admin/data socket. `mpild` ships two: a
/// loopback-UDP implementation for real clients and an in-process
/// channel pair for embedded/smoke use.
pub trait ControlPlane: Send {
    /// Client address type, echoed back on [`ControlPlane::send`].
    type Addr: Clone + std::fmt::Debug + Send;

    /// Receives the next request frame, waiting at most `timeout`;
    /// `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// `std::io::Error` when the plane is unusable (the daemon treats
    /// this as a shutdown signal).
    fn recv(&mut self, timeout: Duration) -> std::io::Result<Option<(Self::Addr, Vec<u8>)>>;

    /// Sends a response frame to `to`.
    ///
    /// # Errors
    ///
    /// `std::io::Error` on socket failure (the daemon counts and
    /// continues — the client may simply be gone).
    fn send(&mut self, to: &Self::Addr, frame: &[u8]) -> std::io::Result<()>;
}

/// Loopback-UDP control plane: one datagram per request/response.
#[derive(Debug)]
pub struct UdpControl {
    socket: UdpSocket,
}

impl UdpControl {
    /// Binds `127.0.0.1:port` (`port` 0 picks an ephemeral port).
    ///
    /// # Errors
    ///
    /// Socket `bind` failure.
    pub fn bind(port: u16) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", port))?;
        Ok(UdpControl { socket })
    }

    /// The bound address, for clients to connect to.
    ///
    /// # Errors
    ///
    /// `local_addr` failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }
}

impl ControlPlane for UdpControl {
    type Addr = SocketAddr;

    fn recv(&mut self, timeout: Duration) -> std::io::Result<Option<(SocketAddr, Vec<u8>)>> {
        self.socket.set_read_timeout(Some(timeout.max(POLL)))?;
        let mut buf = [0u8; 512];
        match self.socket.recv_from(&mut buf) {
            Ok((len, addr)) => Ok(Some((addr, buf[..len].to_vec()))),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    fn send(&mut self, to: &SocketAddr, frame: &[u8]) -> std::io::Result<()> {
        self.socket.send_to(frame, to).map(|_| ())
    }
}

/// In-process control plane for embedded daemons (the CI smoke and
/// `mpil-load --embedded`): a crossbeam channel pair with a single
/// client.
#[derive(Debug)]
pub struct ChannelControl {
    rx: crossbeam::channel::Receiver<Vec<u8>>,
    tx: crossbeam::channel::Sender<Vec<u8>>,
}

/// The client half of a [`ChannelControl`] pair; implements the load
/// generator's connection trait.
#[derive(Debug)]
pub struct ChannelCtrlClient {
    rx: crossbeam::channel::Receiver<Vec<u8>>,
    tx: crossbeam::channel::Sender<Vec<u8>>,
}

impl ChannelControl {
    /// A connected (server, client) pair.
    pub fn pair() -> (ChannelControl, ChannelCtrlClient) {
        let (to_daemon, from_client) = crossbeam::channel::unbounded();
        let (to_client, from_daemon) = crossbeam::channel::unbounded();
        (
            ChannelControl {
                rx: from_client,
                tx: to_client,
            },
            ChannelCtrlClient {
                rx: from_daemon,
                tx: to_daemon,
            },
        )
    }
}

fn broken_pipe() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::BrokenPipe, "control peer disconnected")
}

impl ControlPlane for ChannelControl {
    type Addr = ();

    fn recv(&mut self, timeout: Duration) -> std::io::Result<Option<((), Vec<u8>)>> {
        match self.rx.recv_timeout(timeout.max(POLL)) {
            Ok(frame) => Ok(Some(((), frame))),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(broken_pipe()),
        }
    }

    fn send(&mut self, _to: &(), frame: &[u8]) -> std::io::Result<()> {
        self.tx.send(frame.to_vec()).map_err(|_| broken_pipe())
    }
}

impl ChannelCtrlClient {
    /// Sends a request frame to the embedded daemon.
    ///
    /// # Errors
    ///
    /// `BrokenPipe` when the daemon is gone.
    pub fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.tx.send(frame.to_vec()).map_err(|_| broken_pipe())
    }

    /// Receives the next response frame, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// `BrokenPipe` when the daemon is gone.
    pub fn recv(&mut self, timeout: Duration) -> std::io::Result<Option<Vec<u8>>> {
        match self.rx.recv_timeout(timeout.max(POLL)) {
            Ok(frame) => Ok(Some(frame)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(broken_pipe()),
        }
    }
}

/// Everything needed to spawn a daemon.
#[derive(Debug, Clone, Copy)]
pub struct DaemonConfig {
    /// Overlay nodes in service from the start.
    pub nodes: usize,
    /// Regular-graph degree of the overlay.
    pub degree: usize,
    /// Extra nodes spawned parked, joinable later via the `Join` admin
    /// op (the live analogue of not-yet-joined members).
    pub spares: usize,
    /// Master seed: topology, node ids, per-node RNGs.
    pub seed: u64,
    /// Data-plane transport of the cluster mesh.
    pub transport: TransportKind,
    /// MPIL protocol parameters (flows, replicas, suppression).
    pub mpil: MpilConfig,
    /// Per-request timeout/retry policy of the daemon's data plane.
    pub retry: RetryPolicy,
    /// Drain budget applied when the control plane dies without a
    /// `Drain` request (embedded client dropped, socket error).
    pub fallback_drain: Duration,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            nodes: 48,
            degree: 8,
            spares: 0,
            seed: 1,
            transport: TransportKind::Channel,
            mpil: MpilConfig::default()
                .with_max_flows(10)
                .with_num_replicas(3),
            retry: RetryPolicy::default(),
            fallback_drain: Duration::from_millis(500),
        }
    }
}

/// Why a daemon failed to start or died.
#[derive(Debug)]
pub struct DaemonError(pub String);

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DaemonError {}

/// What the daemon was doing for a tracked request.
#[derive(Debug, Clone, Copy)]
struct Ticket<A> {
    addr: A,
    token: u64,
    kind: MessageKind,
    object: Id,
    origin: NodeIdx,
}

/// The final account of a daemon's life, returned by [`Daemon::run`].
#[derive(Debug, Clone, Default)]
pub struct DaemonReport {
    /// Seconds between startup and the end of the drain.
    pub uptime_s: f64,
    /// Service counters at shutdown.
    pub stats: StatsBody,
    /// Join admin operations applied.
    pub joins: u64,
    /// Perturb admin operations applied.
    pub perturbs: u64,
    /// Heal admin operations applied.
    pub heals: u64,
    /// Control frames that failed to decode or named bad nodes.
    pub bad_requests: u64,
    /// Control-plane send failures (client gone).
    pub send_errors: u64,
    /// Requests still in flight when the drain budget ran out.
    pub aborted_at_drain: u64,
    /// Per-node worker statistics, joined at shutdown.
    pub node_stats: Vec<NodeStats>,
}

impl DaemonReport {
    /// One-line JSON rendering (hand-rolled, like the bench artifacts).
    pub fn to_json(&self) -> String {
        let forwards: u64 = self.node_stats.iter().map(|s| s.forwards).sum();
        let stores: u64 = self.node_stats.iter().map(|s| s.stores).sum();
        let dropped_perturbed: u64 = self.node_stats.iter().map(|s| s.dropped_perturbed).sum();
        let dropped_at_drain: u64 = self.node_stats.iter().map(|s| s.dropped_at_drain).sum();
        format!(
            "{{\"uptime_s\":{:.3},\"announces\":{},\"hits\":{},\"lookup_timeouts\":{},\
             \"announce_timeouts\":{},\"retries\":{},\"live_nodes\":{},\"parked\":{},\
             \"joins\":{},\"perturbs\":{},\"heals\":{},\"bad_requests\":{},\
             \"send_errors\":{},\"aborted_at_drain\":{},\"node_forwards\":{},\
             \"node_stores\":{},\"node_dropped_perturbed\":{},\"node_dropped_at_drain\":{}}}",
            self.uptime_s,
            self.stats.announces,
            self.stats.hits,
            self.stats.lookup_timeouts,
            self.stats.announce_timeouts,
            self.stats.retries,
            self.stats.live_nodes,
            self.stats.parked,
            self.joins,
            self.perturbs,
            self.heals,
            self.bad_requests,
            self.send_errors,
            self.aborted_at_drain,
            forwards,
            stores,
            dropped_perturbed,
            dropped_at_drain,
        )
    }
}

/// A running MPIL service: cluster + control plane + request tracker.
pub struct Daemon<C: ControlPlane> {
    config: DaemonConfig,
    cluster: mpil_net::LiveCluster,
    ctrl: C,
    clock: WallClock,
    tracker: RequestTracker<Ticket<C::Addr>>,
    total_nodes: usize,
    parked: u32,
    report: DaemonReport,
    /// `Some(budget)` once a drain was requested.
    draining: Option<Duration>,
}

impl<C: ControlPlane> Daemon<C> {
    /// Generates the overlay, spawns the cluster (parking the spares),
    /// and wires it to `ctrl`.
    ///
    /// # Errors
    ///
    /// [`DaemonError`] when topology generation or cluster spawn fails.
    pub fn spawn(config: DaemonConfig, ctrl: C) -> Result<Self, DaemonError> {
        let total = config.nodes + config.spares;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let topo = generators::random_regular(total, config.degree, &mut rng)
            .map_err(|e| DaemonError(format!("topology: {e}")))?;
        let cluster = LiveClusterBuilder::new()
            .config(config.mpil)
            .transport(config.transport)
            .seed(config.seed)
            .spawn(&topo)
            .map_err(|e| DaemonError(format!("spawn: {e}")))?;
        for spare in config.nodes..total {
            cluster.park(NodeIdx::new(spare as u32));
        }
        Ok(Daemon {
            config,
            cluster,
            ctrl,
            clock: WallClock::start(),
            tracker: RequestTracker::new(config.retry),
            total_nodes: total,
            parked: config.spares as u32,
            report: DaemonReport::default(),
            draining: None,
        })
    }

    /// The spawn-time configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    fn stats_body(&self) -> StatsBody {
        StatsBody {
            live_nodes: self.total_nodes as u32 - self.parked,
            parked: self.parked,
            uptime_ms: self.clock.elapsed().as_millis() as u64,
            ..self.report.stats
        }
    }

    fn respond(&mut self, addr: &C::Addr, token: u64, resp: CtrlResponse) {
        if self.ctrl.send(addr, &resp.encode(token)).is_err() {
            self.report.send_errors += 1;
        }
    }

    /// Validates a data-plane entry node: must exist and be in service.
    fn entry_error(&self, origin: u32) -> Option<u8> {
        if origin as usize >= self.total_nodes {
            Some(err_code::BAD_NODE)
        } else if self.cluster.is_parked(NodeIdx::new(origin)) {
            Some(err_code::UNAVAILABLE)
        } else {
            None
        }
    }

    fn submit_tracked(
        &mut self,
        addr: C::Addr,
        token: u64,
        kind: MessageKind,
        object: Id,
        origin: u32,
    ) {
        if let Some(code) = self.entry_error(origin) {
            self.report.bad_requests += 1;
            self.respond(&addr, token, CtrlResponse::Err { code });
            return;
        }
        let origin = NodeIdx::new(origin);
        match self.cluster.submit(kind, origin, object) {
            Ok(msg_id) => {
                let ticket = Ticket {
                    addr,
                    token,
                    kind,
                    object,
                    origin,
                };
                self.tracker.track(msg_id, ticket, self.clock.elapsed());
            }
            Err(_) => {
                self.respond(
                    &addr,
                    token,
                    CtrlResponse::Err {
                        code: err_code::TRANSPORT,
                    },
                );
            }
        }
    }

    fn handle_ctrl(&mut self, addr: C::Addr, frame: &[u8]) {
        let (token, req) = match CtrlRequest::decode(frame) {
            Ok(pair) => pair,
            Err(_) => {
                self.report.bad_requests += 1;
                // Token 0: the sender's framing is broken, there is no
                // token to echo.
                self.respond(
                    &addr,
                    0,
                    CtrlResponse::Err {
                        code: err_code::BAD_REQUEST,
                    },
                );
                return;
            }
        };
        // Past the drain point only stats/drain are served; data and
        // admin requests are turned away so the in-flight set can only
        // shrink.
        if self.draining.is_some() && !matches!(req, CtrlRequest::Stats | CtrlRequest::Drain { .. })
        {
            self.respond(
                &addr,
                token,
                CtrlResponse::Err {
                    code: err_code::UNAVAILABLE,
                },
            );
            return;
        }
        match req {
            CtrlRequest::Announce { object, origin } => {
                self.submit_tracked(addr, token, MessageKind::Insert, object, origin);
            }
            CtrlRequest::Lookup { object, origin } => {
                self.submit_tracked(addr, token, MessageKind::Lookup, object, origin);
            }
            CtrlRequest::Join { node } => {
                let idx = NodeIdx::new(node);
                if (node as usize) < self.total_nodes && self.cluster.is_parked(idx) {
                    self.cluster.unpark(idx);
                    self.parked = self.parked.saturating_sub(1);
                    self.report.joins += 1;
                    self.respond(&addr, token, CtrlResponse::Ok);
                } else {
                    self.report.bad_requests += 1;
                    self.respond(
                        &addr,
                        token,
                        CtrlResponse::Err {
                            code: err_code::BAD_NODE,
                        },
                    );
                }
            }
            CtrlRequest::Perturb { node, millis } => {
                if (node as usize) < self.total_nodes {
                    self.cluster
                        .perturb(NodeIdx::new(node), Duration::from_millis(u64::from(millis)));
                    self.report.perturbs += 1;
                    self.respond(&addr, token, CtrlResponse::Ok);
                } else {
                    self.report.bad_requests += 1;
                    self.respond(
                        &addr,
                        token,
                        CtrlResponse::Err {
                            code: err_code::BAD_NODE,
                        },
                    );
                }
            }
            CtrlRequest::Heal { node } => {
                if (node as usize) < self.total_nodes {
                    self.cluster.heal(NodeIdx::new(node));
                    self.report.heals += 1;
                    self.respond(&addr, token, CtrlResponse::Ok);
                } else {
                    self.report.bad_requests += 1;
                    self.respond(
                        &addr,
                        token,
                        CtrlResponse::Err {
                            code: err_code::BAD_NODE,
                        },
                    );
                }
            }
            CtrlRequest::Stats => {
                let body = self.stats_body();
                self.respond(&addr, token, CtrlResponse::Stats(body));
            }
            CtrlRequest::Drain { millis } => {
                self.draining = Some(Duration::from_millis(u64::from(millis)));
                self.respond(&addr, token, CtrlResponse::Ok);
            }
        }
    }

    fn handle_event(&mut self, event: ClientEvent) {
        match event {
            ClientEvent::Reply {
                msg_id,
                holder,
                hops,
                ..
            } => {
                // Later flows of the same lookup produce more replies;
                // only the first resolves the ticket.
                if let Some(p) = self.tracker.complete(msg_id) {
                    self.report.stats.hits += 1;
                    let addr = p.token.addr.clone();
                    self.respond(
                        &addr,
                        p.token.token,
                        CtrlResponse::Found {
                            holder: holder.index() as u32,
                            hops,
                        },
                    );
                }
            }
            ClientEvent::StoreAck { msg_id, holder, .. } => {
                if let Some(p) = self.tracker.complete(msg_id) {
                    self.report.stats.announces += 1;
                    let addr = p.token.addr.clone();
                    self.respond(
                        &addr,
                        p.token.token,
                        CtrlResponse::Announced {
                            holder: holder.index() as u32,
                        },
                    );
                }
            }
        }
    }

    fn handle_expiries(&mut self) {
        let now = self.clock.elapsed();
        while let Some((_, pending)) = self.tracker.pop_expired(now) {
            if self.tracker.should_retry(&pending) && self.draining.is_none() {
                let (kind, origin, object) = (
                    pending.token.kind,
                    pending.token.origin,
                    pending.token.object,
                );
                match self.cluster.submit(kind, origin, object) {
                    Ok(new_id) => {
                        self.tracker.retry(new_id, pending, now);
                        continue;
                    }
                    Err(_) => {
                        let addr = pending.token.addr.clone();
                        self.respond(
                            &addr,
                            pending.token.token,
                            CtrlResponse::Err {
                                code: err_code::TRANSPORT,
                            },
                        );
                        continue;
                    }
                }
            }
            self.fail_ticket(&pending.token);
        }
        self.report.stats.retries = self.tracker.retried();
    }

    /// Answers a request whose retry budget (or drain budget) ran out.
    fn fail_ticket(&mut self, t: &Ticket<C::Addr>) {
        let addr = t.addr.clone();
        match t.kind {
            MessageKind::Lookup => {
                self.report.stats.lookup_timeouts += 1;
                self.respond(&addr, t.token, CtrlResponse::NotFound);
            }
            MessageKind::Insert => {
                self.report.stats.announce_timeouts += 1;
                self.respond(
                    &addr,
                    t.token,
                    CtrlResponse::Err {
                        code: err_code::TIMEOUT,
                    },
                );
            }
        }
    }

    /// Serves until a `Drain` request (or control-plane death), drains,
    /// and returns the final account.
    pub fn run(mut self) -> DaemonReport {
        let drain_budget = loop {
            // 1. Admit control requests (bounded batch).
            let mut ctrl_dead = false;
            for _ in 0..CTRL_BATCH {
                match self.ctrl.recv(POLL) {
                    Ok(Some((addr, frame))) => self.handle_ctrl(addr, &frame),
                    Ok(None) => break,
                    Err(_) => {
                        ctrl_dead = true;
                        break;
                    }
                }
            }
            if ctrl_dead {
                break self.draining.unwrap_or(self.config.fallback_drain);
            }
            // 2. Pump cluster events (bounded batch).
            for _ in 0..EVENT_BATCH {
                match self.cluster.poll_event(POLL) {
                    Ok(Some(event)) => self.handle_event(event),
                    Ok(None) | Err(_) => break,
                }
            }
            // 3. Expire and retry.
            self.handle_expiries();
            // 4. A requested drain ends admission once in-flight work
            //    is resolved (the loop above keeps serving replies).
            if let Some(budget) = self.draining {
                break budget;
            }
        };
        self.drain(drain_budget)
    }

    /// Runs the drain protocol: pump events until the in-flight set is
    /// empty or `budget` elapses, fail the stragglers, then drain the
    /// node threads.
    fn drain(mut self, budget: Duration) -> DaemonReport {
        let deadline = self.clock.elapsed() + budget;
        while !self.tracker.is_idle() && self.clock.elapsed() < deadline {
            for _ in 0..EVENT_BATCH {
                match self.cluster.poll_event(POLL) {
                    Ok(Some(event)) => self.handle_event(event),
                    Ok(None) | Err(_) => break,
                }
            }
            self.handle_expiries();
        }
        for pending in self.tracker.abort_all() {
            self.report.aborted_at_drain += 1;
            let t = pending.token;
            let resp = match t.kind {
                MessageKind::Lookup => CtrlResponse::NotFound,
                MessageKind::Insert => CtrlResponse::Err {
                    code: err_code::TIMEOUT,
                },
            };
            self.respond(&t.addr.clone(), t.token, resp);
        }
        self.report.stats = self.stats_body();
        self.report.uptime_s = self.clock.elapsed_s();
        let remaining = deadline.saturating_sub(self.clock.elapsed()).max(POLL);
        self.report.node_stats = self.cluster.shutdown_drain(remaining);
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(req: CtrlRequest, token: u64) -> Vec<u8> {
        req.encode(token)
    }

    fn expect_resp(client: &mut ChannelCtrlClient, want_token: u64) -> CtrlResponse {
        let clock = WallClock::start();
        while clock.elapsed() < Duration::from_secs(5) {
            if let Ok(Some(raw)) = client.recv(Duration::from_millis(20)) {
                let (token, resp) = CtrlResponse::decode(&raw).expect("decode response");
                assert_eq!(token, want_token, "token echo");
                return resp;
            }
        }
        panic!("no response for token {want_token} within 5s");
    }

    fn spawn_daemon(
        config: DaemonConfig,
    ) -> (std::thread::JoinHandle<DaemonReport>, ChannelCtrlClient) {
        let (server, client) = ChannelControl::pair();
        let handle =
            std::thread::spawn(move || Daemon::spawn(config, server).expect("daemon spawn").run());
        (handle, client)
    }

    #[test]
    fn announce_then_lookup_round_trips_through_the_daemon() {
        let (handle, mut client) = spawn_daemon(DaemonConfig {
            nodes: 24,
            degree: 6,
            seed: 5,
            ..DaemonConfig::default()
        });
        let object = Id::from_low_u64(0x5eed);
        client
            .send(&frame(CtrlRequest::Announce { object, origin: 0 }, 1))
            .expect("send");
        assert!(matches!(
            expect_resp(&mut client, 1),
            CtrlResponse::Announced { .. }
        ));
        client
            .send(&frame(CtrlRequest::Lookup { object, origin: 9 }, 2))
            .expect("send");
        assert!(matches!(
            expect_resp(&mut client, 2),
            CtrlResponse::Found { .. }
        ));
        client
            .send(&frame(CtrlRequest::Drain { millis: 500 }, 3))
            .expect("send");
        assert!(matches!(expect_resp(&mut client, 3), CtrlResponse::Ok));
        let report = handle.join().expect("daemon thread");
        assert_eq!(report.stats.announces, 1);
        assert_eq!(report.stats.hits, 1);
        assert_eq!(report.node_stats.len(), 24);
    }

    #[test]
    fn lookup_of_absent_object_times_out_with_not_found() {
        let (handle, mut client) = spawn_daemon(DaemonConfig {
            nodes: 16,
            degree: 4,
            seed: 6,
            retry: RetryPolicy {
                timeout: Duration::from_millis(60),
                retries: 1,
            },
            ..DaemonConfig::default()
        });
        client
            .send(&frame(
                CtrlRequest::Lookup {
                    object: Id::from_low_u64(0xdead),
                    origin: 2,
                },
                7,
            ))
            .expect("send");
        assert!(matches!(
            expect_resp(&mut client, 7),
            CtrlResponse::NotFound
        ));
        client
            .send(&frame(CtrlRequest::Drain { millis: 300 }, 8))
            .expect("send");
        let _ = expect_resp(&mut client, 8);
        let report = handle.join().expect("daemon thread");
        assert_eq!(report.stats.lookup_timeouts, 1);
        assert!(report.stats.retries >= 1, "the retry budget must be spent");
    }

    #[test]
    fn join_unparks_a_spare_and_admin_ops_answer() {
        let (handle, mut client) = spawn_daemon(DaemonConfig {
            nodes: 16,
            degree: 4,
            spares: 2,
            seed: 7,
            ..DaemonConfig::default()
        });
        // A parked spare is not a valid entry node...
        client
            .send(&frame(
                CtrlRequest::Lookup {
                    object: Id::from_low_u64(1),
                    origin: 16,
                },
                1,
            ))
            .expect("send");
        assert_eq!(
            expect_resp(&mut client, 1),
            CtrlResponse::Err {
                code: err_code::UNAVAILABLE
            }
        );
        // ...until it joins.
        client
            .send(&frame(CtrlRequest::Join { node: 16 }, 2))
            .expect("send");
        assert_eq!(expect_resp(&mut client, 2), CtrlResponse::Ok);
        // Stats reflect the join.
        client.send(&frame(CtrlRequest::Stats, 3)).expect("send");
        match expect_resp(&mut client, 3) {
            CtrlResponse::Stats(s) => {
                assert_eq!(s.live_nodes, 17);
                assert_eq!(s.parked, 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // Perturb/heal on a bad index is rejected; on a good one it is Ok.
        client
            .send(&frame(
                CtrlRequest::Perturb {
                    node: 99,
                    millis: 10,
                },
                4,
            ))
            .expect("send");
        assert_eq!(
            expect_resp(&mut client, 4),
            CtrlResponse::Err {
                code: err_code::BAD_NODE
            }
        );
        client
            .send(&frame(
                CtrlRequest::Perturb {
                    node: 3,
                    millis: 10,
                },
                5,
            ))
            .expect("send");
        assert_eq!(expect_resp(&mut client, 5), CtrlResponse::Ok);
        client
            .send(&frame(CtrlRequest::Heal { node: 3 }, 6))
            .expect("send");
        assert_eq!(expect_resp(&mut client, 6), CtrlResponse::Ok);
        client
            .send(&frame(CtrlRequest::Drain { millis: 200 }, 9))
            .expect("send");
        let _ = expect_resp(&mut client, 9);
        let report = handle.join().expect("daemon thread");
        assert_eq!(report.joins, 1);
        assert_eq!(report.perturbs, 1);
        assert_eq!(report.heals, 1);
        assert_eq!(report.bad_requests, 2);
    }

    #[test]
    fn dropping_the_client_is_a_graceful_shutdown() {
        let (handle, client) = spawn_daemon(DaemonConfig {
            nodes: 12,
            degree: 4,
            seed: 8,
            fallback_drain: Duration::from_millis(100),
            ..DaemonConfig::default()
        });
        drop(client);
        let report = handle.join().expect("daemon thread");
        assert_eq!(report.node_stats.len(), 12, "cluster joined cleanly");
    }
}
