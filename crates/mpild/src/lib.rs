//! # mpild
//!
//! The MPIL **service**: what a deployment actually runs, as opposed to
//! the simulators that reproduce the paper's figures. Two binaries over
//! one library:
//!
//! * **`mpild`** — a long-running daemon hosting a [`LiveCluster`]
//!   (one thread per overlay node, channel or loopback-UDP data plane)
//!   behind a datagram control plane ([`proto`]): `announce`, `lookup`,
//!   and an admin plane (`join`/`perturb`/`heal`/`stats`/`drain`).
//!   Requests are pipelined through a per-request timeout/retry tracker;
//!   shutdown drains in-flight work before the node threads exit.
//! * **`mpil-load`** — a load generator driving the daemon with the
//!   paper's insert-then-lookup workload at a configurable offered rate
//!   (open loop with a bounded in-flight window, or closed loop),
//!   measuring per-request latency percentiles and optionally injecting
//!   flapping churn through the admin plane mid-run.
//!
//! Both speak the same versioned control frames, so `mpil-load` works
//! identically against an embedded daemon thread (the CI smoke), a
//! separate `mpild` process on loopback UDP, or anything else that
//! implements the protocol.
//!
//! Determinism contract: `mpild` is service code, so it *may* read the
//! wall clock — but only through the sanctioned
//! [`mpil_harness::WallClock`] touchpoint, and all pacing decisions are
//! made by the clock-free [`mpil_workload::Pacer`] fed with elapsed
//! durations. Randomness is always seeded (`SmallRng`), never entropy.
//!
//! [`LiveCluster`]: mpil_net::LiveCluster

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod daemon;
pub mod load;
pub mod proto;

pub use daemon::{
    ChannelControl, ChannelCtrlClient, ControlPlane, Daemon, DaemonConfig, DaemonError,
    DaemonReport, UdpControl,
};
pub use load::{
    probe_live_nodes, run_embedded, run_load, ChurnPlan, CtrlConnection, CtrlKind, LoadConfig,
    LoadError, LoadReport, PhaseReport, UdpCtrlClient,
};
pub use proto::{CtrlDecodeError, CtrlRequest, CtrlResponse, StatsBody, CTRL_VERSION};
