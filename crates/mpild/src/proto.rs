//! The `mpild` control-plane wire format.
//!
//! Clients drive the daemon with single-datagram request/response
//! frames — small enough that fragmentation is never a concern and
//! simple enough to decode without allocation. Every request carries a
//! client-chosen 64-bit **token** which the daemon echoes verbatim in
//! the response; with an unordered datagram transport underneath, the
//! token is how a pipelined client matches responses (which may arrive
//! in any order, or never) back to requests.
//!
//! Frame layout, byte-for-byte (all integers big-endian):
//!
//! ```text
//! offset  size  field
//! 0       1     version  (CTRL_VERSION = 1)
//! 1       1     kind     (request kinds 0x0_, response kinds 0x1_)
//! 2       8     token    (echoed verbatim in the response)
//! 10      ...   kind-specific fields (u32s, u64s, 20-byte object ids)
//! ```
//!
//! The format is versioned exactly like the data-plane codec in
//! `mpil_net::codec`: a daemon never guesses at frames from a different
//! protocol revision.

use mpil_id::{Id, ID_BYTES};

/// Control protocol revision. Bump on any frame-layout change.
pub const CTRL_VERSION: u8 = 1;

/// A client → daemon request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlRequest {
    /// Insert `object` into the overlay through entry node `origin`.
    Announce {
        /// Object id to announce.
        object: Id,
        /// Entry node index.
        origin: u32,
    },
    /// Look `object` up through entry node `origin`.
    Lookup {
        /// Object id to find.
        object: Id,
        /// Entry node index.
        origin: u32,
    },
    /// Bring the parked spare `node` into service.
    Join {
        /// Node index to unpark.
        node: u32,
    },
    /// Perturb `node` for `millis` milliseconds (it drops frames).
    Perturb {
        /// Node index to perturb.
        node: u32,
        /// Perturbation length in milliseconds.
        millis: u32,
    },
    /// Clear any perturbation on `node` immediately.
    Heal {
        /// Node index to heal.
        node: u32,
    },
    /// Ask for the daemon's service counters.
    Stats,
    /// Gracefully shut the daemon down, draining in-flight work for at
    /// most `millis` milliseconds.
    Drain {
        /// Drain budget in milliseconds.
        millis: u32,
    },
}

/// Daemon-side service counters, reported by [`CtrlResponse::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsBody {
    /// Announces answered (first replica confirmed).
    pub announces: u64,
    /// Lookups answered with a holder.
    pub hits: u64,
    /// Lookups that exhausted their retries.
    pub lookup_timeouts: u64,
    /// Announces that exhausted their retries.
    pub announce_timeouts: u64,
    /// Data-plane retries issued.
    pub retries: u64,
    /// Nodes currently in service (spawned minus parked).
    pub live_nodes: u32,
    /// Spares still parked.
    pub parked: u32,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
}

/// A daemon → client response. The token of the request it answers is
/// carried alongside by [`CtrlResponse::decode`]/[`CtrlResponse::encode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlResponse {
    /// The announce deposited a replica at `holder`.
    Announced {
        /// First node that confirmed a replica.
        holder: u32,
    },
    /// The lookup found `object` at `holder` after `hops` hops.
    Found {
        /// Node holding a replica.
        holder: u32,
        /// Hop count of the successful flow.
        hops: u32,
    },
    /// The lookup exhausted its retries without an answer.
    NotFound,
    /// The admin operation (join/perturb/heal/drain) was applied.
    Ok,
    /// Service counters.
    Stats(StatsBody),
    /// The request was rejected; see [`err_code`] for the values.
    Err {
        /// Rejection reason, one of the [`err_code`] constants.
        code: u8,
    },
}

/// Rejection codes carried by [`CtrlResponse::Err`].
pub mod err_code {
    /// The named node index does not exist.
    pub const BAD_NODE: u8 = 1;
    /// The operation timed out inside the daemon (announce retries
    /// exhausted).
    pub const TIMEOUT: u8 = 2;
    /// The entry node is parked or otherwise out of service.
    pub const UNAVAILABLE: u8 = 3;
    /// The daemon could not inject the request into the cluster.
    pub const TRANSPORT: u8 = 4;
    /// The request frame did not decode.
    pub const BAD_REQUEST: u8 = 5;
}

/// Why a control frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlDecodeError {
    /// The frame ended before its fields did.
    Truncated,
    /// The version byte is from a different protocol revision.
    BadVersion(u8),
    /// The kind byte names no known frame kind.
    BadKind(u8),
}

impl std::fmt::Display for CtrlDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtrlDecodeError::Truncated => write!(f, "truncated control frame"),
            CtrlDecodeError::BadVersion(v) => {
                write!(f, "control version {v} (want {CTRL_VERSION})")
            }
            CtrlDecodeError::BadKind(k) => write!(f, "unknown control frame kind {k}"),
        }
    }
}

impl std::error::Error for CtrlDecodeError {}

// Request kinds.
const K_ANNOUNCE: u8 = 0x00;
const K_LOOKUP: u8 = 0x01;
const K_JOIN: u8 = 0x02;
const K_PERTURB: u8 = 0x03;
const K_HEAL: u8 = 0x04;
const K_STATS: u8 = 0x05;
const K_DRAIN: u8 = 0x06;
// Response kinds.
const K_ANNOUNCED: u8 = 0x10;
const K_FOUND: u8 = 0x11;
const K_NOT_FOUND: u8 = 0x12;
const K_OK: u8 = 0x13;
const K_STATS_BODY: u8 = 0x14;
const K_ERR: u8 = 0x15;

fn header(kind: u8, token: u64, body: usize) -> Vec<u8> {
    let mut f = Vec::with_capacity(10 + body);
    f.push(CTRL_VERSION);
    f.push(kind);
    f.extend_from_slice(&token.to_be_bytes());
    f
}

fn read_u8(frame: &[u8], at: usize) -> Result<u8, CtrlDecodeError> {
    frame.get(at).copied().ok_or(CtrlDecodeError::Truncated)
}

fn read_u32(frame: &[u8], at: usize) -> Result<u32, CtrlDecodeError> {
    let bytes: [u8; 4] = frame
        .get(at..at + 4)
        .and_then(|s| s.try_into().ok())
        .ok_or(CtrlDecodeError::Truncated)?;
    Ok(u32::from_be_bytes(bytes))
}

fn read_u64(frame: &[u8], at: usize) -> Result<u64, CtrlDecodeError> {
    let bytes: [u8; 8] = frame
        .get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .ok_or(CtrlDecodeError::Truncated)?;
    Ok(u64::from_be_bytes(bytes))
}

fn read_id(frame: &[u8], at: usize) -> Result<Id, CtrlDecodeError> {
    let bytes: [u8; ID_BYTES] = frame
        .get(at..at + ID_BYTES)
        .and_then(|s| s.try_into().ok())
        .ok_or(CtrlDecodeError::Truncated)?;
    Ok(Id::from_bytes(bytes))
}

fn check_header(frame: &[u8]) -> Result<(u8, u64), CtrlDecodeError> {
    let version = read_u8(frame, 0)?;
    if version != CTRL_VERSION {
        return Err(CtrlDecodeError::BadVersion(version));
    }
    let kind = read_u8(frame, 1)?;
    let token = read_u64(frame, 2)?;
    Ok((kind, token))
}

impl CtrlRequest {
    /// Encodes the request under `token`.
    pub fn encode(&self, token: u64) -> Vec<u8> {
        match *self {
            CtrlRequest::Announce { object, origin } => {
                let mut f = header(K_ANNOUNCE, token, ID_BYTES + 4);
                f.extend_from_slice(object.as_bytes());
                f.extend_from_slice(&origin.to_be_bytes());
                f
            }
            CtrlRequest::Lookup { object, origin } => {
                let mut f = header(K_LOOKUP, token, ID_BYTES + 4);
                f.extend_from_slice(object.as_bytes());
                f.extend_from_slice(&origin.to_be_bytes());
                f
            }
            CtrlRequest::Join { node } => {
                let mut f = header(K_JOIN, token, 4);
                f.extend_from_slice(&node.to_be_bytes());
                f
            }
            CtrlRequest::Perturb { node, millis } => {
                let mut f = header(K_PERTURB, token, 8);
                f.extend_from_slice(&node.to_be_bytes());
                f.extend_from_slice(&millis.to_be_bytes());
                f
            }
            CtrlRequest::Heal { node } => {
                let mut f = header(K_HEAL, token, 4);
                f.extend_from_slice(&node.to_be_bytes());
                f
            }
            CtrlRequest::Stats => header(K_STATS, token, 0),
            CtrlRequest::Drain { millis } => {
                let mut f = header(K_DRAIN, token, 4);
                f.extend_from_slice(&millis.to_be_bytes());
                f
            }
        }
    }

    /// Decodes a request frame into `(token, request)`.
    ///
    /// # Errors
    ///
    /// [`CtrlDecodeError`] on truncation, version mismatch, or a
    /// response-kind (or unknown) kind byte.
    pub fn decode(frame: &[u8]) -> Result<(u64, Self), CtrlDecodeError> {
        let (kind, token) = check_header(frame)?;
        let req = match kind {
            K_ANNOUNCE => CtrlRequest::Announce {
                object: read_id(frame, 10)?,
                origin: read_u32(frame, 10 + ID_BYTES)?,
            },
            K_LOOKUP => CtrlRequest::Lookup {
                object: read_id(frame, 10)?,
                origin: read_u32(frame, 10 + ID_BYTES)?,
            },
            K_JOIN => CtrlRequest::Join {
                node: read_u32(frame, 10)?,
            },
            K_PERTURB => CtrlRequest::Perturb {
                node: read_u32(frame, 10)?,
                millis: read_u32(frame, 14)?,
            },
            K_HEAL => CtrlRequest::Heal {
                node: read_u32(frame, 10)?,
            },
            K_STATS => CtrlRequest::Stats,
            K_DRAIN => CtrlRequest::Drain {
                millis: read_u32(frame, 10)?,
            },
            other => return Err(CtrlDecodeError::BadKind(other)),
        };
        Ok((token, req))
    }
}

impl CtrlResponse {
    /// Encodes the response, echoing the request's `token`.
    pub fn encode(&self, token: u64) -> Vec<u8> {
        match *self {
            CtrlResponse::Announced { holder } => {
                let mut f = header(K_ANNOUNCED, token, 4);
                f.extend_from_slice(&holder.to_be_bytes());
                f
            }
            CtrlResponse::Found { holder, hops } => {
                let mut f = header(K_FOUND, token, 8);
                f.extend_from_slice(&holder.to_be_bytes());
                f.extend_from_slice(&hops.to_be_bytes());
                f
            }
            CtrlResponse::NotFound => header(K_NOT_FOUND, token, 0),
            CtrlResponse::Ok => header(K_OK, token, 0),
            CtrlResponse::Stats(s) => {
                let mut f = header(K_STATS_BODY, token, 5 * 8 + 2 * 4 + 8);
                f.extend_from_slice(&s.announces.to_be_bytes());
                f.extend_from_slice(&s.hits.to_be_bytes());
                f.extend_from_slice(&s.lookup_timeouts.to_be_bytes());
                f.extend_from_slice(&s.announce_timeouts.to_be_bytes());
                f.extend_from_slice(&s.retries.to_be_bytes());
                f.extend_from_slice(&s.live_nodes.to_be_bytes());
                f.extend_from_slice(&s.parked.to_be_bytes());
                f.extend_from_slice(&s.uptime_ms.to_be_bytes());
                f
            }
            CtrlResponse::Err { code } => {
                let mut f = header(K_ERR, token, 1);
                f.push(code);
                f
            }
        }
    }

    /// Decodes a response frame into `(token, response)`.
    ///
    /// # Errors
    ///
    /// [`CtrlDecodeError`] on truncation, version mismatch, or a
    /// request-kind (or unknown) kind byte.
    pub fn decode(frame: &[u8]) -> Result<(u64, Self), CtrlDecodeError> {
        let (kind, token) = check_header(frame)?;
        let resp = match kind {
            K_ANNOUNCED => CtrlResponse::Announced {
                holder: read_u32(frame, 10)?,
            },
            K_FOUND => CtrlResponse::Found {
                holder: read_u32(frame, 10)?,
                hops: read_u32(frame, 14)?,
            },
            K_NOT_FOUND => CtrlResponse::NotFound,
            K_OK => CtrlResponse::Ok,
            K_STATS_BODY => CtrlResponse::Stats(StatsBody {
                announces: read_u64(frame, 10)?,
                hits: read_u64(frame, 18)?,
                lookup_timeouts: read_u64(frame, 26)?,
                announce_timeouts: read_u64(frame, 34)?,
                retries: read_u64(frame, 42)?,
                live_nodes: read_u32(frame, 50)?,
                parked: read_u32(frame, 54)?,
                uptime_ms: read_u64(frame, 58)?,
            }),
            K_ERR => CtrlResponse::Err {
                code: read_u8(frame, 10)?,
            },
            other => return Err(CtrlDecodeError::BadKind(other)),
        };
        Ok((token, resp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<CtrlRequest> {
        vec![
            CtrlRequest::Announce {
                object: Id::from_low_u64(0xabc),
                origin: 7,
            },
            CtrlRequest::Lookup {
                object: Id::MAX,
                origin: 0,
            },
            CtrlRequest::Join { node: 99 },
            CtrlRequest::Perturb {
                node: 3,
                millis: 1500,
            },
            CtrlRequest::Heal { node: 3 },
            CtrlRequest::Stats,
            CtrlRequest::Drain { millis: 400 },
        ]
    }

    fn responses() -> Vec<CtrlResponse> {
        vec![
            CtrlResponse::Announced { holder: 12 },
            CtrlResponse::Found {
                holder: 31,
                hops: 4,
            },
            CtrlResponse::NotFound,
            CtrlResponse::Ok,
            CtrlResponse::Stats(StatsBody {
                announces: 1,
                hits: 2,
                lookup_timeouts: 3,
                announce_timeouts: 4,
                retries: 5,
                live_nodes: 6,
                parked: 7,
                uptime_ms: 8,
            }),
            CtrlResponse::Err {
                code: err_code::BAD_NODE,
            },
        ]
    }

    #[test]
    fn requests_round_trip_with_token() {
        for (i, req) in requests().into_iter().enumerate() {
            let token = 0x1000 + i as u64;
            let frame = req.encode(token);
            assert_eq!(CtrlRequest::decode(&frame), Ok((token, req)));
        }
    }

    #[test]
    fn responses_round_trip_with_token() {
        for (i, resp) in responses().into_iter().enumerate() {
            let token = u64::MAX - i as u64;
            let frame = resp.encode(token);
            assert_eq!(CtrlResponse::decode(&frame), Ok((token, resp)));
        }
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        for req in requests() {
            let frame = req.encode(42);
            for cut in 0..frame.len() {
                assert_eq!(
                    CtrlRequest::decode(&frame[..cut]),
                    Err(CtrlDecodeError::Truncated),
                    "cut {cut} of {req:?}"
                );
            }
        }
        for resp in responses() {
            let frame = resp.encode(42);
            for cut in 0..frame.len() {
                assert_eq!(
                    CtrlResponse::decode(&frame[..cut]),
                    Err(CtrlDecodeError::Truncated),
                    "cut {cut} of {resp:?}"
                );
            }
        }
    }

    #[test]
    fn version_and_kind_are_guarded() {
        let mut frame = CtrlRequest::Stats.encode(1);
        frame[0] = 9;
        assert_eq!(
            CtrlRequest::decode(&frame),
            Err(CtrlDecodeError::BadVersion(9))
        );
        let mut frame = CtrlRequest::Stats.encode(1);
        frame[1] = 0xee;
        assert_eq!(
            CtrlRequest::decode(&frame),
            Err(CtrlDecodeError::BadKind(0xee))
        );
        // A response frame is not a request and vice versa.
        let frame = CtrlResponse::Ok.encode(1);
        assert_eq!(
            CtrlRequest::decode(&frame),
            Err(CtrlDecodeError::BadKind(K_OK))
        );
        let frame = CtrlRequest::Stats.encode(1);
        assert_eq!(
            CtrlResponse::decode(&frame),
            Err(CtrlDecodeError::BadKind(K_STATS))
        );
    }
}
