//! Property-based tests for the gossip membership layer, plus the
//! fixed-seed determinism contract for both lookup strategies.
//!
//! The load-bearing invariant: **partial views never contain their
//! owner or a duplicate, and never exceed their bound** — across
//! arbitrary churn schedules (random flapping parameters, random
//! joins, random perturbation length). View corruption is exactly the
//! failure mode epidemic membership layers are prone to (a node
//! gossiping itself back into its own view via a swap), so the suite
//! hammers the shuffle/suspicion/join paths together.

use mpil_gossip::{build_converged_views, GossipConfig, GossipSim, LookupStrategy};
use mpil_id::Id;
use mpil_overlay::NodeIdx;
use mpil_sim::{
    AlwaysOn, ConstantLatency, Flapping, FlappingConfig, LookupOutcome, SimDuration, SimTime,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn build(n: usize, config: GossipConfig, seed: u64) -> GossipSim {
    let mut rng = SmallRng::seed_from_u64(seed);
    let views = build_converged_views(n, config.view_size, &mut rng);
    GossipSim::new(
        views,
        config,
        Box::new(AlwaysOn),
        Box::new(ConstantLatency(SimDuration::from_millis(20))),
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Views stay self-free, duplicate-free, and bounded under an
    /// arbitrary churn schedule: random flapping (idle/offline lengths,
    /// probability, coin seed) with gossip maintenance running, plus a
    /// few mid-churn re-joins.
    #[test]
    fn views_stay_legal_across_arbitrary_churn_schedules(
        n in 20usize..70,
        view in 3usize..10,
        idle_s in 5u64..40,
        offline_s in 5u64..40,
        p in 0.0f64..1.0,
        periods in 1u64..8,
        seed in any::<u64>(),
    ) {
        let config = GossipConfig::default().with_view_size(view);
        let mut sim = build(n, config, seed);
        sim.start_maintenance();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xf1a9);
        let flap_cfg = FlappingConfig::idle_offline_secs(idle_s, offline_s, p)
            .starting_at(sim.now());
        let mut flap = Flapping::new(flap_cfg, n, seed ^ 0xc01, &mut rng);
        flap.exempt(NodeIdx::new(0));
        sim.set_availability(Box::new(flap));

        let period = SimDuration::from_secs(idle_s + offline_s);
        for k in 0..periods {
            sim.run_until(sim.now() + period);
            // A node re-joins mid-churn through a rotating bootstrap.
            let joiner = NodeIdx::new(1 + (k as u32 % (n as u32 - 1)));
            let bootstrap = NodeIdx::new((k as u32 * 7) % n as u32);
            sim.join(joiner, bootstrap);
        }
        sim.run_until(sim.now() + period);

        for i in 0..n as u32 {
            let v = sim.view(NodeIdx::new(i));
            v.assert_invariants();
            prop_assert!(v.len() <= view, "node {i} view over capacity");
            prop_assert!(!v.contains(NodeIdx::new(i)), "node {i} views itself");
        }
    }

    /// The frozen neighbor lists (the `OverlaySource::Gossip` feed) are
    /// self-free and duplicate-free straight from the builder.
    #[test]
    fn converged_views_are_legal_for_any_size(
        n in 1usize..120,
        view in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let views = build_converged_views(n, view, &mut rng);
        prop_assert_eq!(views.len(), n);
        for (i, v) in views.iter().enumerate() {
            v.assert_invariants();
            prop_assert_eq!(v.len(), view.min(n - 1), "node {} view size", i);
        }
    }
}

/// One full perturbed run: insert, churn, lookup — everything drawn
/// from the engine's seeded RNG streams.
fn perturbed_run(
    strategy: LookupStrategy,
    seed: u64,
) -> (
    Vec<LookupOutcome>,
    mpil_gossip::GossipStats,
    mpil_sim::NetStats,
) {
    let config = GossipConfig::default().with_strategy(strategy).with_ttl(8);
    let mut sim = build(60, config, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 1);
    let objects: Vec<Id> = (0..10).map(|_| Id::random(&mut rng)).collect();
    for &o in &objects {
        sim.insert(NodeIdx::new(0), o);
    }
    sim.run_to_quiescence();
    sim.start_maintenance();
    let mut flap_rng = SmallRng::seed_from_u64(seed ^ 2);
    let mut flap = Flapping::new(
        FlappingConfig::idle_offline_secs(30, 30, 0.5).starting_at(sim.now()),
        60,
        seed ^ 3,
        &mut flap_rng,
    );
    flap.exempt(NodeIdx::new(0));
    sim.set_availability(Box::new(flap));
    let mut handles = Vec::new();
    for &o in &objects {
        sim.run_until(sim.now() + SimDuration::from_secs(60));
        handles.push(sim.issue_lookup(NodeIdx::new(0), o, sim.now() + SimDuration::from_secs(60)));
    }
    sim.run_until(sim.now() + SimDuration::from_secs(90));
    let outcomes = handles.iter().map(|&h| sim.lookup_outcome(h)).collect();
    (outcomes, sim.stats(), sim.net_stats())
}

#[test]
fn both_lookup_strategies_are_fixed_seed_deterministic() {
    for strategy in [LookupStrategy::KRandomWalk, LookupStrategy::ExpandingRing] {
        for seed in [3u64, 17, 4242] {
            let a = perturbed_run(strategy, seed);
            let b = perturbed_run(strategy, seed);
            assert_eq!(a, b, "{strategy:?} seed {seed} diverged");
        }
        // And the seed must matter: at least one of the seeds above
        // must differ from another.
        let x = perturbed_run(strategy, 3);
        let y = perturbed_run(strategy, 17);
        assert_ne!(x.2.sent, 0, "{strategy:?}: nothing happened");
        assert!(
            x != y || x.1 != y.1,
            "{strategy:?}: different seeds, identical runs"
        );
    }
}

#[test]
fn clock_is_exact_at_period_boundaries() {
    let mut sim = build(30, GossipConfig::default(), 5);
    sim.start_maintenance();
    sim.run_until(SimTime::from_secs(61));
    assert_eq!(sim.now(), SimTime::from_secs(61));
}
