//! The two-layer epidemic engine: HyParView membership under Plumtree
//! dissemination.
//!
//! This is the successor to the flat Cyclon engine ([`crate::GossipSim`])
//! for workloads where expanding-ring flooding is too expensive and
//! k-random-walks too fragile:
//!
//! * **Membership (HyParView)** — each node keeps a small *symmetric
//!   active* view carrying all protocol traffic and a larger *passive*
//!   view refreshed by periodic shuffles. JOIN/FORWARD-JOIN walks seat
//!   new nodes; a failed active peer (repeated exchange timeouts) is
//!   *reactively* replaced by promoting a passive candidate through a
//!   NEIGHBOR handshake, so the overlay heals in about one gossip
//!   period instead of waiting for suspicion alone to drain bad links.
//! * **Dissemination (Plumtree)** — replication announcements ride a
//!   lazily-repaired spanning tree: eager push along tree links, IHAVE
//!   digests to the rest of the active view, GRAFT (with retransmit)
//!   when an announced object fails to arrive, PRUNE on duplicates.
//!   The first broadcast floods the active graph and prunes itself
//!   into a tree; later broadcasts pay one eager copy per node.
//! * **Lookup** — because announcements plant the pointer at nearly
//!   every node, a lookup is a shallow TTL-bounded query of the active
//!   view ([`LookupStrategy::Plumtree`], forwarded along tree links) or
//!   a FOAF-style bounded-fanout walk ([`LookupStrategy::Foaf`]),
//!   retried in rounds until the deadline. Either way the cost is a few
//!   messages per lookup instead of an expanding-ring flood.
//!
//! All randomness flows through the kernel RNG and messages ride the
//! pooled payload plane, so fixed seeds reproduce exactly and the
//! steady state does not allocate.

use fxhash::{FxHashMap, FxHashSet};
use mpil_id::{Id, IdMap, IdSet};
use mpil_overlay::NodeIdx;
use mpil_sim::{
    Availability, Event, LatencyModel, LookupOutcome, Network, PayloadBuf, SimDuration, SimTime,
};
use rand::Rng;

use crate::config::{EpidemicConfig, LookupStrategy};
use crate::engine::GossipStats;
use crate::membership::Membership;
use crate::view::PartialView;

/// A shuffle's peer list; one exchange carries `1 + shuffle_active +
/// shuffle_passive` entries, which the default configuration keeps at
/// the inline bound so the steady-state message plane never allocates.
type Peers = PayloadBuf<NodeIdx, { mpil_sim::PAYLOAD_INLINE }>;

/// Cap on offline grid points one [`EpidemicSim::arm_gossip`] pass may
/// pre-skip (see the identical constant in the Cyclon engine).
const MAX_GOSSIP_SKIP: u32 = 1024;

/// GRAFT retransmission requests per missing announcement before the
/// node gives up on lazy repair (lookup retries still cover it).
const GRAFT_ATTEMPTS: u32 = 3;

#[derive(Debug, Clone)]
enum Msg {
    /// A (re-)joining node announcing itself to its bootstrap.
    Join,
    /// The join walk: decrement, capture, forward.
    ForwardJoin { joiner: NodeIdx, ttl: u32 },
    /// Request to open a symmetric active link. `high_priority` forces
    /// acceptance (the requester's active view is empty, or a join).
    Neighbor { token: u64, high_priority: bool },
    /// Accept/reject of a [`Msg::Neighbor`] request.
    NeighborReply { token: u64, accepted: bool },
    /// Polite close of an active link (overflow eviction).
    Disconnect,
    /// Shuffle request: the initiator's mixed active+passive sample,
    /// itself included fresh.
    Shuffle { token: u64, entries: Peers },
    /// Shuffle response: the responder's passive sample.
    ShuffleReply { token: u64, entries: Peers },
    /// Eager push of a replication announcement along tree links.
    Gossip { object: Id, hops: u32 },
    /// Lazy digest of an announcement, sent on non-tree active links.
    IHave { object: Id },
    /// Request to retransmit a missing announcement and promote the
    /// link to eager (tree repair).
    Graft { object: Id },
    /// Demote the sending link to lazy (duplicate received).
    Prune,
    /// One Plumtree lookup step, forwarded along tree links.
    TreeQuery {
        lookup: u64,
        origin: NodeIdx,
        object: Id,
        ttl: u32,
        hops: u32,
        round: u32,
    },
    /// One FOAF bounded-fanout walk step.
    FoafQuery {
        lookup: u64,
        origin: NodeIdx,
        object: Id,
        ttl: u32,
        hops: u32,
        round: u32,
    },
    /// Direct positive reply from a pointer holder to the origin.
    Reply { lookup: u64, hops: u32 },
}

#[derive(Debug, Clone, Copy)]
enum Timer {
    /// Periodic per-node shuffle + reactive active-view fill. Same
    /// pre-skip arming and epoch supersession as the Cyclon engine.
    Gossip { epoch: u32 },
    /// The shuffle reply for `token` did not arrive in time.
    ShuffleTimeout { token: u64 },
    /// The neighbor reply for `token` did not arrive in time.
    NeighborTimeout { token: u64 },
    /// Deadline for the eager copy of an announced object; on expiry
    /// the node GRAFTs from the announcer.
    GraftRetry { object: Id },
    /// Time to retry the query wave for `lookup`.
    QueryRound { lookup: u64 },
}

/// Restores the baseline intra-tick dispatch order after gossip-timer
/// pre-skipping, exactly like the Cyclon engine's version: gossip
/// timers first, ascending node index, everything else stable behind
/// them.
fn restore_tick_order(batch: &mut [Event<Msg, Timer>]) {
    fn key(ev: &Event<Msg, Timer>) -> (bool, usize) {
        match ev {
            Event::Timer {
                node,
                timer: Timer::Gossip { .. },
            } => (false, node.index()),
            _ => (true, 0),
        }
    }
    for i in 1..batch.len() {
        let mut j = i;
        while j > 0 && key(&batch[j - 1]) > key(&batch[j]) {
            batch.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// An initiator's outstanding shuffle (one in flight per node: the
/// exchange timeout is shorter than the gossip period).
#[derive(Debug, Clone, Copy)]
struct PendingShuffle {
    token: u64,
    target: NodeIdx,
}

/// An outstanding NEIGHBOR promotion request.
#[derive(Debug, Clone, Copy)]
struct PendingNeighbor {
    token: u64,
    candidate: NodeIdx,
}

#[derive(Debug)]
struct LookupState {
    issued_at: SimTime,
    deadline: SimTime,
    outcome: LookupOutcome,
}

#[derive(Debug)]
struct QueryState {
    origin: NodeIdx,
    object: Id,
    round: u32,
    /// Nodes that already forwarded the current round (per-round
    /// duplicate suppression).
    forwarded: FxHashSet<NodeIdx>,
}

/// The HyParView + Plumtree simulation.
///
/// Drive it like every other engine: build converged membership
/// ([`crate::build_converged_membership`]), insert on the quiet
/// network, start maintenance, swap in a perturbed availability model,
/// then issue lookups and run the clock. Counters reuse
/// [`GossipStats`]: announcements (eager pushes + IHAVE digests) are
/// insert traffic, queries are lookup traffic, and the membership and
/// tree-repair control plane (join, neighbor, shuffle, graft, prune,
/// disconnect) is maintenance.
pub struct EpidemicSim {
    config: EpidemicConfig,
    members: Vec<Membership>,
    /// Per node: the subset of the active view it eager-pushes to (the
    /// spanning-tree links). Lazy links are `active \ eager`.
    eager: Vec<PartialView>,
    stores: Vec<IdSet>,
    /// Per node: announced-but-missing objects -> (announcer, graft
    /// attempts so far).
    missing: Vec<IdMap<(NodeIdx, u32)>>,
    net: Network<Msg, Timer>,
    event_batch: Vec<Event<Msg, Timer>>,
    /// Reusable draw buffers (steady-state paths must not allocate).
    sample_scratch: Vec<NodeIdx>,
    sample_scratch2: Vec<NodeIdx>,
    /// Consecutive failed exchanges per (node, active peer), with the
    /// same non-empty bitmap fast path as the Cyclon engine.
    suspicion: Vec<FxHashMap<NodeIdx, u32>>,
    suspicion_nonempty: Vec<u64>,
    pending_shuffles: Vec<Option<PendingShuffle>>,
    pending_neighbors: Vec<Option<PendingNeighbor>>,
    lookups: FxHashMap<u64, LookupState>,
    queries: FxHashMap<u64, QueryState>,
    next_token: u64,
    next_lookup: u64,
    maintenance_started: bool,
    timer_epoch: u32,
    next_grid: Vec<SimTime>,
    stats: GossipStats,
}

impl EpidemicSim {
    /// Builds the simulation from per-node membership state (see
    /// [`crate::build_converged_membership`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or a view violates its
    /// invariants, names an out-of-range peer, or the wrong owner.
    pub fn new(
        members: Vec<Membership>,
        config: EpidemicConfig,
        availability: Box<dyn Availability>,
        latency: Box<dyn LatencyModel>,
        seed: u64,
    ) -> Self {
        config.assert_valid();
        let n = members.len();
        let mut eager = Vec::with_capacity(n);
        for (i, m) in members.iter().enumerate() {
            m.assert_invariants();
            assert_eq!(m.owner(), NodeIdx::new(i as u32), "membership {i} owner");
            for e in m.active.iter().chain(m.passive.iter()) {
                assert!(e.peer.index() < n, "membership {i} names out-of-range peer");
            }
            // Every active link starts eager; the first broadcast
            // prunes the graph into a tree.
            let mut ev = PartialView::new(m.owner(), config.active_size.max(1));
            for e in m.active.iter() {
                ev.insert_fresh(e.peer);
            }
            eager.push(ev);
        }
        EpidemicSim {
            config,
            eager,
            stores: vec![IdSet::new(); n],
            missing: vec![IdMap::new(); n],
            net: Network::new(n, availability, latency, seed),
            event_batch: Vec::new(),
            sample_scratch: Vec::new(),
            sample_scratch2: Vec::new(),
            suspicion: vec![FxHashMap::default(); n],
            suspicion_nonempty: vec![0; n.div_ceil(64)],
            pending_shuffles: vec![None; n],
            pending_neighbors: vec![None; n],
            lookups: FxHashMap::default(),
            queries: FxHashMap::default(),
            next_token: 0,
            next_lookup: 0,
            maintenance_started: false,
            timer_epoch: 0,
            next_grid: vec![SimTime::ZERO; n],
            stats: GossipStats::default(),
            members,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Protocol counters.
    pub fn stats(&self) -> GossipStats {
        self.stats
    }

    /// Kernel counters.
    pub fn net_stats(&self) -> mpil_sim::NetStats {
        self.net.stats()
    }

    /// The configuration the engine runs with.
    pub fn config(&self) -> &EpidemicConfig {
        &self.config
    }

    /// Read access to a node's membership state (tests, diagnostics).
    pub fn membership(&self, node: NodeIdx) -> &Membership {
        &self.members[node.index()]
    }

    /// Each node's current active view frozen as a neighbor list — the
    /// overlay MPIL routes on in the overlay-independence experiments.
    pub fn neighbor_lists(&self) -> Vec<Vec<NodeIdx>> {
        self.members.iter().map(|m| m.active.peers()).collect()
    }

    /// Swaps the availability model (static stage -> flapping stage),
    /// superseding and re-arming every gossip timer chain exactly like
    /// the Cyclon engine.
    pub fn set_availability(&mut self, availability: Box<dyn Availability>) {
        self.net.set_availability(availability);
        if !self.maintenance_started {
            return;
        }
        self.timer_epoch += 1;
        let now = self.net.now();
        let period = self.config.gossip_period;
        for i in 0..self.next_grid.len() {
            let mut t = self.next_grid[i];
            while t <= now {
                t += period;
            }
            self.arm_gossip(NodeIdx::new(i as u32), t);
        }
    }

    /// Sets the independent per-message link-loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_loss_probability(&mut self, p: f64) {
        self.net.set_loss_probability(p);
    }

    /// Nodes currently storing the pointer for `object`.
    pub fn replica_holders(&self, object: Id) -> Vec<NodeIdx> {
        (0..self.members.len() as u32)
            .map(NodeIdx::new)
            .filter(|n| self.stores[n.index()].contains(&object))
            .collect()
    }

    /// Number of nodes storing the pointer for `object`.
    pub fn replica_count(&self, object: Id) -> usize {
        self.stores.iter().filter(|s| s.contains(&object)).count()
    }

    /// Starts the periodic shuffle/repair timers, staggered uniformly
    /// over one gossip period.
    ///
    /// # Panics
    ///
    /// Panics if maintenance was already started.
    pub fn start_maintenance(&mut self) {
        assert!(!self.maintenance_started, "maintenance already started");
        self.maintenance_started = true;
        let period = self.config.gossip_period.as_micros();
        for i in 0..self.members.len() as u32 {
            let node = NodeIdx::new(i);
            let delay = SimDuration::from_micros(self.net.rng().gen_range(0..period));
            let start = self.net.now() + delay;
            self.arm_gossip(node, start);
        }
    }

    /// Arms `node`'s next gossip timer at the first live grid point at
    /// or after `start` (offline grid points pre-skipped, exactly like
    /// the Cyclon engine's arming scan).
    fn arm_gossip(&mut self, node: NodeIdx, start: SimTime) {
        self.next_grid[node.index()] = start;
        let period = self.config.gossip_period;
        let mut at = start;
        let mut skipped = 0;
        while skipped < MAX_GOSSIP_SKIP && !self.net.is_online_at(node, at) {
            at += period;
            skipped += 1;
        }
        let delay = SimDuration::from_micros(at.as_micros() - self.net.now().as_micros());
        let epoch = self.timer_epoch;
        self.net.schedule(node, delay, Timer::Gossip { epoch });
    }

    /// (Re-)joins `joiner` through `bootstrap`: both views collapse,
    /// the bootstrap link opens optimistically, and a JOIN message
    /// triggers FORWARD-JOIN walks that seat the joiner in active and
    /// passive views across the overlay.
    pub fn join(&mut self, joiner: NodeIdx, bootstrap: NodeIdx) {
        if joiner == bootstrap {
            return;
        }
        let u = joiner.index();
        self.members[u].active.clear();
        self.members[u].passive.clear();
        self.eager[u].clear();
        self.missing[u].clear();
        self.suspicion[u].clear();
        self.sync_suspicion_bit(joiner);
        self.pending_neighbors[u] = None;
        if let Some(stale) = self.pending_shuffles[u].take() {
            let _ = stale; // its reply/timeout will fail the token match
        }
        self.add_active(joiner, bootstrap, true);
        self.stats.maintenance_messages += 1;
        self.net.send(joiner, bootstrap, Msg::Join);
    }

    /// Starts an insertion of `object` from `origin`: the announcement
    /// is broadcast down the Plumtree and every node that delivers it
    /// stores the pointer. The origin itself stores nothing (the
    /// paper's engines count remote replicas only).
    pub fn insert(&mut self, origin: NodeIdx, object: Id) {
        self.push_announcement(origin, None, object, 1);
    }

    /// Issues a lookup of `object` from `origin` with the given
    /// deadline, using the configured [`LookupStrategy`].
    pub fn issue_lookup(&mut self, origin: NodeIdx, object: Id, deadline: SimTime) -> u64 {
        let lookup = self.next_lookup;
        self.next_lookup += 1;
        self.lookups.insert(
            lookup,
            LookupState {
                issued_at: self.net.now(),
                deadline,
                outcome: LookupOutcome::Pending,
            },
        );
        if self.stores[origin.index()].contains(&object) {
            self.complete_lookup(lookup, 0);
            return lookup;
        }
        self.queries.insert(
            lookup,
            QueryState {
                origin,
                object,
                round: 0,
                forwarded: FxHashSet::default(),
            },
        );
        self.launch_query_round(lookup);
        self.net.schedule(
            origin,
            self.config.query_round_gap,
            Timer::QueryRound { lookup },
        );
        lookup
    }

    /// Outcome of a lookup; `Pending` past its deadline reads as
    /// `Failed`.
    pub fn lookup_outcome(&self, lookup: u64) -> LookupOutcome {
        match self.lookups.get(&lookup) {
            None => LookupOutcome::Failed,
            Some(s) => match s.outcome {
                LookupOutcome::Pending if self.net.now() >= s.deadline => LookupOutcome::Failed,
                o => o,
            },
        }
    }

    /// Runs the event loop until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        let mut batch = std::mem::take(&mut self.event_batch);
        while self.net.next_batch_before(deadline, &mut batch) {
            restore_tick_order(&mut batch);
            for ev in batch.drain(..) {
                self.dispatch(ev);
            }
        }
        self.event_batch = batch;
    }

    /// Runs until no events remain (only terminates before maintenance
    /// starts).
    ///
    /// # Panics
    ///
    /// Panics after [`EpidemicSim::start_maintenance`]: periodic
    /// shuffles never quiesce.
    pub fn run_to_quiescence(&mut self) {
        assert!(
            !self.maintenance_started,
            "periodic gossip never quiesces; use run_until"
        );
        self.run_until(SimTime::from_micros(u64::MAX));
    }

    // --- membership -----------------------------------------------------------

    /// Opens the `node -> peer` half of an active link: removes `peer`
    /// from the passive view, makes room (random eviction + DISCONNECT
    /// when `force`), and starts the link eager. Returns whether the
    /// active view changed.
    fn add_active(&mut self, node: NodeIdx, peer: NodeIdx, force: bool) -> bool {
        let u = node.index();
        if peer == node || self.members[u].active.contains(peer) {
            return false;
        }
        self.members[u].passive.remove(peer);
        if self.members[u].active.len() >= self.config.active_size {
            if !force {
                return false;
            }
            self.members[u]
                .active
                .sample_into(1, None, self.net.rng(), &mut self.sample_scratch);
            if let Some(&victim) = self.sample_scratch.first() {
                self.drop_active(node, victim, false);
                self.stats.maintenance_messages += 1;
                self.net.send(node, victim, Msg::Disconnect);
                self.integrate_into_passive(node, victim);
            }
        }
        self.members[u].active.insert_fresh(peer);
        self.eager[u].insert_fresh(peer);
        self.suspicion[u].remove(&peer);
        self.sync_suspicion_bit(node);
        true
    }

    /// Closes the `node -> peer` half of an active link; counts a
    /// failure declaration when `declared` (suspicion eviction, not a
    /// polite close). Returns whether the peer was present.
    fn drop_active(&mut self, node: NodeIdx, peer: NodeIdx, declared: bool) -> bool {
        let u = node.index();
        let was = self.members[u].active.remove(peer);
        if was {
            self.eager[u].remove(peer);
            if declared {
                self.stats.failure_declarations += 1;
            }
        }
        self.suspicion[u].remove(&peer);
        self.sync_suspicion_bit(node);
        was
    }

    /// Admits `peer` to `node`'s passive view (random eviction on
    /// overflow, never displacing toward the active view).
    fn integrate_into_passive(&mut self, node: NodeIdx, peer: NodeIdx) {
        let u = node.index();
        if peer == node
            || self.members[u].active.contains(peer)
            || self.members[u].passive.contains(peer)
        {
            return;
        }
        if self.members[u].passive.len() >= self.config.passive_size {
            self.members[u]
                .passive
                .sample_into(1, None, self.net.rng(), &mut self.sample_scratch);
            if let Some(&victim) = self.sample_scratch.first() {
                self.members[u].passive.remove(victim);
            }
        }
        self.members[u].passive.insert_fresh(peer);
    }

    /// Starts a NEIGHBOR promotion of a random passive candidate if the
    /// active view is underfull and no promotion is in flight.
    fn try_neighbor(&mut self, node: NodeIdx) {
        let u = node.index();
        if self.pending_neighbors[u].is_some()
            || self.members[u].active.len() >= self.config.active_size
        {
            return;
        }
        self.members[u]
            .passive
            .sample_into(1, None, self.net.rng(), &mut self.sample_scratch);
        let Some(&candidate) = self.sample_scratch.first() else {
            return; // empty passive view; shuffles will refill it
        };
        let token = self.next_token;
        self.next_token += 1;
        self.pending_neighbors[u] = Some(PendingNeighbor { token, candidate });
        let high_priority = self.members[u].active.is_empty();
        self.stats.maintenance_messages += 1;
        self.net.send(
            node,
            candidate,
            Msg::Neighbor {
                token,
                high_priority,
            },
        );
        self.net.schedule(
            node,
            self.config.exchange_timeout,
            Timer::NeighborTimeout { token },
        );
    }

    fn initiate_shuffle(&mut self, node: NodeIdx, target: NodeIdx) {
        let u = node.index();
        self.members[u].active.sample_into(
            self.config.shuffle_active,
            Some(target),
            self.net.rng(),
            &mut self.sample_scratch,
        );
        self.members[u].passive.sample_into(
            self.config.shuffle_passive,
            Some(target),
            self.net.rng(),
            &mut self.sample_scratch2,
        );
        let mut entries = Peers::new();
        entries.push(node, self.net.payload_pool());
        entries.extend_from_slice(&self.sample_scratch, self.net.payload_pool());
        entries.extend_from_slice(&self.sample_scratch2, self.net.payload_pool());
        let token = self.next_token;
        self.next_token += 1;
        self.pending_shuffles[u] = Some(PendingShuffle { token, target });
        self.stats.maintenance_messages += 1;
        self.net.send(node, target, Msg::Shuffle { token, entries });
        self.net.schedule(
            node,
            self.config.exchange_timeout,
            Timer::ShuffleTimeout { token },
        );
    }

    fn on_gossip_timer(&mut self, node: NodeIdx, epoch: u32) {
        if epoch != self.timer_epoch {
            return; // superseded chain (availability swap)
        }
        if self.net.is_online(node) {
            // Reactive repair first: an underfull active view promotes
            // a passive candidate without waiting for a shuffle.
            self.try_neighbor(node);
            self.members[node.index()].active.sample_into(
                1,
                None,
                self.net.rng(),
                &mut self.sample_scratch,
            );
            if let Some(&target) = self.sample_scratch.first() {
                self.initiate_shuffle(node, target);
            }
        }
        self.arm_gossip(node, self.net.now() + self.config.gossip_period);
    }

    fn on_join(&mut self, joiner: NodeIdx, to: NodeIdx) {
        self.add_active(to, joiner, true);
        let ttl = self.config.arwl;
        let mut walk_targets = std::mem::take(&mut self.sample_scratch);
        walk_targets.clear();
        walk_targets.extend(
            self.members[to.index()]
                .active
                .iter()
                .map(|e| e.peer)
                .filter(|&p| p != joiner),
        );
        for &peer in &walk_targets {
            self.stats.maintenance_messages += 1;
            self.net.send(to, peer, Msg::ForwardJoin { joiner, ttl });
        }
        self.sample_scratch = walk_targets;
    }

    fn on_forward_join(&mut self, from: NodeIdx, to: NodeIdx, joiner: NodeIdx, ttl: u32) {
        if joiner == to {
            return;
        }
        let u = to.index();
        if ttl == 0 || self.members[u].active.len() < self.config.active_size {
            // Seat the joiner here through the normal NEIGHBOR
            // handshake so both sides add the link.
            if self.pending_neighbors[u].is_none() && !self.members[u].active.contains(joiner) {
                let token = self.next_token;
                self.next_token += 1;
                self.pending_neighbors[u] = Some(PendingNeighbor {
                    token,
                    candidate: joiner,
                });
                self.stats.maintenance_messages += 1;
                self.net.send(
                    to,
                    joiner,
                    Msg::Neighbor {
                        token,
                        high_priority: true,
                    },
                );
                self.net.schedule(
                    to,
                    self.config.exchange_timeout,
                    Timer::NeighborTimeout { token },
                );
            } else {
                self.integrate_into_passive(to, joiner);
            }
            return;
        }
        if ttl == self.config.prwl {
            self.integrate_into_passive(to, joiner);
        }
        self.members[u]
            .active
            .sample_into(1, Some(from), self.net.rng(), &mut self.sample_scratch);
        match self.sample_scratch.first() {
            Some(&next) if next != joiner => {
                self.stats.maintenance_messages += 1;
                self.net.send(
                    to,
                    next,
                    Msg::ForwardJoin {
                        joiner,
                        ttl: ttl - 1,
                    },
                );
            }
            _ => {
                // Nowhere to walk: capture the joiner locally instead.
                self.integrate_into_passive(to, joiner);
            }
        }
    }

    fn on_neighbor(&mut self, from: NodeIdx, to: NodeIdx, token: u64, high_priority: bool) {
        let full = self.members[to.index()].active.len() >= self.config.active_size;
        let accepted = high_priority || !full;
        if accepted {
            self.add_active(to, from, true);
        }
        self.stats.maintenance_messages += 1;
        self.net
            .send(to, from, Msg::NeighborReply { token, accepted });
    }

    fn on_neighbor_reply(&mut self, from: NodeIdx, to: NodeIdx, token: u64, accepted: bool) {
        let u = to.index();
        let slot = &mut self.pending_neighbors[u];
        if slot.is_none_or(|p| p.token != token) {
            return; // late reply after the timeout already fired
        }
        *slot = None;
        if accepted {
            self.add_active(to, from, false);
        }
        // A rejection leaves the candidate in the passive view (it is
        // alive, just full); the next gossip tick tries another.
    }

    fn on_neighbor_timeout(&mut self, node: NodeIdx, token: u64) {
        let u = node.index();
        let slot = &mut self.pending_neighbors[u];
        let Some(pending) = *slot else {
            return;
        };
        if pending.token != token {
            return;
        }
        *slot = None;
        // The candidate did not answer: drop the stale passive entry so
        // the next promotion draws someone else.
        self.members[u].passive.remove(pending.candidate);
    }

    fn on_disconnect(&mut self, from: NodeIdx, to: NodeIdx) {
        if self.drop_active(to, from, false) {
            self.integrate_into_passive(to, from);
        }
    }

    fn on_shuffle(&mut self, from: NodeIdx, to: NodeIdx, token: u64, entries: Peers) {
        let reply_len = entries.len();
        self.members[to.index()].passive.sample_into(
            reply_len,
            Some(from),
            self.net.rng(),
            &mut self.sample_scratch,
        );
        let mut reply = Peers::new();
        reply.extend_from_slice(&self.sample_scratch, self.net.payload_pool());
        self.stats.maintenance_messages += 1;
        self.net.send(
            to,
            from,
            Msg::ShuffleReply {
                token,
                entries: reply,
            },
        );
        for i in 0..entries.len() {
            let peer = entries.as_slice()[i];
            self.integrate_into_passive(to, peer);
        }
        entries.recycle(self.net.payload_pool());
        self.clear_suspicion_of(to, from);
    }

    fn on_shuffle_reply(&mut self, from: NodeIdx, to: NodeIdx, token: u64, entries: Peers) {
        let slot = &mut self.pending_shuffles[to.index()];
        if slot.is_none_or(|p| p.token != token) {
            entries.recycle(self.net.payload_pool());
            return; // late reply after the timeout already fired
        }
        *slot = None;
        for i in 0..entries.len() {
            let peer = entries.as_slice()[i];
            self.integrate_into_passive(to, peer);
        }
        entries.recycle(self.net.payload_pool());
        self.clear_suspicion_of(to, from);
    }

    fn on_shuffle_timeout(&mut self, initiator: NodeIdx, token: u64) {
        let u = initiator.index();
        let slot = &mut self.pending_shuffles[u];
        if slot.is_none_or(|p| p.token != token) {
            return; // the reply arrived in time
        }
        let pending = slot.take().expect("token matched above");
        let target = pending.target;
        if !self.members[u].active.contains(target) {
            self.suspicion[u].remove(&target);
            self.sync_suspicion_bit(initiator);
            return;
        }
        let strikes = self.suspicion[u].entry(target).or_insert(0);
        *strikes += 1;
        if *strikes >= self.config.suspicion_limit {
            self.drop_active(initiator, target, true);
            // Reactive replacement: promote a passive candidate now
            // instead of waiting for the next gossip tick.
            self.try_neighbor(initiator);
        } else {
            self.sync_suspicion_bit(initiator);
        }
    }

    /// Hearing from a peer is direct evidence it is alive; wipe its
    /// strikes (bitmap-guarded, this runs on every delivery).
    fn clear_suspicion_of(&mut self, node: NodeIdx, peer: NodeIdx) {
        if self.has_suspicion(node) {
            self.suspicion[node.index()].remove(&peer);
            self.sync_suspicion_bit(node);
        }
    }

    fn has_suspicion(&self, node: NodeIdx) -> bool {
        let u = node.index();
        self.suspicion_nonempty[u / 64] >> (u % 64) & 1 != 0
    }

    fn sync_suspicion_bit(&mut self, node: NodeIdx) {
        let u = node.index();
        let bit = 1u64 << (u % 64);
        if self.suspicion[u].is_empty() {
            self.suspicion_nonempty[u / 64] &= !bit;
        } else {
            self.suspicion_nonempty[u / 64] |= bit;
        }
    }

    // --- dissemination --------------------------------------------------------

    /// Pushes an announcement out of `node`: eager copies along tree
    /// links, IHAVE digests on the remaining active links, `exclude`
    /// (the delivering peer) skipped on both.
    fn push_announcement(
        &mut self,
        node: NodeIdx,
        exclude: Option<NodeIdx>,
        object: Id,
        hops: u32,
    ) {
        let u = node.index();
        let mut targets = std::mem::take(&mut self.sample_scratch);
        targets.clear();
        targets.extend(self.eager[u].iter().map(|e| e.peer));
        for &peer in &targets {
            if Some(peer) == exclude {
                continue;
            }
            self.stats.insert_messages += 1;
            self.net.send(node, peer, Msg::Gossip { object, hops });
        }
        targets.clear();
        targets.extend(
            self.members[u]
                .active
                .iter()
                .map(|e| e.peer)
                .filter(|&p| !self.eager[u].contains(p)),
        );
        for &peer in &targets {
            if Some(peer) == exclude {
                continue;
            }
            self.stats.insert_messages += 1;
            self.net.send(node, peer, Msg::IHave { object });
        }
        self.sample_scratch = targets;
    }

    /// Moves the `node -> peer` link to eager (tree link), if active.
    fn promote_eager(&mut self, node: NodeIdx, peer: NodeIdx) {
        let u = node.index();
        if self.members[u].active.contains(peer) && !self.eager[u].contains(peer) {
            self.eager[u].insert_fresh(peer);
        }
    }

    /// Moves the `node -> peer` link to lazy (IHAVE-only).
    fn demote_eager(&mut self, node: NodeIdx, peer: NodeIdx) {
        self.eager[node.index()].remove(peer);
    }

    fn on_gossip_msg(&mut self, from: NodeIdx, to: NodeIdx, object: Id, hops: u32) {
        let u = to.index();
        if self.stores[u].insert(object) {
            // First delivery: the sender is our tree parent.
            self.missing[u].remove(&object);
            self.promote_eager(to, from);
            self.push_announcement(to, Some(from), object, hops + 1);
        } else {
            // Duplicate: this link is redundant for the tree.
            self.demote_eager(to, from);
            self.stats.maintenance_messages += 1;
            self.net.send(to, from, Msg::Prune);
        }
    }

    fn on_ihave(&mut self, from: NodeIdx, to: NodeIdx, object: Id) {
        let u = to.index();
        if self.stores[u].contains(&object) || self.missing[u].contains_key(&object) {
            return;
        }
        self.missing[u].insert(object, (from, 0));
        self.net
            .schedule(to, self.config.graft_timeout, Timer::GraftRetry { object });
    }

    fn on_graft_timer(&mut self, node: NodeIdx, object: Id) {
        let u = node.index();
        let Some(&(announcer, attempts)) = self.missing[u].get(&object) else {
            return; // the eager copy arrived in time
        };
        if self.stores[u].contains(&object) {
            self.missing[u].remove(&object);
            return;
        }
        self.promote_eager(node, announcer);
        self.stats.maintenance_messages += 1;
        self.net.send(node, announcer, Msg::Graft { object });
        if attempts + 1 >= GRAFT_ATTEMPTS {
            self.missing[u].remove(&object);
        } else {
            self.missing[u].insert(object, (announcer, attempts + 1));
            self.net.schedule(
                node,
                self.config.graft_timeout,
                Timer::GraftRetry { object },
            );
        }
    }

    fn on_graft(&mut self, from: NodeIdx, to: NodeIdx, object: Id) {
        self.promote_eager(to, from);
        if self.stores[to.index()].contains(&object) {
            self.stats.insert_messages += 1;
            self.net.send(to, from, Msg::Gossip { object, hops: 1 });
        }
    }

    fn on_prune(&mut self, from: NodeIdx, to: NodeIdx) {
        self.demote_eager(to, from);
    }

    // --- lookup ---------------------------------------------------------------

    /// Launches one query wave for `lookup` at its current round.
    fn launch_query_round(&mut self, lookup: u64) {
        let Some(q) = self.queries.get_mut(&lookup) else {
            return;
        };
        q.forwarded.clear();
        let origin = q.origin;
        let object = q.object;
        let round = q.round;
        let u = origin.index();
        let mut targets = std::mem::take(&mut self.sample_scratch);
        match self.config.strategy {
            LookupStrategy::Plumtree => {
                // Query the whole active view: holders answer directly,
                // non-holders forward along their tree links.
                targets.clear();
                targets.extend(self.members[u].active.iter().map(|e| e.peer));
                for &peer in &targets {
                    self.stats.lookup_messages += 1;
                    self.net.send(
                        origin,
                        peer,
                        Msg::TreeQuery {
                            lookup,
                            origin,
                            object,
                            ttl: self.config.query_ttl,
                            hops: 1,
                            round,
                        },
                    );
                }
            }
            LookupStrategy::Foaf => {
                self.members[u].active.sample_into(
                    self.config.foaf_fanout,
                    None,
                    self.net.rng(),
                    &mut targets,
                );
                for &peer in &targets {
                    self.stats.lookup_messages += 1;
                    self.net.send(
                        origin,
                        peer,
                        Msg::FoafQuery {
                            lookup,
                            origin,
                            object,
                            ttl: self.config.foaf_ttl,
                            hops: 1,
                            round,
                        },
                    );
                }
            }
            LookupStrategy::KRandomWalk | LookupStrategy::ExpandingRing => {
                // EpidemicConfig::assert_valid (checked in new) rejects
                // the Cyclon strategies for this engine.
                unreachable!("cyclon strategies run on GossipSim")
            }
        }
        self.sample_scratch = targets;
    }

    fn on_query_round(&mut self, lookup: u64) {
        let still_pending = matches!(
            self.lookups.get(&lookup).map(|s| s.outcome),
            Some(LookupOutcome::Pending)
        );
        let Some(q) = self.queries.get_mut(&lookup) else {
            return;
        };
        let deadline = self.lookups[&lookup].deadline;
        if !still_pending || self.net.now() >= deadline {
            self.queries.remove(&lookup);
            return;
        }
        q.round += 1;
        let origin = q.origin;
        self.launch_query_round(lookup);
        self.net.schedule(
            origin,
            self.config.query_round_gap,
            Timer::QueryRound { lookup },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_tree_query(
        &mut self,
        from: NodeIdx,
        to: NodeIdx,
        lookup: u64,
        origin: NodeIdx,
        object: Id,
        ttl: u32,
        hops: u32,
        round: u32,
    ) {
        if self.stores[to.index()].contains(&object) {
            self.stats.reply_messages += 1;
            self.net.send(to, origin, Msg::Reply { lookup, hops });
            return;
        }
        if ttl <= 1 {
            return;
        }
        let Some(q) = self.queries.get_mut(&lookup) else {
            return; // the query was torn down (reply arrived or gave up)
        };
        if q.round != round || !q.forwarded.insert(to) {
            return; // stale round, or this node already forwarded it
        }
        let u = to.index();
        let mut targets = std::mem::take(&mut self.sample_scratch);
        targets.clear();
        // Forward along tree links; fall back to the active view if
        // every link was pruned lazy.
        if self.eager[u].is_empty() {
            targets.extend(self.members[u].active.iter().map(|e| e.peer));
        } else {
            targets.extend(self.eager[u].iter().map(|e| e.peer));
        }
        for &peer in &targets {
            if peer == from || peer == origin {
                continue;
            }
            self.stats.lookup_messages += 1;
            self.net.send(
                to,
                peer,
                Msg::TreeQuery {
                    lookup,
                    origin,
                    object,
                    ttl: ttl - 1,
                    hops: hops + 1,
                    round,
                },
            );
        }
        self.sample_scratch = targets;
    }

    #[allow(clippy::too_many_arguments)]
    fn on_foaf_query(
        &mut self,
        from: NodeIdx,
        to: NodeIdx,
        lookup: u64,
        origin: NodeIdx,
        object: Id,
        ttl: u32,
        hops: u32,
        round: u32,
    ) {
        if self.stores[to.index()].contains(&object) {
            self.stats.reply_messages += 1;
            self.net.send(to, origin, Msg::Reply { lookup, hops });
            return;
        }
        if ttl <= 1 {
            return;
        }
        let Some(q) = self.queries.get_mut(&lookup) else {
            return;
        };
        if q.round != round || !q.forwarded.insert(to) {
            return;
        }
        self.members[to.index()].active.sample_into(
            self.config.foaf_fanout,
            Some(from),
            self.net.rng(),
            &mut self.sample_scratch,
        );
        let targets = std::mem::take(&mut self.sample_scratch);
        for &peer in &targets {
            if peer == origin {
                continue;
            }
            self.stats.lookup_messages += 1;
            self.net.send(
                to,
                peer,
                Msg::FoafQuery {
                    lookup,
                    origin,
                    object,
                    ttl: ttl - 1,
                    hops: hops + 1,
                    round,
                },
            );
        }
        self.sample_scratch = targets;
    }

    fn complete_lookup(&mut self, lookup: u64, hops: u32) {
        let now = self.net.now();
        if let Some(state) = self.lookups.get_mut(&lookup) {
            if matches!(state.outcome, LookupOutcome::Pending) {
                state.outcome = if now <= state.deadline {
                    LookupOutcome::Succeeded {
                        hops,
                        latency: now.duration_since(state.issued_at),
                    }
                } else {
                    LookupOutcome::Failed
                };
            }
        }
        self.queries.remove(&lookup);
    }

    // --- event dispatch -------------------------------------------------------

    fn dispatch(&mut self, ev: Event<Msg, Timer>) {
        match ev {
            Event::Message { from, to, msg } => match msg {
                Msg::Join => self.on_join(from, to),
                Msg::ForwardJoin { joiner, ttl } => self.on_forward_join(from, to, joiner, ttl),
                Msg::Neighbor {
                    token,
                    high_priority,
                } => self.on_neighbor(from, to, token, high_priority),
                Msg::NeighborReply { token, accepted } => {
                    self.on_neighbor_reply(from, to, token, accepted)
                }
                Msg::Disconnect => self.on_disconnect(from, to),
                Msg::Shuffle { token, entries } => self.on_shuffle(from, to, token, entries),
                Msg::ShuffleReply { token, entries } => {
                    self.on_shuffle_reply(from, to, token, entries)
                }
                Msg::Gossip { object, hops } => self.on_gossip_msg(from, to, object, hops),
                Msg::IHave { object } => self.on_ihave(from, to, object),
                Msg::Graft { object } => self.on_graft(from, to, object),
                Msg::Prune => self.on_prune(from, to),
                Msg::TreeQuery {
                    lookup,
                    origin,
                    object,
                    ttl,
                    hops,
                    round,
                } => self.on_tree_query(from, to, lookup, origin, object, ttl, hops, round),
                Msg::FoafQuery {
                    lookup,
                    origin,
                    object,
                    ttl,
                    hops,
                    round,
                } => self.on_foaf_query(from, to, lookup, origin, object, ttl, hops, round),
                Msg::Reply { lookup, hops } => self.complete_lookup(lookup, hops),
            },
            Event::Timer { node, timer } => match timer {
                Timer::Gossip { epoch } => self.on_gossip_timer(node, epoch),
                Timer::ShuffleTimeout { token } => self.on_shuffle_timeout(node, token),
                Timer::NeighborTimeout { token } => self.on_neighbor_timeout(node, token),
                Timer::GraftRetry { object } => self.on_graft_timer(node, object),
                Timer::QueryRound { lookup } => self.on_query_round(lookup),
            },
        }
    }
}

impl std::fmt::Debug for EpidemicSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpidemicSim")
            .field("nodes", &self.members.len())
            .field("now", &self.net.now())
            .field("strategy", &self.config.strategy)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::build_converged_membership;
    use mpil_sim::{AlwaysOn, ConstantLatency, Flapping, FlappingConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build(n: usize, config: EpidemicConfig, seed: u64) -> EpidemicSim {
        let mut rng = SmallRng::seed_from_u64(seed);
        let members =
            build_converged_membership(n, config.active_size, config.passive_size, &mut rng);
        EpidemicSim::new(
            members,
            config,
            Box::new(AlwaysOn),
            Box::new(ConstantLatency(SimDuration::from_millis(20))),
            seed,
        )
    }

    #[test]
    fn announcements_reach_nearly_everyone() {
        let mut sim = build(100, EpidemicConfig::default(), 1);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..5 {
            let object = Id::random(&mut rng);
            sim.insert(NodeIdx::new(0), object);
            sim.run_to_quiescence();
            let holders = sim.replica_holders(object);
            assert!(
                holders.len() >= 99,
                "broadcast reached only {} of 99 remote nodes",
                holders.len()
            );
            assert!(
                !holders.contains(&NodeIdx::new(0)),
                "origin stores remotely"
            );
        }
        assert!(sim.stats().insert_messages > 0);
        assert_eq!(sim.stats().lookup_messages, 0);
    }

    #[test]
    fn repeated_broadcasts_prune_the_eager_graph_to_a_tree() {
        let n = 100;
        let mut sim = build(n, EpidemicConfig::default(), 2);
        let mut rng = SmallRng::seed_from_u64(10);
        for _ in 0..2 {
            sim.insert(NodeIdx::new(0), Id::random(&mut rng));
            sim.run_to_quiescence();
        }
        // A connected broadcast from one root prunes eager links down
        // to a spanning tree: directed eager degree sums to 2(n-1).
        let eager_links: usize = sim.eager.iter().map(PartialView::len).sum();
        assert_eq!(eager_links, 2 * (n - 1), "eager graph is not a tree");
        // The tree then carries one eager copy per remote node.
        let before = sim.stats().insert_messages;
        sim.insert(NodeIdx::new(0), Id::random(&mut rng));
        sim.run_to_quiescence();
        let active_links: usize = sim.members.iter().map(|m| m.active.len()).sum();
        let spent = (sim.stats().insert_messages - before) as usize;
        // n-1 eager pushes plus one IHAVE per lazy link.
        assert_eq!(spent, (n - 1) + (active_links - eager_links));
    }

    #[test]
    fn plumtree_lookups_succeed_in_a_handful_of_messages() {
        let mut sim = build(100, EpidemicConfig::default(), 3);
        let mut rng = SmallRng::seed_from_u64(11);
        let objects: Vec<Id> = (0..20).map(|_| Id::random(&mut rng)).collect();
        for &o in &objects {
            sim.insert(NodeIdx::new(0), o);
        }
        sim.run_to_quiescence();
        let lookup_base = sim.stats().lookup_messages;
        let deadline = sim.now() + SimDuration::from_secs(600);
        let handles: Vec<u64> = objects
            .iter()
            .map(|&o| sim.issue_lookup(NodeIdx::new(0), o, deadline))
            .collect();
        sim.run_to_quiescence();
        for h in handles {
            assert!(sim.lookup_outcome(h).is_success(), "lookup {h} failed");
        }
        let spent = sim.stats().lookup_messages - lookup_base;
        // One wave of at most active_size queries per lookup; every
        // neighbor holds the pointer, so nothing forwards.
        assert!(
            spent <= 20 * sim.config().active_size as u64,
            "plumtree lookups flooded: {spent} msgs for 20 lookups"
        );
        assert!(sim.stats().reply_messages > 0);
    }

    #[test]
    fn foaf_lookups_succeed_on_a_quiet_network() {
        let config = EpidemicConfig::default().with_strategy(LookupStrategy::Foaf);
        let mut sim = build(100, config, 4);
        let mut rng = SmallRng::seed_from_u64(12);
        let objects: Vec<Id> = (0..20).map(|_| Id::random(&mut rng)).collect();
        for &o in &objects {
            sim.insert(NodeIdx::new(0), o);
        }
        sim.run_to_quiescence();
        let deadline = sim.now() + SimDuration::from_secs(600);
        let handles: Vec<u64> = objects
            .iter()
            .map(|&o| sim.issue_lookup(NodeIdx::new(0), o, deadline))
            .collect();
        sim.run_to_quiescence();
        let ok = handles
            .iter()
            .filter(|&&h| sim.lookup_outcome(h).is_success())
            .count();
        assert!(ok >= 19, "only {ok}/20 foaf lookups succeeded");
    }

    #[test]
    fn absent_object_fails_without_wedging() {
        for strategy in [LookupStrategy::Plumtree, LookupStrategy::Foaf] {
            let mut sim = build(50, EpidemicConfig::default().with_strategy(strategy), 5);
            let h = sim.issue_lookup(
                NodeIdx::new(1),
                Id::from_low_u64(0xdead),
                sim.now() + SimDuration::from_secs(60),
            );
            sim.run_to_quiescence();
            assert!(!sim.lookup_outcome(h).is_success(), "{strategy:?}");
        }
    }

    #[test]
    fn local_holder_succeeds_in_zero_hops() {
        let mut sim = build(30, EpidemicConfig::default(), 6);
        let object = Id::from_low_u64(7);
        sim.stores[2].insert(object);
        let h = sim.issue_lookup(
            NodeIdx::new(2),
            object,
            sim.now() + SimDuration::from_secs(10),
        );
        assert!(matches!(
            sim.lookup_outcome(h),
            LookupOutcome::Succeeded { hops: 0, .. }
        ));
    }

    #[test]
    fn loss_triggers_graft_repair() {
        let mut sim = build(100, EpidemicConfig::default(), 7);
        sim.set_loss_probability(0.25);
        let mut rng = SmallRng::seed_from_u64(13);
        let objects: Vec<Id> = (0..5).map(|_| Id::random(&mut rng)).collect();
        for &o in &objects {
            sim.insert(NodeIdx::new(0), o);
            sim.run_to_quiescence();
        }
        for &o in &objects {
            assert!(
                sim.replica_count(o) >= 85,
                "lazy repair left only {} replicas under 25% loss",
                sim.replica_count(o)
            );
        }
    }

    #[test]
    fn maintenance_shuffles_run_and_views_stay_legal() {
        let mut sim = build(60, EpidemicConfig::default(), 8);
        sim.start_maintenance();
        sim.run_until(SimTime::from_secs(120));
        assert!(sim.stats().maintenance_messages > 0);
        assert_eq!(sim.stats().failure_declarations, 0);
        for i in 0..sim.len() {
            sim.membership(NodeIdx::new(i as u32)).assert_invariants();
            sim.eager[i].assert_invariants();
        }
    }

    #[test]
    fn suspicion_evicts_and_reactively_replaces() {
        let mut sim = build(40, EpidemicConfig::default(), 9);
        sim.start_maintenance();
        // Half the overlay goes offline essentially forever.
        let mut rng = SmallRng::seed_from_u64(99);
        let cfg = FlappingConfig {
            idle: SimDuration::from_micros(1),
            offline: SimDuration::from_secs(1_000_000),
            probability: 0.5,
            start: SimTime::ZERO,
        };
        let mut flap = Flapping::new(cfg, 40, 77, &mut rng);
        flap.exempt(NodeIdx::new(0));
        sim.set_availability(Box::new(flap));
        sim.run_until(SimTime::from_secs(300));
        assert!(
            sim.stats().failure_declarations > 0,
            "dead peers must age out of active views"
        );
        // Reactive replacement kept the exempt node's active view
        // populated even though some of its original peers died.
        assert!(
            !sim.membership(NodeIdx::new(0)).active.is_empty(),
            "reactive replacement left node 0 isolated"
        );
        for i in 0..sim.len() {
            sim.membership(NodeIdx::new(i as u32)).assert_invariants();
        }
    }

    #[test]
    fn join_rebuilds_symmetric_links_through_the_bootstrap() {
        let mut sim = build(30, EpidemicConfig::default(), 10);
        sim.join(NodeIdx::new(5), NodeIdx::new(0));
        assert_eq!(
            sim.membership(NodeIdx::new(5)).active.peers(),
            vec![NodeIdx::new(0)]
        );
        sim.run_to_quiescence();
        let m = sim.membership(NodeIdx::new(5));
        assert!(m.active.contains(NodeIdx::new(0)), "bootstrap link kept");
        assert!(
            sim.membership(NodeIdx::new(0))
                .active
                .contains(NodeIdx::new(5)),
            "bootstrap side of the link is missing"
        );
        assert!(
            m.active.len() > 1 || !m.passive.is_empty(),
            "forward-join walks seated the joiner nowhere"
        );
        m.assert_invariants();
        // Self-join is a no-op.
        sim.join(NodeIdx::new(5), NodeIdx::new(5));
    }

    #[test]
    fn stats_classes_sum_to_kernel_sends() {
        for strategy in [LookupStrategy::Plumtree, LookupStrategy::Foaf] {
            let mut sim = build(80, EpidemicConfig::default().with_strategy(strategy), 11);
            let mut rng = SmallRng::seed_from_u64(14);
            for _ in 0..5 {
                sim.insert(NodeIdx::new(0), Id::random(&mut rng));
            }
            sim.run_to_quiescence();
            sim.join(NodeIdx::new(7), NodeIdx::new(3));
            sim.run_to_quiescence();
            let h = sim.issue_lookup(
                NodeIdx::new(9),
                Id::from_low_u64(1),
                sim.now() + SimDuration::from_secs(60),
            );
            sim.start_maintenance();
            sim.run_until(sim.now() + SimDuration::from_secs(90));
            let _ = sim.lookup_outcome(h);
            assert_eq!(
                sim.stats().total_messages(),
                sim.net_stats().sent,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn fixed_seed_runs_reproduce_exactly() {
        let run = |seed: u64, strategy: LookupStrategy| {
            let mut sim = build(70, EpidemicConfig::default().with_strategy(strategy), seed);
            let mut rng = SmallRng::seed_from_u64(seed ^ 1);
            let objects: Vec<Id> = (0..8).map(|_| Id::random(&mut rng)).collect();
            for &o in &objects {
                sim.insert(NodeIdx::new(0), o);
            }
            sim.run_to_quiescence();
            sim.start_maintenance();
            let mut flap_rng = SmallRng::seed_from_u64(seed ^ 2);
            let mut flap = Flapping::new(
                FlappingConfig::idle_offline_secs(30, 30, 0.6).starting_at(sim.now()),
                70,
                seed ^ 3,
                &mut flap_rng,
            );
            flap.exempt(NodeIdx::new(0));
            sim.set_availability(Box::new(flap));
            let mut outcomes = Vec::new();
            for &o in &objects {
                sim.run_until(sim.now() + SimDuration::from_secs(60));
                let h =
                    sim.issue_lookup(NodeIdx::new(0), o, sim.now() + SimDuration::from_secs(60));
                outcomes.push(h);
            }
            sim.run_until(sim.now() + SimDuration::from_secs(90));
            let results: Vec<LookupOutcome> =
                outcomes.iter().map(|&h| sim.lookup_outcome(h)).collect();
            (results, sim.stats(), sim.net_stats())
        };
        for strategy in [LookupStrategy::Plumtree, LookupStrategy::Foaf] {
            assert_eq!(run(21, strategy), run(21, strategy), "{strategy:?}");
        }
    }

    #[test]
    fn lookups_hold_under_heavy_flapping() {
        let mut sim = build(100, EpidemicConfig::default(), 12);
        let mut rng = SmallRng::seed_from_u64(15);
        let objects: Vec<Id> = (0..10).map(|_| Id::random(&mut rng)).collect();
        for &o in &objects {
            sim.insert(NodeIdx::new(0), o);
        }
        sim.run_to_quiescence();
        sim.start_maintenance();
        let mut flap_rng = SmallRng::seed_from_u64(16);
        let mut flap = Flapping::new(
            FlappingConfig::idle_offline_secs(30, 30, 0.9).starting_at(sim.now()),
            100,
            17,
            &mut flap_rng,
        );
        flap.exempt(NodeIdx::new(0));
        sim.set_availability(Box::new(flap));
        let mut handles = Vec::new();
        for &o in &objects {
            sim.run_until(sim.now() + SimDuration::from_secs(60));
            handles.push(sim.issue_lookup(
                NodeIdx::new(0),
                o,
                sim.now() + SimDuration::from_secs(60),
            ));
        }
        sim.run_until(sim.now() + SimDuration::from_secs(90));
        let ok = handles
            .iter()
            .filter(|&&h| sim.lookup_outcome(h).is_success())
            .count();
        assert!(
            ok >= 9,
            "only {ok}/10 plumtree lookups survived p=0.9 flapping"
        );
    }
}
