//! HyParView membership state: one small symmetric *active* view and
//! one larger *passive* view per node.
//!
//! The active view carries all protocol traffic (Plumtree eager/lazy
//! links are subsets of it) and is repaired *reactively*: an evicted or
//! disconnected active peer is replaced by promoting a passive-view
//! candidate through a NEIGHBOR handshake. The passive view is a cheap
//! reservoir of alive-ish peers refreshed by periodic shuffles. Both
//! views reuse [`PartialView`] and inherit its invariants (no self, no
//! duplicates, bounded).

use mpil_overlay::NodeIdx;
use rand::Rng;

use crate::view::PartialView;

/// One node's HyParView membership state.
#[derive(Debug, Clone)]
pub struct Membership {
    /// The symmetric active view (protocol links).
    pub active: PartialView,
    /// The passive view (reactive-replacement candidates).
    pub passive: PartialView,
}

impl Membership {
    /// Empty views for `owner` with the given bounds.
    ///
    /// # Panics
    ///
    /// Panics if either bound is zero.
    pub fn new(owner: NodeIdx, active_size: usize, passive_size: usize) -> Self {
        Membership {
            active: PartialView::new(owner, active_size),
            passive: PartialView::new(owner, passive_size),
        }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeIdx {
        self.active.owner()
    }

    /// Checks both views' structural invariants plus the HyParView
    /// cross-view invariant: no peer is listed in both views.
    ///
    /// # Panics
    ///
    /// Panics on any violation.
    pub fn assert_invariants(&self) {
        self.active.assert_invariants();
        self.passive.assert_invariants();
        for e in self.active.iter() {
            assert!(
                !self.passive.contains(e.peer),
                "{} lists {} in both views",
                self.owner(),
                e.peer
            );
        }
    }
}

/// Builds the converged membership state a long-running HyParView
/// overlay settles into: a connected symmetric active graph (a ring
/// base guarantees connectivity, random symmetric links fill the views
/// up to their bound) and uniformly random passive views disjoint from
/// the active ones. Deterministic in `rng`.
///
/// # Panics
///
/// Panics if `active_size` or `passive_size` is zero.
pub fn build_converged_membership<R: Rng + ?Sized>(
    n: usize,
    active_size: usize,
    passive_size: usize,
    rng: &mut R,
) -> Vec<Membership> {
    assert!(active_size >= 1, "active_size must be at least 1");
    assert!(passive_size >= 1, "passive_size must be at least 1");
    let mut members: Vec<Membership> = (0..n)
        .map(|i| Membership::new(NodeIdx::new(i as u32), active_size, passive_size))
        .collect();
    if n >= 2 {
        // Ring base: i <-> i+1 keeps the eager-push graph connected even
        // if the random fill below leaves some views underfull.
        for i in 0..n {
            let j = (i + 1) % n;
            if i == j {
                continue;
            }
            members[i].active.insert_fresh(NodeIdx::new(j as u32));
            members[j].active.insert_fresh(NodeIdx::new(i as u32));
        }
        // Random symmetric fill: both endpoints must have room, so no
        // eviction ever runs and symmetry is preserved by construction.
        for i in 0..n {
            let mut tries = 0;
            while members[i].active.len() < active_size.min(n - 1) && tries < 64 {
                tries += 1;
                let j = rng.gen_range(0..n as u32) as usize;
                if j == i
                    || members[i].active.contains(NodeIdx::new(j as u32))
                    || members[j].active.len() >= active_size
                {
                    continue;
                }
                members[i].active.insert_fresh(NodeIdx::new(j as u32));
                members[j].active.insert_fresh(NodeIdx::new(i as u32));
            }
        }
    }
    // Passive views: uniform random, disjoint from the active view.
    for (i, member) in members.iter_mut().enumerate() {
        let want = passive_size.min(n.saturating_sub(1 + member.active.len()));
        let mut tries = 0;
        while member.passive.len() < want && tries < 64 * passive_size {
            tries += 1;
            let peer = NodeIdx::new(rng.gen_range(0..n as u32));
            if peer.index() != i && !member.active.contains(peer) && !member.passive.contains(peer)
            {
                member.passive.insert_fresh(peer);
            }
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn converged_membership_is_symmetric_and_legal() {
        let mut rng = SmallRng::seed_from_u64(5);
        let members = build_converged_membership(200, 5, 24, &mut rng);
        assert_eq!(members.len(), 200);
        for (i, m) in members.iter().enumerate() {
            m.assert_invariants();
            assert!(m.active.len() >= 2, "ring base guarantees degree 2");
            assert!(m.active.len() <= 5);
            for e in m.active.iter() {
                assert!(
                    members[e.peer.index()]
                        .active
                        .contains(NodeIdx::new(i as u32)),
                    "active link {i} -> {} is not symmetric",
                    e.peer
                );
            }
        }
    }

    #[test]
    fn tiny_populations_stay_legal() {
        let mut rng = SmallRng::seed_from_u64(6);
        for n in [1usize, 2, 3, 5] {
            let members = build_converged_membership(n, 5, 24, &mut rng);
            for m in &members {
                m.assert_invariants();
                assert!(m.active.len() <= n.saturating_sub(1));
            }
        }
    }

    #[test]
    fn passive_views_fill_from_the_remainder() {
        let mut rng = SmallRng::seed_from_u64(7);
        let members = build_converged_membership(500, 5, 24, &mut rng);
        for m in &members {
            assert!(
                m.passive.len() >= 20,
                "passive view underfull: {}",
                m.passive.len()
            );
        }
    }
}
