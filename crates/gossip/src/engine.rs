//! The event-driven gossip simulation.
//!
//! An unstructured/epidemic substrate on the [`mpil_sim`] kernel, the
//! fifth engine behind the harness's `DiscoveryEngine` lifecycle:
//!
//! * **Membership** — bounded partial views ([`crate::PartialView`])
//!   maintained by periodic Cyclon-style push-pull shuffles (swap
//!   semantics, age-based selection) with SWIM-style suspicion: a peer
//!   that misses [`GossipConfig::suspicion_limit`] consecutive shuffle
//!   replies is evicted, so churned nodes age out of every view.
//! * **Replication** — inserts launch a few random walks that deposit
//!   the object pointer at every node they visit.
//! * **Lookup** — either `k` independent TTL-bounded random walks
//!   (Lv et al., Ferretti) or expanding-ring flooding with doubling
//!   scope, both replying directly to the origin on a hit.
//!
//! Like MPIL, the engine is ID-agnostic: no distance metric, no key
//! space — only exact pointer matches at visited nodes. All randomness
//! flows through the kernel RNG, so fixed seeds reproduce exactly.

use fxhash::{FxHashMap, FxHashSet};
use mpil_id::{Id, IdSet};
use mpil_overlay::NodeIdx;
use mpil_sim::{
    Availability, Event, LatencyModel, LookupOutcome, Network, PayloadBuf, SimDuration, SimTime,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::{GossipConfig, LookupStrategy};
use crate::view::PartialView;

/// A shuffle's peer list, inline up to [`mpil_sim::PAYLOAD_INLINE`]
/// entries and spilled to the kernel's [`mpil_sim::PayloadPool`] past
/// that. Default configurations exchange at most `shuffle_len + 1 = 5`
/// peers, so the steady-state message plane never allocates — and the
/// inline capacity keeps `Msg` on the 48-byte footprint of its walk
/// variants, so queued events grew by nothing. Walk and replication
/// payloads are fixed-size scalars and need no buffer at all.
type Peers = PayloadBuf<NodeIdx, { mpil_sim::PAYLOAD_INLINE }>;

#[derive(Debug, Clone)]
enum Msg {
    /// Push half of a shuffle: the initiator's sample, itself included
    /// fresh.
    ShufflePush { token: u64, entries: Peers },
    /// Pull half: the responder's sample.
    ShufflePull { token: u64, entries: Peers },
    /// A replication walk: store, decrement, forward.
    StoreWalk { object: Id, ttl: u32 },
    /// One random-walk lookup step.
    WalkQuery {
        lookup: u64,
        origin: NodeIdx,
        object: Id,
        ttl: u32,
        hops: u32,
    },
    /// One expanding-ring flood step.
    FloodQuery {
        lookup: u64,
        round: u32,
        origin: NodeIdx,
        object: Id,
        ttl: u32,
        hops: u32,
    },
    /// Direct positive reply from a replica holder to the origin.
    Reply { lookup: u64, hops: u32 },
}

/// Cap on how many offline grid points one [`GossipSim::arm_gossip`]
/// pass may pre-skip. It bounds the arming scan when a node stays
/// offline for a very long stretch (e.g. `probability = 1.0`): the
/// capped fire lands on an offline grid point and is an ordinary no-op
/// fire that resumes skipping.
const MAX_GOSSIP_SKIP: u32 = 1024;

#[derive(Debug, Clone, Copy)]
enum Timer {
    /// Periodic per-node shuffle. Fires only on grid points the arming
    /// scan considered live; `epoch` ties the fire to the availability
    /// model it was armed under (see [`GossipSim::set_availability`]).
    Gossip {
        /// The value of `GossipSim::timer_epoch` at arm time.
        epoch: u32,
    },
    /// The pull half of shuffle `token` did not arrive in time.
    ShuffleTimeout { token: u64 },
    /// Time to widen the expanding ring for `lookup`.
    RingRound { lookup: u64 },
}

/// Restores the baseline intra-tick dispatch order after gossip-timer
/// pre-skipping ([`GossipSim::arm_gossip`]).
///
/// The kernel breaks same-tick ties by push order. Without skipping,
/// every gossip chain re-pushes once per period — the largest horizon
/// of any event class — so within a tick the baseline order is always:
/// gossip timers first, ascending node index (colliding chains share a
/// stagger start and were first pushed in node order, and per-period
/// re-pushes preserve that order inductively). Pre-skipped chains push
/// at their last *real* fire instead, which can permute colliding
/// fires; this in-place, allocation-free insertion sort (stable, and
/// O(len) on the already-ordered common case) puts the tick back into
/// the baseline order.
fn restore_tick_order(batch: &mut [Event<Msg, Timer>]) {
    fn key(ev: &Event<Msg, Timer>) -> (bool, usize) {
        match ev {
            Event::Timer {
                node,
                timer: Timer::Gossip { .. },
            } => (false, node.index()),
            _ => (true, 0),
        }
    }
    for i in 1..batch.len() {
        let mut j = i;
        while j > 0 && key(&batch[j - 1]) > key(&batch[j]) {
            batch.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// An initiator's outstanding shuffle. Stored in a per-node slab
/// (`pending_shuffles[initiator]`): the shuffle timeout is shorter than
/// the gossip period, so a node has at most one shuffle in flight and
/// the slab replaces a token-keyed hash map on the hottest delivery
/// path. The token survives as a staleness check — a late pull or an
/// already-answered timeout simply fails the token match.
#[derive(Debug, Clone)]
struct PendingShuffle {
    token: u64,
    target: NodeIdx,
    sent: Peers,
}

#[derive(Debug)]
struct LookupState {
    issued_at: SimTime,
    deadline: SimTime,
    outcome: LookupOutcome,
}

#[derive(Debug)]
struct RingState {
    origin: NodeIdx,
    object: Id,
    round: u32,
    ttl: u32,
    /// Nodes that already forwarded the current round (per-round
    /// duplicate suppression).
    forwarded: FxHashSet<NodeIdx>,
}

/// Counters split by traffic class (comparable to the DHT baselines and
/// MPIL through the harness's unified `Counters`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipStats {
    /// Walk/flood query transmissions sent by lookups.
    pub lookup_messages: u64,
    /// Replication-walk transmissions sent by inserts.
    pub insert_messages: u64,
    /// Direct replica-holder replies.
    pub reply_messages: u64,
    /// Shuffle pushes and pulls (the membership layer's entire cost).
    pub maintenance_messages: u64,
    /// Peers evicted from a view after repeated shuffle timeouts.
    pub failure_declarations: u64,
}

impl GossipStats {
    /// Everything the overlay sent (each class counts exactly one
    /// kernel send, so this equals the kernel's send counter).
    pub fn total_messages(&self) -> u64 {
        self.lookup_messages
            + self.insert_messages
            + self.reply_messages
            + self.maintenance_messages
    }
}

/// The epidemic/unstructured overlay simulation.
///
/// Drive it like every other engine: build converged views
/// ([`crate::build_converged_views`]), insert on the quiet network,
/// start maintenance, swap in a perturbed availability model, then
/// issue lookups and run the clock.
pub struct GossipSim {
    config: GossipConfig,
    views: Vec<PartialView>,
    stores: Vec<IdSet>,
    net: Network<Msg, Timer>,
    /// Reusable same-tick delivery batch (see [`Network::next_batch_before`]).
    event_batch: Vec<mpil_sim::Event<Msg, Timer>>,
    /// Reusable draw buffer for [`PartialView::sample_into`]: walks and
    /// shuffles fire millions of times per run and must not allocate.
    sample_scratch: Vec<NodeIdx>,
    /// Consecutive failed shuffles per (node, peer).
    suspicion: Vec<FxHashMap<NodeIdx, u32>>,
    /// One bit per node: is `suspicion[node]` non-empty? Suspicion maps
    /// are empty for all but recently-missed peers, yet the alive-again
    /// wipe runs on every shuffle delivery — the bitmap (a few KiB even
    /// at 100k nodes, so cache-resident) answers the common "nothing to
    /// wipe" case without touching the map spine.
    suspicion_nonempty: Vec<u64>,
    /// Outstanding shuffle per initiator (see [`PendingShuffle`]).
    pending_shuffles: Vec<Option<PendingShuffle>>,
    lookups: FxHashMap<u64, LookupState>,
    rings: FxHashMap<u64, RingState>,
    next_token: u64,
    next_lookup: u64,
    maintenance_started: bool,
    /// Bumped by [`GossipSim::set_availability`]; gossip timers armed
    /// under an older epoch are superseded chains and fire as no-ops.
    timer_epoch: u32,
    /// Per node: the next gossip grid point not yet fired *or*
    /// pre-skipped under the current availability model — the re-arm
    /// anchor when the model is swapped mid-skip.
    next_grid: Vec<SimTime>,
    stats: GossipStats,
}

impl GossipSim {
    /// Builds the simulation from per-node partial views (see
    /// [`crate::build_converged_views`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or a view names its owner
    /// or an out-of-range peer.
    pub fn new(
        views: Vec<PartialView>,
        config: GossipConfig,
        availability: Box<dyn Availability>,
        latency: Box<dyn LatencyModel>,
        seed: u64,
    ) -> Self {
        config.assert_valid();
        let n = views.len();
        for (i, v) in views.iter().enumerate() {
            v.assert_invariants();
            assert_eq!(v.owner(), NodeIdx::new(i as u32), "view {i} owner");
            for e in v.iter() {
                assert!(e.peer.index() < n, "view {i} names out-of-range peer");
            }
        }
        GossipSim {
            config,
            stores: vec![IdSet::new(); n],
            net: Network::new(n, availability, latency, seed),
            suspicion: vec![FxHashMap::default(); n],
            suspicion_nonempty: vec![0; n.div_ceil(64)],
            pending_shuffles: vec![None; n],
            lookups: FxHashMap::default(),
            event_batch: Vec::new(),
            sample_scratch: Vec::new(),
            rings: FxHashMap::default(),
            next_token: 0,
            next_lookup: 0,
            maintenance_started: false,
            timer_epoch: 0,
            next_grid: vec![SimTime::ZERO; n],
            stats: GossipStats::default(),
            views,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Returns `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Protocol counters.
    pub fn stats(&self) -> GossipStats {
        self.stats
    }

    /// Kernel counters.
    pub fn net_stats(&self) -> mpil_sim::NetStats {
        self.net.stats()
    }

    /// The configuration the engine runs with.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// Read access to a node's partial view (tests, diagnostics).
    pub fn view(&self, node: NodeIdx) -> &PartialView {
        &self.views[node.index()]
    }

    /// Each node's current view frozen as a neighbor list — the overlay
    /// MPIL routes on in the overlay-independence experiments.
    pub fn neighbor_lists(&self) -> Vec<Vec<NodeIdx>> {
        self.views.iter().map(|v| v.peers()).collect()
    }

    /// Swaps the availability model (static stage → flapping stage).
    ///
    /// Gossip timer chains pre-skip offline grid points under the model
    /// live at arm time (see [`GossipSim::arm_gossip`]); grid points in
    /// the past were therefore evaluated under exactly the model a
    /// per-period no-op fire would have seen. From `now` on the *new*
    /// model decides, so every in-flight chain is superseded (epoch
    /// bump) and each node re-armed from its next unfired grid point.
    pub fn set_availability(&mut self, availability: Box<dyn Availability>) {
        self.net.set_availability(availability);
        if !self.maintenance_started {
            return;
        }
        self.timer_epoch += 1;
        let now = self.net.now();
        let period = self.config.gossip_period;
        for i in 0..self.next_grid.len() {
            let mut t = self.next_grid[i];
            while t <= now {
                // Already fired (or pre-skipped under the model that
                // was live then); the chain continues on its grid.
                t += period;
            }
            self.arm_gossip(NodeIdx::new(i as u32), t);
        }
    }

    /// Sets the independent per-message link-loss probability (see
    /// [`mpil_sim::Network::set_loss_probability`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_loss_probability(&mut self, p: f64) {
        self.net.set_loss_probability(p);
    }

    /// Nodes currently storing the pointer for `object`.
    pub fn replica_holders(&self, object: Id) -> Vec<NodeIdx> {
        (0..self.views.len() as u32)
            .map(NodeIdx::new)
            .filter(|n| self.stores[n.index()].contains(&object))
            .collect()
    }

    /// Number of nodes storing the pointer for `object`, without
    /// materialising the holder list.
    pub fn replica_count(&self, object: Id) -> usize {
        self.stores.iter().filter(|s| s.contains(&object)).count()
    }

    /// Starts the periodic shuffle timers, staggered uniformly over one
    /// gossip period.
    ///
    /// # Panics
    ///
    /// Panics if maintenance was already started.
    pub fn start_maintenance(&mut self) {
        assert!(!self.maintenance_started, "maintenance already started");
        self.maintenance_started = true;
        let period = self.config.gossip_period.as_micros();
        for i in 0..self.views.len() as u32 {
            let node = NodeIdx::new(i);
            let delay = SimDuration::from_micros(self.net.rng().gen_range(0..period));
            let start = self.net.now() + delay;
            self.arm_gossip(node, start);
        }
    }

    /// Arms `node`'s next shuffle timer at the first gossip grid point
    /// at or after `start` where the node is online, pre-skipping
    /// offline grid points without a wheel round-trip for each.
    ///
    /// Offline fires are protocol no-ops (the view neither ages nor
    /// shuffles) and availability models are pure functions of
    /// `(node, time)`, so evaluating them at arm time is exact: the
    /// kernel's event stream loses only the no-op pops — under heavy
    /// churn nearly half of all events. A model swap mid-skip is
    /// handled by [`GossipSim::set_availability`], which supersedes
    /// every armed chain and re-arms under the new model.
    fn arm_gossip(&mut self, node: NodeIdx, start: SimTime) {
        self.next_grid[node.index()] = start;
        let period = self.config.gossip_period;
        let mut at = start;
        let mut skipped = 0;
        while skipped < MAX_GOSSIP_SKIP && !self.net.is_online_at(node, at) {
            at += period;
            skipped += 1;
        }
        let delay = SimDuration::from_micros(at.as_micros() - self.net.now().as_micros());
        let epoch = self.timer_epoch;
        self.net.schedule(node, delay, Timer::Gossip { epoch });
    }

    /// (Re-)joins `joiner` through `bootstrap`: the view collapses to
    /// the bootstrap peer and an immediate shuffle pulls in a fresh
    /// sample; subsequent gossip rounds re-diversify it.
    pub fn join(&mut self, joiner: NodeIdx, bootstrap: NodeIdx) {
        if joiner == bootstrap {
            return;
        }
        self.views[joiner.index()].clear();
        self.views[joiner.index()].insert_fresh(bootstrap);
        self.suspicion[joiner.index()].clear();
        self.sync_suspicion_bit(joiner);
        self.initiate_shuffle(joiner, bootstrap);
    }

    /// Starts an insertion of `object` from `origin`: replication walks
    /// deposit the pointer at every node they visit. The origin itself
    /// stores nothing (the paper's engines count remote replicas only).
    pub fn insert(&mut self, origin: NodeIdx, object: Id) {
        let walkers = self.config.replication_walkers;
        let ttl = self.config.replication_ttl;
        let mut first_hops = std::mem::take(&mut self.sample_scratch);
        self.views[origin.index()].sample_into(walkers, None, self.net.rng(), &mut first_hops);
        for &next in &first_hops {
            self.stats.insert_messages += 1;
            self.net.send(origin, next, Msg::StoreWalk { object, ttl });
        }
        self.sample_scratch = first_hops;
    }

    /// Issues a lookup of `object` from `origin` with the given
    /// deadline, using the configured [`LookupStrategy`].
    pub fn issue_lookup(&mut self, origin: NodeIdx, object: Id, deadline: SimTime) -> u64 {
        let lookup = self.next_lookup;
        self.next_lookup += 1;
        self.lookups.insert(
            lookup,
            LookupState {
                issued_at: self.net.now(),
                deadline,
                outcome: LookupOutcome::Pending,
            },
        );
        if self.stores[origin.index()].contains(&object) {
            self.complete_lookup(lookup, 0);
            return lookup;
        }
        match self.config.strategy {
            LookupStrategy::KRandomWalk => {
                let mut first_hops = std::mem::take(&mut self.sample_scratch);
                self.views[origin.index()].sample_into(
                    self.config.walkers,
                    None,
                    self.net.rng(),
                    &mut first_hops,
                );
                for &next in &first_hops {
                    self.stats.lookup_messages += 1;
                    self.net.send(
                        origin,
                        next,
                        Msg::WalkQuery {
                            lookup,
                            origin,
                            object,
                            ttl: self.config.ttl,
                            hops: 1,
                        },
                    );
                }
                self.sample_scratch = first_hops;
            }
            LookupStrategy::ExpandingRing => {
                self.rings.insert(
                    lookup,
                    RingState {
                        origin,
                        object,
                        round: 0,
                        ttl: 1,
                        forwarded: FxHashSet::default(),
                    },
                );
                self.flood_round(lookup);
                self.net.schedule(
                    origin,
                    self.config.ring_round_gap,
                    Timer::RingRound { lookup },
                );
            }
            LookupStrategy::Plumtree | LookupStrategy::Foaf => {
                // GossipConfig::assert_valid (checked in new) rejects
                // the tree strategies for the Cyclon engine.
                unreachable!("tree strategies run on EpidemicSim")
            }
        }
        lookup
    }

    /// Outcome of a lookup; `Pending` past its deadline reads as
    /// `Failed`.
    pub fn lookup_outcome(&self, lookup: u64) -> LookupOutcome {
        match self.lookups.get(&lookup) {
            None => LookupOutcome::Failed,
            Some(s) => match s.outcome {
                LookupOutcome::Pending if self.net.now() >= s.deadline => LookupOutcome::Failed,
                o => o,
            },
        }
    }

    /// Runs the event loop until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        let mut batch = std::mem::take(&mut self.event_batch);
        while self.net.next_batch_before(deadline, &mut batch) {
            restore_tick_order(&mut batch);
            for ev in batch.drain(..) {
                self.dispatch(ev);
            }
        }
        self.event_batch = batch;
    }

    /// Runs until no events remain (only terminates before maintenance
    /// starts).
    ///
    /// # Panics
    ///
    /// Panics after [`GossipSim::start_maintenance`]: periodic shuffles
    /// never quiesce.
    pub fn run_to_quiescence(&mut self) {
        assert!(
            !self.maintenance_started,
            "periodic gossip never quiesces; use run_until"
        );
        self.run_until(SimTime::from_micros(u64::MAX));
    }

    // --- membership -----------------------------------------------------------

    fn initiate_shuffle(&mut self, node: NodeIdx, target: NodeIdx) {
        self.views[node.index()].sample_into(
            self.config.shuffle_len.saturating_sub(1),
            Some(target),
            self.net.rng(),
            &mut self.sample_scratch,
        );
        let mut entries = Peers::new();
        entries.push(node, self.net.payload_pool());
        entries.extend_from_slice(&self.sample_scratch, self.net.payload_pool());
        let token = self.next_token;
        self.next_token += 1;
        // The bookkeeping copy stays inline (or draws its spill from the
        // pool), so the old `entries.clone()` heap hit is gone.
        let sent = entries.clone_in(self.net.payload_pool());
        let fresh = PendingShuffle {
            token,
            target,
            sent,
        };
        if let Some(old) = self.pending_shuffles[node.index()].replace(fresh) {
            // Only a re-join inside the timeout window gets here: the
            // superseded shuffle's pull (if any) is now stale.
            old.sent.recycle(self.net.payload_pool());
        }
        self.stats.maintenance_messages += 1;
        self.net
            .send(node, target, Msg::ShufflePush { token, entries });
        self.net.schedule(
            node,
            self.config.shuffle_timeout,
            Timer::ShuffleTimeout { token },
        );
    }

    fn on_gossip_timer(&mut self, node: NodeIdx, epoch: u32) {
        // A fire from a chain armed before an availability swap: the
        // swap re-armed every node under the new model, so this chain
        // is superseded and must do nothing (not even re-arm).
        if epoch != self.timer_epoch {
            return;
        }
        // Offline nodes skip the round but keep the timer armed, like
        // the DHT baselines' maintenance. The arming scan pre-skips
        // offline grid points, so an offline fire only happens when the
        // scan hit [`MAX_GOSSIP_SKIP`] — and behaves identically.
        if self.net.is_online(node) {
            self.views[node.index()].age_all();
            if let Some(target) = self.views[node.index()].oldest() {
                self.initiate_shuffle(node, target);
            }
        }
        self.arm_gossip(node, self.net.now() + self.config.gossip_period);
    }

    fn on_shuffle_push(&mut self, from: NodeIdx, to: NodeIdx, token: u64, entries: Peers) {
        self.views[to.index()].sample_into(
            self.config.shuffle_len,
            Some(from),
            self.net.rng(),
            &mut self.sample_scratch,
        );
        self.stats.maintenance_messages += 1;
        // The pull reply copies the scratch draw straight into an inline
        // buffer — this was the `sample_scratch.clone()` heap hit.
        let mut reply = Peers::new();
        reply.extend_from_slice(&self.sample_scratch, self.net.payload_pool());
        self.net.send(
            to,
            from,
            Msg::ShufflePull {
                token,
                entries: reply,
            },
        );
        self.views[to.index()].merge(entries.as_slice(), &self.sample_scratch);
        entries.recycle(self.net.payload_pool());
        // Hearing a push is direct evidence the initiator is alive. The
        // empty-map guard matters: suspicion maps are empty for all but
        // recently-failed peers, and this runs on every delivery.
        if self.has_suspicion(to) {
            self.suspicion[to.index()].remove(&from);
            self.prune_suspicion(to);
            self.sync_suspicion_bit(to);
        }
    }

    fn on_shuffle_pull(&mut self, from: NodeIdx, to: NodeIdx, token: u64, entries: Peers) {
        let slot = &mut self.pending_shuffles[to.index()];
        if slot.as_ref().is_none_or(|p| p.token != token) {
            entries.recycle(self.net.payload_pool());
            return; // late pull after the timeout already fired
        }
        let pending = slot.take().expect("token matched above");
        debug_assert_eq!(pending.target, from);
        self.views[to.index()].merge(entries.as_slice(), pending.sent.as_slice());
        entries.recycle(self.net.payload_pool());
        pending.sent.recycle(self.net.payload_pool());
        if self.has_suspicion(to) {
            self.suspicion[to.index()].remove(&from);
            self.prune_suspicion(to);
            self.sync_suspicion_bit(to);
        }
    }

    /// Reads the cached "does `node` hold any strikes?" bit.
    fn has_suspicion(&self, node: NodeIdx) -> bool {
        let u = node.index();
        self.suspicion_nonempty[u / 64] >> (u % 64) & 1 != 0
    }

    /// Re-syncs the cached bit after any mutation of `suspicion[node]`.
    fn sync_suspicion_bit(&mut self, node: NodeIdx) {
        let u = node.index();
        let bit = 1u64 << (u % 64);
        if self.suspicion[u].is_empty() {
            self.suspicion_nonempty[u / 64] &= !bit;
        } else {
            self.suspicion_nonempty[u / 64] |= bit;
        }
    }

    /// Drops strikes against peers no longer in `node`'s view. A merge
    /// can swap a suspected peer out; if it is later re-admitted it
    /// must start with a clean slate — `suspicion_limit` counts
    /// *consecutive* misses while the peer stays in the view, and
    /// strikes for departed peers must not accumulate as garbage.
    fn prune_suspicion(&mut self, node: NodeIdx) {
        let view = &self.views[node.index()];
        // mpil-lint: allow(D003, per-entry membership predicate; visit order cannot change the surviving set)
        self.suspicion[node.index()].retain(|&peer, _| view.contains(peer));
    }

    fn on_shuffle_timeout(&mut self, initiator: NodeIdx, token: u64) {
        let slot = &mut self.pending_shuffles[initiator.index()];
        if slot.as_ref().is_none_or(|p| p.token != token) {
            return; // the pull arrived in time (or the shuffle was superseded)
        }
        let PendingShuffle { target, sent, .. } = slot.take().expect("token matched above");
        sent.recycle(self.net.payload_pool());
        let u = initiator.index();
        if !self.views[u].contains(target) {
            // The peer was merged out while the shuffle was in flight;
            // its slate is clean if it ever comes back.
            self.suspicion[u].remove(&target);
            self.sync_suspicion_bit(initiator);
            return;
        }
        let strikes = self.suspicion[u].entry(target).or_insert(0);
        *strikes += 1;
        if *strikes >= self.config.suspicion_limit {
            self.suspicion[u].remove(&target);
            if self.views[u].remove(target) {
                self.stats.failure_declarations += 1;
            }
        }
        self.sync_suspicion_bit(initiator);
    }

    // --- replication and lookup ----------------------------------------------

    fn on_store_walk(&mut self, from: NodeIdx, to: NodeIdx, object: Id, ttl: u32) {
        self.stores[to.index()].insert(object);
        if ttl <= 1 {
            return;
        }
        self.views[to.index()].sample_into(1, Some(from), self.net.rng(), &mut self.sample_scratch);
        if let Some(&next) = self.sample_scratch.first() {
            self.stats.insert_messages += 1;
            self.net.send(
                to,
                next,
                Msg::StoreWalk {
                    object,
                    ttl: ttl - 1,
                },
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_walk_query(
        &mut self,
        from: NodeIdx,
        to: NodeIdx,
        lookup: u64,
        origin: NodeIdx,
        object: Id,
        ttl: u32,
        hops: u32,
    ) {
        if self.stores[to.index()].contains(&object) {
            self.stats.reply_messages += 1;
            self.net.send(to, origin, Msg::Reply { lookup, hops });
            return; // the walk stops at a holder
        }
        if ttl <= 1 {
            return;
        }
        self.views[to.index()].sample_into(1, Some(from), self.net.rng(), &mut self.sample_scratch);
        if let Some(&next) = self.sample_scratch.first() {
            self.stats.lookup_messages += 1;
            self.net.send(
                to,
                next,
                Msg::WalkQuery {
                    lookup,
                    origin,
                    object,
                    ttl: ttl - 1,
                    hops: hops + 1,
                },
            );
        }
    }

    /// Launches one flood round for `lookup` at its current TTL.
    fn flood_round(&mut self, lookup: u64) {
        let Some(ring) = self.rings.get_mut(&lookup) else {
            return;
        };
        ring.forwarded.clear();
        let origin = ring.origin;
        let object = ring.object;
        let round = ring.round;
        let ttl = ring.ttl;
        for e in self.views[origin.index()].iter() {
            self.stats.lookup_messages += 1;
            self.net.send(
                origin,
                e.peer,
                Msg::FloodQuery {
                    lookup,
                    round,
                    origin,
                    object,
                    ttl,
                    hops: 1,
                },
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_flood_query(
        &mut self,
        from: NodeIdx,
        to: NodeIdx,
        lookup: u64,
        round: u32,
        origin: NodeIdx,
        object: Id,
        ttl: u32,
        hops: u32,
    ) {
        if self.stores[to.index()].contains(&object) {
            self.stats.reply_messages += 1;
            self.net.send(to, origin, Msg::Reply { lookup, hops });
            return;
        }
        if ttl <= 1 {
            return;
        }
        let Some(ring) = self.rings.get_mut(&lookup) else {
            return; // the ring was torn down (reply arrived or gave up)
        };
        if ring.round != round || !ring.forwarded.insert(to) {
            return; // stale round, or this node already forwarded it
        }
        for e in self.views[to.index()].iter() {
            let next = e.peer;
            if next == from {
                continue;
            }
            self.stats.lookup_messages += 1;
            self.net.send(
                to,
                next,
                Msg::FloodQuery {
                    lookup,
                    round,
                    origin,
                    object,
                    ttl: ttl - 1,
                    hops: hops + 1,
                },
            );
        }
    }

    fn on_ring_round(&mut self, lookup: u64) {
        let still_pending = matches!(
            self.lookups.get(&lookup).map(|s| s.outcome),
            Some(LookupOutcome::Pending)
        );
        let Some(ring) = self.rings.get_mut(&lookup) else {
            return;
        };
        let deadline = self.lookups[&lookup].deadline;
        let max_ttl = self.config.ttl;
        if !still_pending || ring.ttl >= max_ttl || self.net.now() >= deadline {
            self.rings.remove(&lookup);
            return;
        }
        ring.ttl = (ring.ttl * 2).min(max_ttl);
        ring.round += 1;
        let origin = ring.origin;
        self.flood_round(lookup);
        self.net.schedule(
            origin,
            self.config.ring_round_gap,
            Timer::RingRound { lookup },
        );
    }

    fn complete_lookup(&mut self, lookup: u64, hops: u32) {
        let now = self.net.now();
        if let Some(state) = self.lookups.get_mut(&lookup) {
            if matches!(state.outcome, LookupOutcome::Pending) {
                state.outcome = if now <= state.deadline {
                    LookupOutcome::Succeeded {
                        hops,
                        latency: now.duration_since(state.issued_at),
                    }
                } else {
                    LookupOutcome::Failed
                };
            }
        }
        self.rings.remove(&lookup);
    }

    // --- event dispatch -------------------------------------------------------

    fn dispatch(&mut self, ev: Event<Msg, Timer>) {
        match ev {
            Event::Message { from, to, msg } => match msg {
                Msg::ShufflePush { token, entries } => {
                    self.on_shuffle_push(from, to, token, entries)
                }
                Msg::ShufflePull { token, entries } => {
                    self.on_shuffle_pull(from, to, token, entries)
                }
                Msg::StoreWalk { object, ttl } => self.on_store_walk(from, to, object, ttl),
                Msg::WalkQuery {
                    lookup,
                    origin,
                    object,
                    ttl,
                    hops,
                } => self.on_walk_query(from, to, lookup, origin, object, ttl, hops),
                Msg::FloodQuery {
                    lookup,
                    round,
                    origin,
                    object,
                    ttl,
                    hops,
                } => self.on_flood_query(from, to, lookup, round, origin, object, ttl, hops),
                Msg::Reply { lookup, hops } => self.complete_lookup(lookup, hops),
            },
            Event::Timer { node, timer } => match timer {
                Timer::Gossip { epoch } => self.on_gossip_timer(node, epoch),
                Timer::ShuffleTimeout { token } => self.on_shuffle_timeout(node, token),
                Timer::RingRound { lookup } => self.on_ring_round(lookup),
            },
        }
    }
}

impl std::fmt::Debug for GossipSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GossipSim")
            .field("nodes", &self.views.len())
            .field("now", &self.net.now())
            .field("strategy", &self.config.strategy)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::build_converged_views;
    use mpil_sim::{AlwaysOn, ConstantLatency, Flapping, FlappingConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build(n: usize, config: GossipConfig, seed: u64) -> GossipSim {
        let mut rng = SmallRng::seed_from_u64(seed);
        let views = build_converged_views(n, config.view_size, &mut rng);
        GossipSim::new(
            views,
            config,
            Box::new(AlwaysOn),
            Box::new(ConstantLatency(SimDuration::from_millis(20))),
            seed,
        )
    }

    #[test]
    fn insert_deposits_remote_replicas() {
        let mut sim = build(100, GossipConfig::default(), 1);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..5 {
            let object = Id::random(&mut rng);
            sim.insert(NodeIdx::new(0), object);
            sim.run_to_quiescence();
            let holders = sim.replica_holders(object);
            assert!(
                holders.len() >= sim.config().replication_walkers,
                "walks deposit at least one replica each, got {}",
                holders.len()
            );
            assert!(
                !holders.contains(&NodeIdx::new(0)),
                "origin stores remotely"
            );
        }
        assert!(sim.stats().insert_messages > 0);
        assert_eq!(sim.stats().lookup_messages, 0);
    }

    #[test]
    fn quiet_network_walk_lookups_succeed() {
        let mut sim = build(100, GossipConfig::default(), 2);
        let mut rng = SmallRng::seed_from_u64(10);
        let objects: Vec<Id> = (0..20).map(|_| Id::random(&mut rng)).collect();
        for &o in &objects {
            sim.insert(NodeIdx::new(0), o);
        }
        sim.run_to_quiescence();
        let deadline = sim.now() + SimDuration::from_secs(600);
        let handles: Vec<u64> = objects
            .iter()
            .map(|&o| sim.issue_lookup(NodeIdx::new(50), o, deadline))
            .collect();
        sim.run_to_quiescence();
        let ok = handles
            .iter()
            .filter(|&&h| sim.lookup_outcome(h).is_success())
            .count();
        assert!(ok >= 18, "only {ok}/20 walk lookups succeeded");
        assert!(sim.stats().lookup_messages > 0);
        assert!(sim.stats().reply_messages > 0);
    }

    #[test]
    fn quiet_network_ring_lookups_succeed() {
        let config = GossipConfig::default()
            .with_strategy(LookupStrategy::ExpandingRing)
            .with_ttl(8);
        let mut sim = build(100, config, 3);
        let mut rng = SmallRng::seed_from_u64(11);
        let objects: Vec<Id> = (0..10).map(|_| Id::random(&mut rng)).collect();
        for &o in &objects {
            sim.insert(NodeIdx::new(0), o);
        }
        sim.run_to_quiescence();
        let deadline = sim.now() + SimDuration::from_secs(600);
        let handles: Vec<u64> = objects
            .iter()
            .map(|&o| sim.issue_lookup(NodeIdx::new(50), o, deadline))
            .collect();
        sim.run_to_quiescence();
        for h in handles {
            assert!(
                sim.lookup_outcome(h).is_success(),
                "ring lookup {h} failed on a quiet network"
            );
        }
    }

    #[test]
    fn ring_rounds_stop_spending_after_a_hit() {
        let config = GossipConfig::default()
            .with_strategy(LookupStrategy::ExpandingRing)
            .with_ttl(8);
        let mut sim = build(60, config, 4);
        let object = Id::from_low_u64(0xfeed);
        sim.insert(NodeIdx::new(0), object);
        sim.run_to_quiescence();
        let h = sim.issue_lookup(
            NodeIdx::new(30),
            object,
            sim.now() + SimDuration::from_secs(600),
        );
        sim.run_to_quiescence();
        assert!(sim.lookup_outcome(h).is_success());
        // A full 8-TTL flood over 60 nodes with view 8 would send far
        // more than this; the early rounds finding the object must keep
        // the spend bounded.
        assert!(
            sim.stats().lookup_messages < 60 * 8 * 4,
            "ring kept flooding after the reply: {} msgs",
            sim.stats().lookup_messages
        );
    }

    #[test]
    fn absent_object_fails_without_wedging() {
        for strategy in [LookupStrategy::KRandomWalk, LookupStrategy::ExpandingRing] {
            let mut sim = build(50, GossipConfig::default().with_strategy(strategy), 5);
            let h = sim.issue_lookup(
                NodeIdx::new(1),
                Id::from_low_u64(0xdead),
                sim.now() + SimDuration::from_secs(60),
            );
            sim.run_to_quiescence();
            assert!(!sim.lookup_outcome(h).is_success(), "{strategy:?}");
        }
    }

    #[test]
    fn local_holder_succeeds_in_zero_hops() {
        let mut sim = build(30, GossipConfig::default(), 6);
        let object = Id::from_low_u64(7);
        sim.stores[2].insert(object);
        let h = sim.issue_lookup(
            NodeIdx::new(2),
            object,
            sim.now() + SimDuration::from_secs(10),
        );
        assert!(matches!(
            sim.lookup_outcome(h),
            LookupOutcome::Succeeded { hops: 0, .. }
        ));
    }

    #[test]
    fn maintenance_shuffles_run_and_views_stay_legal() {
        let mut sim = build(60, GossipConfig::default(), 7);
        sim.start_maintenance();
        sim.run_until(SimTime::from_secs(120));
        assert!(sim.stats().maintenance_messages > 0);
        // Static network: nobody should have been declared dead.
        assert_eq!(sim.stats().failure_declarations, 0);
        for i in 0..sim.len() as u32 {
            sim.view(NodeIdx::new(i)).assert_invariants();
        }
    }

    #[test]
    fn suspicion_evicts_churned_peers() {
        let mut sim = build(40, GossipConfig::default(), 8);
        sim.start_maintenance();
        // Everyone but node 0 goes offline essentially forever.
        let mut rng = SmallRng::seed_from_u64(99);
        let cfg = FlappingConfig {
            idle: SimDuration::from_micros(1),
            offline: SimDuration::from_secs(1_000_000),
            probability: 1.0,
            start: SimTime::ZERO,
        };
        let mut flap = Flapping::new(cfg, 40, 77, &mut rng);
        flap.exempt(NodeIdx::new(0));
        sim.set_availability(Box::new(flap));
        sim.run_until(SimTime::from_secs(300));
        assert!(
            sim.stats().failure_declarations > 0,
            "dead peers must age out of views"
        );
        sim.view(NodeIdx::new(0)).assert_invariants();
    }

    #[test]
    fn join_rebuilds_a_view_through_the_bootstrap() {
        let mut sim = build(30, GossipConfig::default(), 12);
        sim.join(NodeIdx::new(5), NodeIdx::new(0));
        assert_eq!(sim.view(NodeIdx::new(5)).peers(), vec![NodeIdx::new(0)]);
        sim.run_to_quiescence();
        // The immediate shuffle pulled fresh entries from the bootstrap.
        assert!(sim.view(NodeIdx::new(5)).len() > 1);
        sim.view(NodeIdx::new(5)).assert_invariants();
        // Self-join is a no-op.
        sim.join(NodeIdx::new(5), NodeIdx::new(5));
    }

    #[test]
    fn stats_classes_sum_to_kernel_sends() {
        let mut sim = build(80, GossipConfig::default(), 13);
        let mut rng = SmallRng::seed_from_u64(14);
        for _ in 0..5 {
            sim.insert(NodeIdx::new(0), Id::random(&mut rng));
        }
        sim.run_to_quiescence();
        let h = sim.issue_lookup(
            NodeIdx::new(9),
            Id::from_low_u64(1),
            sim.now() + SimDuration::from_secs(60),
        );
        sim.start_maintenance();
        sim.run_until(sim.now() + SimDuration::from_secs(90));
        let _ = sim.lookup_outcome(h);
        assert_eq!(sim.stats().total_messages(), sim.net_stats().sent);
    }

    #[test]
    fn suspicion_resets_when_a_peer_leaves_the_view() {
        // suspicion_limit counts *consecutive* misses while the peer
        // stays in the view: a strike must not survive the peer being
        // merged out (else a re-admitted peer dies after one miss).
        let mut sim = build(30, GossipConfig::default(), 15);
        let u = NodeIdx::new(0);
        let absent = (1..30u32)
            .map(NodeIdx::new)
            .find(|&p| !sim.views[0].contains(p))
            .expect("view 8 of 29 peers leaves someone out");
        // A stale strike against a peer not in the view is dropped by
        // the next merge-side prune...
        sim.suspicion[0].insert(absent, 1);
        sim.prune_suspicion(u);
        assert!(sim.suspicion[0].is_empty(), "stale strike survived prune");
        // ...and a shuffle timeout for a departed target strikes nobody.
        sim.pending_shuffles[0] = Some(PendingShuffle {
            token: 999,
            target: absent,
            sent: Peers::new(),
        });
        sim.on_shuffle_timeout(u, 999);
        assert!(sim.suspicion[0].is_empty(), "departed peer was struck");
        assert_eq!(sim.stats().failure_declarations, 0);
    }

    #[test]
    fn fixed_seed_runs_reproduce_exactly() {
        let run = |seed: u64, strategy: LookupStrategy| {
            let mut sim = build(70, GossipConfig::default().with_strategy(strategy), seed);
            let mut rng = SmallRng::seed_from_u64(seed ^ 1);
            let objects: Vec<Id> = (0..8).map(|_| Id::random(&mut rng)).collect();
            for &o in &objects {
                sim.insert(NodeIdx::new(0), o);
            }
            sim.run_to_quiescence();
            sim.start_maintenance();
            let mut flap_rng = SmallRng::seed_from_u64(seed ^ 2);
            let mut flap = Flapping::new(
                FlappingConfig::idle_offline_secs(30, 30, 0.6).starting_at(sim.now()),
                70,
                seed ^ 3,
                &mut flap_rng,
            );
            flap.exempt(NodeIdx::new(0));
            sim.set_availability(Box::new(flap));
            let mut outcomes = Vec::new();
            for &o in &objects {
                sim.run_until(sim.now() + SimDuration::from_secs(60));
                let h =
                    sim.issue_lookup(NodeIdx::new(0), o, sim.now() + SimDuration::from_secs(60));
                outcomes.push(h);
            }
            sim.run_until(sim.now() + SimDuration::from_secs(90));
            let results: Vec<LookupOutcome> =
                outcomes.iter().map(|&h| sim.lookup_outcome(h)).collect();
            (results, sim.stats(), sim.net_stats())
        };
        for strategy in [LookupStrategy::KRandomWalk, LookupStrategy::ExpandingRing] {
            assert_eq!(run(21, strategy), run(21, strategy), "{strategy:?}");
        }
    }
}
