//! # mpil-gossip
//!
//! The epidemic/unstructured-overlay discovery engine: the fifth
//! substrate behind `mpil_harness::DiscoveryEngine`, testing the
//! paper's overlay-independence claim in the regime its structured
//! substrates (Chord, Kademlia, Pastry) cannot reach.
//!
//! Two engines share the crate, both on the [`mpil_sim`] kernel:
//!
//! **The flat Cyclon engine** ([`GossipSim`], [`GossipConfig`]):
//!
//! * **Membership** ([`PartialView`], [`build_converged_views`]):
//!   bounded partial views maintained by Cyclon-style push-pull
//!   shuffles — age-based peer selection, swap semantics on overflow —
//!   with SWIM-style suspicion evicting peers that miss
//!   [`GossipConfig::suspicion_limit`] consecutive shuffle replies.
//! * **Replication**: inserts launch TTL-bounded random walks that
//!   deposit the pointer at every node visited.
//! * **Lookup** ([`LookupStrategy::KRandomWalk`],
//!   [`LookupStrategy::ExpandingRing`]): `k` independent random walks
//!   with TTL, or expanding-ring flooding with per-round duplicate
//!   suppression; both reply directly to the origin.
//!
//! **The two-layer epidemic engine** ([`EpidemicSim`],
//! [`EpidemicConfig`]):
//!
//! * **Membership** ([`Membership`], [`build_converged_membership`]):
//!   HyParView — a small symmetric active view maintained by
//!   JOIN/FORWARD-JOIN/NEIGHBOR with reactive replacement from a larger
//!   passive view refreshed by shuffles.
//! * **Replication**: inserts broadcast announcements down a Plumtree —
//!   eager push on tree links, IHAVE digests to the rest, GRAFT/PRUNE
//!   lazy repair — planting the pointer at essentially every node.
//! * **Lookup** ([`LookupStrategy::Plumtree`], [`LookupStrategy::Foaf`]):
//!   shallow TTL-bounded queries of the active view retried in rounds,
//!   or FOAF-style bounded-fanout walks; an order of magnitude fewer
//!   messages per lookup than expanding-ring flooding.
//!
//! The engine is ID-agnostic like MPIL — no key-space metric, only
//! exact pointer matches — and every random choice flows through the
//! kernel RNG, so fixed seeds reproduce bit-for-bit. Its live views can
//! also be frozen into neighbor lists ([`GossipSim::neighbor_lists`])
//! for MPIL to route over, closing the loop on overlay-independence
//! (`OverlaySource::Gossip` in the harness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod epidemic;
pub mod membership;
pub mod view;

pub use config::{EpidemicConfig, GossipConfig, LookupStrategy};
pub use engine::{GossipSim, GossipStats};
pub use epidemic::EpidemicSim;
pub use membership::{build_converged_membership, Membership};
pub use view::{build_converged_views, PartialView, ViewEntry};

/// Outcome of one lookup (the shared engine-agnostic enum).
pub use mpil_sim::LookupOutcome;
