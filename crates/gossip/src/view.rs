//! Bounded partial views with age-based swap maintenance.
//!
//! Each node knows a small random sample of the overlay — its
//! [`PartialView`] — kept fresh by Cyclon-style push-pull shuffles: the
//! oldest neighbor is contacted, a few entries (initiator included, age
//! zero) are swapped, and on overflow the entries just handed to the
//! peer are evicted first, so the exchange is a swap rather than a
//! broadcast. The two invariants every operation preserves — **no
//! self-entry, no duplicates, never over capacity** — are what the
//! property suite in `tests/properties.rs` hammers under churn.

use mpil_overlay::NodeIdx;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One view slot: a peer and the number of shuffle rounds since it was
/// last known fresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewEntry {
    /// The neighbor.
    pub peer: NodeIdx,
    /// Shuffle rounds since this entry was last refreshed.
    pub age: u32,
}

/// Views at or below this capacity store their entries inline.
///
/// The benchmark configurations all run `view = 8`, and an 8-slot entry
/// array is exactly one cache line — inlining it into [`PartialView`]
/// means a shuffle touches one line of the views table instead of
/// chasing a per-node heap `Vec`. Million-view tables also drop the
/// per-view allocation entirely.
const INLINE_VIEW: usize = 8;

/// Entry storage: inline slots for small capacities, a heap `Vec`
/// beyond [`INLINE_VIEW`]. The variant is fixed at construction from
/// the view's capacity and never changes. Every mutation preserves slot
/// order exactly as the `Vec` operations it replaces (order feeds the
/// deterministic sampling), which the differential property tests in
/// `tests/properties.rs` check against the invariants.
#[derive(Debug, Clone)]
enum Entries {
    Inline {
        len: u8,
        slots: [ViewEntry; INLINE_VIEW],
    },
    Heap(Vec<ViewEntry>),
}

impl Entries {
    fn new(capacity: usize) -> Self {
        if capacity <= INLINE_VIEW {
            Entries::Inline {
                len: 0,
                slots: [ViewEntry {
                    peer: NodeIdx::new(0),
                    age: 0,
                }; INLINE_VIEW],
            }
        } else {
            Entries::Heap(Vec::with_capacity(capacity))
        }
    }

    fn as_slice(&self) -> &[ViewEntry] {
        match self {
            Entries::Inline { len, slots } => &slots[..*len as usize],
            Entries::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [ViewEntry] {
        match self {
            Entries::Inline { len, slots } => &mut slots[..*len as usize],
            Entries::Heap(v) => v,
        }
    }

    /// Appends an entry. Callers guarantee room (the view is bounded by
    /// its capacity, and inline storage exists only for capacities at
    /// most [`INLINE_VIEW`]).
    fn push(&mut self, e: ViewEntry) {
        match self {
            Entries::Inline { len, slots } => {
                slots[*len as usize] = e;
                *len += 1;
            }
            Entries::Heap(v) => v.push(e),
        }
    }

    /// Order-preserving removal of slot `i`, like `Vec::remove`.
    fn remove(&mut self, i: usize) {
        match self {
            Entries::Inline { len, slots } => {
                let l = *len as usize;
                slots.copy_within(i + 1..l, i);
                *len -= 1;
            }
            Entries::Heap(v) => {
                v.remove(i);
            }
        }
    }

    /// Order-preserving filter, like `Vec::retain`.
    fn retain(&mut self, mut keep: impl FnMut(&ViewEntry) -> bool) {
        match self {
            Entries::Inline { len, slots } => {
                let mut kept = 0usize;
                for i in 0..*len as usize {
                    if keep(&slots[i]) {
                        slots[kept] = slots[i];
                        kept += 1;
                    }
                }
                *len = kept as u8;
            }
            Entries::Heap(v) => v.retain(keep),
        }
    }

    fn clear(&mut self) {
        match self {
            Entries::Inline { len, .. } => *len = 0,
            Entries::Heap(v) => v.clear(),
        }
    }
}

/// A bounded, self-free, duplicate-free neighbor sample.
#[derive(Debug, Clone)]
pub struct PartialView {
    owner: NodeIdx,
    capacity: usize,
    entries: Entries,
}

// Manual serde impls keeping the wire shape of the formerly derived
// ones — a map of `owner`, `capacity`, and `entries` as a plain
// sequence — independent of the inline-vs-heap storage split.
impl Serialize for PartialView {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("owner".to_string(), self.owner.to_value()),
            ("capacity".to_string(), self.capacity.to_value()),
            (
                "entries".to_string(),
                serde::Value::Seq(
                    self.entries
                        .as_slice()
                        .iter()
                        .map(|e| e.to_value())
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for PartialView {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::DeError::expected("map", "PartialView"))?;
        let owner = NodeIdx::from_value(serde::map_get(map, "owner")?)?;
        let capacity = usize::from_value(serde::map_get(map, "capacity")?)?;
        let wire = Vec::<ViewEntry>::from_value(serde::map_get(map, "entries")?)?;
        let mut entries = Entries::new(capacity);
        for e in wire {
            entries.push(e);
        }
        Ok(PartialView {
            owner,
            capacity,
            entries,
        })
    }
}

impl PartialEq for PartialView {
    fn eq(&self, other: &Self) -> bool {
        self.owner == other.owner
            && self.capacity == other.capacity
            && self.entries.as_slice() == other.entries.as_slice()
    }
}

impl PartialView {
    /// An empty view owned by `owner`, holding at most `capacity`
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(owner: NodeIdx, capacity: usize) -> Self {
        assert!(capacity >= 1, "a view needs capacity for at least 1 peer");
        PartialView {
            owner,
            capacity,
            entries: Entries::new(capacity),
        }
    }

    /// The owning node (never present in the view).
    pub fn owner(&self) -> NodeIdx {
        self.owner
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of neighbors currently known.
    pub fn len(&self) -> usize {
        self.entries.as_slice().len()
    }

    /// Returns `true` when no neighbors are known.
    pub fn is_empty(&self) -> bool {
        self.entries.as_slice().is_empty()
    }

    /// Is `peer` in the view?
    pub fn contains(&self, peer: NodeIdx) -> bool {
        self.entries.as_slice().iter().any(|e| e.peer == peer)
    }

    /// The neighbors, in slot order.
    pub fn peers(&self) -> Vec<NodeIdx> {
        self.entries.as_slice().iter().map(|e| e.peer).collect()
    }

    /// Iterates the entries (tests, diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &ViewEntry> {
        self.entries.as_slice().iter()
    }

    /// Ages every entry by one shuffle round.
    pub fn age_all(&mut self) {
        for e in self.entries.as_mut_slice() {
            e.age = e.age.saturating_add(1);
        }
    }

    /// The oldest neighbor (ties broken by the later slot), if any.
    pub fn oldest(&self) -> Option<NodeIdx> {
        self.entries
            .as_slice()
            .iter()
            .max_by_key(|e| e.age)
            .map(|e| e.peer)
    }

    /// Removes `peer`; returns whether it was present.
    pub fn remove(&mut self, peer: NodeIdx) -> bool {
        let before = self.entries.as_slice().len();
        self.entries.retain(|e| e.peer != peer);
        self.entries.as_slice().len() != before
    }

    /// Drops every entry (re-join support).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Inserts `peer` fresh (age 0) if it is not the owner and not
    /// already present; on overflow the oldest entry is evicted.
    /// Returns whether the view changed.
    pub fn insert_fresh(&mut self, peer: NodeIdx) -> bool {
        if peer == self.owner {
            return false;
        }
        if let Some(e) = self
            .entries
            .as_mut_slice()
            .iter_mut()
            .find(|e| e.peer == peer)
        {
            e.age = 0;
            return false;
        }
        if self.entries.as_slice().len() == self.capacity {
            let victim = self
                .entries
                .as_slice()
                .iter()
                .enumerate()
                .max_by_key(|(_, e)| e.age)
                .map(|(i, _)| i)
                .expect("full view is non-empty");
            self.entries.remove(victim);
        }
        self.entries.push(ViewEntry { peer, age: 0 });
        true
    }

    /// Merges the entries received in a shuffle. `sent` is what this
    /// node handed to the peer in the same exchange: on overflow those
    /// slots are sacrificed first (the swap), then the oldest.
    ///
    /// Both arguments are borrowed slices so the engine can pass its
    /// scratch draw and the message's pooled payload buffer directly —
    /// a merge never requires materializing (or cloning) a `Vec`.
    pub fn merge(&mut self, received: &[NodeIdx], sent: &[NodeIdx]) {
        for &peer in received {
            if peer == self.owner {
                continue;
            }
            if let Some(e) = self
                .entries
                .as_mut_slice()
                .iter_mut()
                .find(|e| e.peer == peer)
            {
                e.age = 0;
                continue;
            }
            if self.entries.as_slice().len() == self.capacity {
                let victim = self
                    .entries
                    .as_slice()
                    .iter()
                    .position(|e| sent.contains(&e.peer))
                    .unwrap_or_else(|| {
                        self.entries
                            .as_slice()
                            .iter()
                            .enumerate()
                            .max_by_key(|(_, e)| e.age)
                            .map(|(i, _)| i)
                            .expect("full view is non-empty")
                    });
                self.entries.remove(victim);
            }
            self.entries.push(ViewEntry { peer, age: 0 });
        }
    }

    /// Draws up to `k` distinct neighbors, excluding `exclude` when an
    /// alternative exists (partial Fisher–Yates over a scratch list, so
    /// the draw order is a pure function of the RNG stream).
    pub fn sample<R: Rng + ?Sized>(
        &self,
        k: usize,
        exclude: Option<NodeIdx>,
        rng: &mut R,
    ) -> Vec<NodeIdx> {
        let mut out = Vec::new();
        self.sample_into(k, exclude, rng, &mut out);
        out
    }

    /// [`Self::sample`] into a caller-owned buffer: `out` is cleared,
    /// then filled with the draw. Engines pass a per-node scratch vector
    /// so steady-state shuffles and walk fan-outs allocate nothing. The
    /// pool order and RNG consumption are identical to `sample`, so
    /// seeded runs cannot tell the two apart.
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        k: usize,
        exclude: Option<NodeIdx>,
        rng: &mut R,
        out: &mut Vec<NodeIdx>,
    ) {
        out.clear();
        let entries = self.entries.as_slice();
        match exclude {
            Some(x) if entries.len() > 1 => {
                out.extend(entries.iter().map(|e| e.peer).filter(|&p| p != x))
            }
            _ => out.extend(entries.iter().map(|e| e.peer)),
        }
        let take = k.min(out.len());
        for i in 0..take {
            let j = rng.gen_range(i..out.len());
            out.swap(i, j);
        }
        out.truncate(take);
    }

    /// Draws one neighbor, excluding `exclude` when an alternative
    /// exists.
    pub fn sample_one<R: Rng + ?Sized>(
        &self,
        exclude: Option<NodeIdx>,
        rng: &mut R,
    ) -> Option<NodeIdx> {
        self.sample(1, exclude, rng).into_iter().next()
    }

    /// Checks the structural invariants (property tests).
    ///
    /// # Panics
    ///
    /// Panics if the view contains its owner, a duplicate, or more than
    /// `capacity` entries.
    pub fn assert_invariants(&self) {
        let entries = self.entries.as_slice();
        assert!(
            entries.len() <= self.capacity,
            "{} holds {} entries, capacity {}",
            self.owner,
            entries.len(),
            self.capacity
        );
        for (i, e) in entries.iter().enumerate() {
            assert!(e.peer != self.owner, "{} contains itself", self.owner);
            assert!(
                !entries[i + 1..].iter().any(|o| o.peer == e.peer),
                "{} contains {} twice",
                self.owner,
                e.peer
            );
        }
    }
}

/// Builds the converged membership state a long-running gossip overlay
/// settles into: every node holds `view_size` distinct uniformly random
/// peers (Cyclon converges to exactly this regime — in-degree
/// concentrates around the out-degree and views are near-uniform
/// samples). Deterministic in `rng`.
pub fn build_converged_views<R: Rng + ?Sized>(
    n: usize,
    view_size: usize,
    rng: &mut R,
) -> Vec<PartialView> {
    assert!(view_size >= 1, "view_size must be at least 1");
    let mut views = Vec::with_capacity(n);
    for i in 0..n {
        let owner = NodeIdx::new(i as u32);
        let mut view = PartialView::new(owner, view_size);
        let want = view_size.min(n.saturating_sub(1));
        while view.len() < want {
            let peer = NodeIdx::new(rng.gen_range(0..n as u32));
            if peer != owner && !view.contains(peer) {
                view.insert_fresh(peer);
            }
        }
        views.push(view);
    }
    views
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn node(i: u32) -> NodeIdx {
        NodeIdx::new(i)
    }

    #[test]
    fn insert_rejects_self_and_duplicates() {
        let mut v = PartialView::new(node(0), 4);
        assert!(!v.insert_fresh(node(0)));
        assert!(v.insert_fresh(node(1)));
        assert!(!v.insert_fresh(node(1)));
        assert_eq!(v.len(), 1);
        v.assert_invariants();
    }

    #[test]
    fn overflow_evicts_the_oldest() {
        let mut v = PartialView::new(node(0), 2);
        v.insert_fresh(node(1));
        v.age_all();
        v.insert_fresh(node(2));
        v.insert_fresh(node(3));
        assert_eq!(v.len(), 2);
        assert!(!v.contains(node(1)), "oldest should be gone");
        assert!(v.contains(node(2)) && v.contains(node(3)));
        v.assert_invariants();
    }

    #[test]
    fn merge_prefers_evicting_sent_slots() {
        let mut v = PartialView::new(node(0), 3);
        for p in [1, 2, 3] {
            v.insert_fresh(node(p));
        }
        v.merge(&[node(4), node(5)], &[node(1), node(2)]);
        assert_eq!(v.len(), 3);
        assert!(v.contains(node(3)), "unsent slot survives the swap");
        assert!(v.contains(node(4)) && v.contains(node(5)));
        v.assert_invariants();
    }

    #[test]
    fn merge_refreshes_known_peers_without_duplicating() {
        let mut v = PartialView::new(node(0), 3);
        v.insert_fresh(node(1));
        v.age_all();
        v.merge(&[node(1), node(0)], &[]);
        assert_eq!(v.len(), 1);
        assert_eq!(v.iter().next().expect("one entry").age, 0);
        v.assert_invariants();
    }

    #[test]
    fn oldest_tracks_ages() {
        let mut v = PartialView::new(node(0), 3);
        v.insert_fresh(node(1));
        v.age_all();
        v.insert_fresh(node(2));
        assert_eq!(v.oldest(), Some(node(1)));
        assert!(v.remove(node(1)));
        assert_eq!(v.oldest(), Some(node(2)));
        assert!(!v.remove(node(9)));
    }

    #[test]
    fn sample_is_distinct_and_respects_exclusion() {
        let mut v = PartialView::new(node(0), 8);
        for p in 1..=8 {
            v.insert_fresh(node(p));
        }
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let s = v.sample(5, Some(node(3)), &mut rng);
            assert_eq!(s.len(), 5);
            assert!(!s.contains(&node(3)));
            let set: fxhash::FxHashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 5, "sample must be distinct");
        }
        // With a single entry the exclusion is waived rather than
        // returning nothing.
        let mut lone = PartialView::new(node(0), 2);
        lone.insert_fresh(node(1));
        assert_eq!(lone.sample_one(Some(node(1)), &mut rng), Some(node(1)));
    }

    #[test]
    fn converged_views_satisfy_invariants() {
        let mut rng = SmallRng::seed_from_u64(3);
        let views = build_converged_views(64, 6, &mut rng);
        assert_eq!(views.len(), 64);
        for v in &views {
            assert_eq!(v.len(), 6);
            v.assert_invariants();
        }
    }

    #[test]
    fn converged_views_cap_at_population() {
        let mut rng = SmallRng::seed_from_u64(4);
        let views = build_converged_views(3, 8, &mut rng);
        for v in &views {
            assert_eq!(v.len(), 2, "only n-1 candidates exist");
            v.assert_invariants();
        }
        let lone = build_converged_views(1, 8, &mut rng);
        assert!(lone[0].is_empty());
    }
}
