//! Configuration for the gossip engine.

use mpil_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How a lookup spreads through the unstructured overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LookupStrategy {
    /// `walkers` independent random walks, each with a hop budget of
    /// `ttl` (Lv et al.'s k-random-walk search; Ferretti's local-
    /// knowledge walks are the same mechanism over gossip views).
    KRandomWalk,
    /// Gnutella-style flooding in rounds of doubling scope: flood with
    /// TTL 1, wait, flood with TTL 2, 4, ... up to `ttl`, stopping at
    /// the first positive reply.
    ExpandingRing,
}

impl LookupStrategy {
    /// Short label used in engine legends ("k-walk" / "ring").
    pub fn label(&self) -> &'static str {
        match self {
            LookupStrategy::KRandomWalk => "k-walk",
            LookupStrategy::ExpandingRing => "ring",
        }
    }
}

/// Knobs of the gossip membership layer and its two lookup strategies.
///
/// Defaults follow the unstructured-overlay literature: Cyclon-style
/// shuffles of half the view every few seconds, a couple of missed
/// shuffles before a peer is declared dead, and search parameters sized
/// so the paper-scale 1000-node runs succeed on a quiet network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Bound on each node's partial view (out-degree of the overlay).
    pub view_size: usize,
    /// Entries exchanged per shuffle (the initiator's includes itself).
    pub shuffle_len: usize,
    /// Period of each node's push-pull shuffle timer.
    pub gossip_period: SimDuration,
    /// How long the initiator waits for the pull half before counting a
    /// shuffle as failed.
    pub shuffle_timeout: SimDuration,
    /// Failed shuffles to the same peer before it is evicted from the
    /// view (SWIM-style suspicion: one miss marks, `suspicion_limit`
    /// misses kill).
    pub suspicion_limit: u32,
    /// Random walks launched per lookup ([`LookupStrategy::KRandomWalk`]).
    pub walkers: usize,
    /// Hop budget per walk, and the TTL cap of the expanding ring.
    pub ttl: u32,
    /// Which lookup strategy [`crate::GossipSim::issue_lookup`] uses.
    pub strategy: LookupStrategy,
    /// Random walks launched per insert (each deposits the pointer at
    /// every node it visits).
    pub replication_walkers: usize,
    /// Hop budget per insert walk.
    pub replication_ttl: u32,
    /// Pause between expanding-ring rounds (must cover a round's flood
    /// and reply latency).
    pub ring_round_gap: SimDuration,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            view_size: 8,
            shuffle_len: 4,
            gossip_period: SimDuration::from_secs(5),
            shuffle_timeout: SimDuration::from_secs(2),
            suspicion_limit: 2,
            walkers: 8,
            ttl: 16,
            strategy: LookupStrategy::KRandomWalk,
            replication_walkers: 3,
            replication_ttl: 5,
            ring_round_gap: SimDuration::from_secs(2),
        }
    }
}

impl GossipConfig {
    /// Sets the partial-view bound.
    pub fn with_view_size(mut self, view_size: usize) -> Self {
        self.view_size = view_size;
        // Keep the Cyclon invariant shuffle_len <= view_size without
        // forcing callers to set both knobs.
        self.shuffle_len = self.shuffle_len.min(view_size.max(1));
        self
    }

    /// Sets the number of walkers per lookup.
    pub fn with_walkers(mut self, walkers: usize) -> Self {
        self.walkers = walkers;
        self
    }

    /// Sets the walk/ring TTL.
    pub fn with_ttl(mut self, ttl: u32) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the lookup strategy.
    pub fn with_strategy(mut self, strategy: LookupStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Panics unless the configuration is internally consistent.
    ///
    /// # Panics
    ///
    /// Panics on a zero view, zero/oversized shuffle length, zero
    /// walkers/TTLs, or a non-positive period.
    pub fn assert_valid(&self) {
        assert!(self.view_size >= 1, "view_size must be at least 1");
        assert!(
            (1..=self.view_size).contains(&self.shuffle_len),
            "shuffle_len must be in 1..=view_size"
        );
        assert!(self.gossip_period > SimDuration::ZERO, "gossip_period");
        assert!(self.shuffle_timeout > SimDuration::ZERO, "shuffle_timeout");
        assert!(self.suspicion_limit >= 1, "suspicion_limit");
        assert!(self.walkers >= 1, "walkers");
        assert!(self.ttl >= 1, "ttl");
        assert!(self.replication_walkers >= 1, "replication_walkers");
        assert!(self.replication_ttl >= 1, "replication_ttl");
        assert!(self.ring_round_gap > SimDuration::ZERO, "ring_round_gap");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        GossipConfig::default().assert_valid();
    }

    #[test]
    fn with_view_size_keeps_shuffle_len_legal() {
        let c = GossipConfig::default().with_view_size(2);
        c.assert_valid();
        assert_eq!(c.view_size, 2);
        assert!(c.shuffle_len <= 2);
    }

    #[test]
    #[should_panic(expected = "view_size")]
    fn zero_view_is_rejected() {
        let c = GossipConfig {
            view_size: 0,
            shuffle_len: 0,
            ..GossipConfig::default()
        };
        c.assert_valid();
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(LookupStrategy::KRandomWalk.label(), "k-walk");
        assert_eq!(LookupStrategy::ExpandingRing.label(), "ring");
    }
}
