//! Configuration for the gossip engine.

use mpil_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How a lookup spreads through the unstructured overlay.
///
/// The first two strategies run on the Cyclon engine
/// ([`crate::GossipSim`]); the last two require the HyParView/Plumtree
/// engine ([`crate::EpidemicSim`]), whose membership layer maintains
/// the spanning-tree links they ride on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LookupStrategy {
    /// `walkers` independent random walks, each with a hop budget of
    /// `ttl` (Lv et al.'s k-random-walk search; Ferretti's local-
    /// knowledge walks are the same mechanism over gossip views).
    KRandomWalk,
    /// Gnutella-style flooding in rounds of doubling scope: flood with
    /// TTL 1, wait, flood with TTL 2, 4, ... up to `ttl`, stopping at
    /// the first positive reply.
    ExpandingRing,
    /// Shallow TTL-bounded queries down the Plumtree spanning tree in
    /// retried rounds: announcements already pushed the pointer nearly
    /// everywhere, so a round costs about one message per active link
    /// instead of a flood.
    Plumtree,
    /// FOAF-style bounded-fanout walks (ADR-007): each hop forwards to
    /// `foaf_fanout` active neighbors with a small TTL, deduplicated
    /// per lookup, retried in rounds like the tree query.
    Foaf,
}

impl LookupStrategy {
    /// Short label used in engine legends
    /// ("k-walk" / "ring" / "plumtree" / "foaf").
    pub fn label(&self) -> &'static str {
        match self {
            LookupStrategy::KRandomWalk => "k-walk",
            LookupStrategy::ExpandingRing => "ring",
            LookupStrategy::Plumtree => "plumtree",
            LookupStrategy::Foaf => "foaf",
        }
    }

    /// Does the Cyclon engine ([`crate::GossipSim`]) implement this
    /// strategy? The tree-based strategies need the HyParView/Plumtree
    /// engine's membership state.
    pub fn is_cyclon(&self) -> bool {
        matches!(
            self,
            LookupStrategy::KRandomWalk | LookupStrategy::ExpandingRing
        )
    }
}

/// Knobs of the gossip membership layer and its two lookup strategies.
///
/// Defaults follow the unstructured-overlay literature: Cyclon-style
/// shuffles of half the view every few seconds, a couple of missed
/// shuffles before a peer is declared dead, and search parameters sized
/// so the paper-scale 1000-node runs succeed on a quiet network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Bound on each node's partial view (out-degree of the overlay).
    pub view_size: usize,
    /// Entries exchanged per shuffle (the initiator's includes itself).
    pub shuffle_len: usize,
    /// Period of each node's push-pull shuffle timer.
    pub gossip_period: SimDuration,
    /// How long the initiator waits for the pull half before counting a
    /// shuffle as failed.
    pub shuffle_timeout: SimDuration,
    /// Failed shuffles to the same peer before it is evicted from the
    /// view (SWIM-style suspicion: one miss marks, `suspicion_limit`
    /// misses kill).
    pub suspicion_limit: u32,
    /// Random walks launched per lookup ([`LookupStrategy::KRandomWalk`]).
    pub walkers: usize,
    /// Hop budget per walk, and the TTL cap of the expanding ring.
    pub ttl: u32,
    /// Which lookup strategy [`crate::GossipSim::issue_lookup`] uses.
    pub strategy: LookupStrategy,
    /// Random walks launched per insert (each deposits the pointer at
    /// every node it visits).
    pub replication_walkers: usize,
    /// Hop budget per insert walk.
    pub replication_ttl: u32,
    /// Pause between expanding-ring rounds (must cover a round's flood
    /// and reply latency).
    pub ring_round_gap: SimDuration,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            view_size: 8,
            shuffle_len: 4,
            gossip_period: SimDuration::from_secs(5),
            shuffle_timeout: SimDuration::from_secs(2),
            suspicion_limit: 2,
            walkers: 8,
            ttl: 16,
            strategy: LookupStrategy::KRandomWalk,
            replication_walkers: 3,
            replication_ttl: 5,
            ring_round_gap: SimDuration::from_secs(2),
        }
    }
}

impl GossipConfig {
    /// Sets the partial-view bound.
    pub fn with_view_size(mut self, view_size: usize) -> Self {
        self.view_size = view_size;
        // Keep the Cyclon invariant shuffle_len <= view_size without
        // forcing callers to set both knobs.
        self.shuffle_len = self.shuffle_len.min(view_size.max(1));
        self
    }

    /// Sets the number of walkers per lookup.
    pub fn with_walkers(mut self, walkers: usize) -> Self {
        self.walkers = walkers;
        self
    }

    /// Sets the walk/ring TTL.
    pub fn with_ttl(mut self, ttl: u32) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the lookup strategy.
    pub fn with_strategy(mut self, strategy: LookupStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Panics unless the configuration is internally consistent.
    ///
    /// # Panics
    ///
    /// Panics on a zero view, zero/oversized shuffle length, zero
    /// walkers/TTLs, or a non-positive period.
    pub fn assert_valid(&self) {
        assert!(
            self.strategy.is_cyclon(),
            "the cyclon engine supports k-walk and ring lookups; \
             use EpidemicConfig for {:?}",
            self.strategy
        );
        assert!(self.view_size >= 1, "view_size must be at least 1");
        assert!(
            (1..=self.view_size).contains(&self.shuffle_len),
            "shuffle_len must be in 1..=view_size"
        );
        assert!(self.gossip_period > SimDuration::ZERO, "gossip_period");
        assert!(self.shuffle_timeout > SimDuration::ZERO, "shuffle_timeout");
        assert!(self.suspicion_limit >= 1, "suspicion_limit");
        assert!(self.walkers >= 1, "walkers");
        assert!(self.ttl >= 1, "ttl");
        assert!(self.replication_walkers >= 1, "replication_walkers");
        assert!(self.replication_ttl >= 1, "replication_ttl");
        assert!(self.ring_round_gap > SimDuration::ZERO, "ring_round_gap");
    }
}

/// Knobs of the two-layer epidemic stack ([`crate::EpidemicSim`]):
/// HyParView membership plus Plumtree dissemination.
///
/// Defaults follow the HyParView/Plumtree papers scaled to the suite's
/// workloads: a small symmetric active view (the tree rides on it), a
/// passive view a few times larger (the healing reservoir), shuffles
/// sized so one exchange fits the inline payload buffer, and shallow
/// retried queries — announcements already planted the pointer nearly
/// everywhere, so lookups only need to reach one live holder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpidemicConfig {
    /// Bound on the active view (symmetric links; eager/lazy Plumtree
    /// peers are drawn from it).
    pub active_size: usize,
    /// Bound on the passive view (reactive-replacement candidates).
    pub passive_size: usize,
    /// Active-view entries included in a shuffle.
    pub shuffle_active: usize,
    /// Passive-view entries included in a shuffle.
    pub shuffle_passive: usize,
    /// Period of each node's shuffle/repair timer.
    pub gossip_period: SimDuration,
    /// How long a node waits for a shuffle or neighbor reply before
    /// counting the exchange as failed.
    pub exchange_timeout: SimDuration,
    /// Failed exchanges with the same active peer before it is evicted
    /// and reactively replaced from the passive view.
    pub suspicion_limit: u32,
    /// Active random-walk length of FORWARD-JOIN propagation.
    pub arwl: u32,
    /// Remaining FORWARD-JOIN TTL at which the joiner is also captured
    /// into passive views.
    pub prwl: u32,
    /// How long a node waits for the eager copy of an announcement it
    /// heard an IHAVE for before sending GRAFT (lazy tree repair).
    pub graft_timeout: SimDuration,
    /// Forward depth of one [`LookupStrategy::Plumtree`] query round.
    pub query_ttl: u32,
    /// Hop budget of one [`LookupStrategy::Foaf`] walk.
    pub foaf_ttl: u32,
    /// Fan-out per hop of a FOAF walk.
    pub foaf_fanout: usize,
    /// Pause between query retry rounds (covers one round trip).
    pub query_round_gap: SimDuration,
    /// Which lookup strategy [`crate::EpidemicSim::issue_lookup`] uses
    /// (must be [`LookupStrategy::Plumtree`] or [`LookupStrategy::Foaf`]).
    pub strategy: LookupStrategy,
}

impl Default for EpidemicConfig {
    fn default() -> Self {
        EpidemicConfig {
            active_size: 5,
            passive_size: 24,
            shuffle_active: 3,
            shuffle_passive: 3,
            gossip_period: SimDuration::from_secs(5),
            exchange_timeout: SimDuration::from_secs(2),
            suspicion_limit: 2,
            arwl: 5,
            prwl: 2,
            graft_timeout: SimDuration::from_millis(500),
            query_ttl: 2,
            foaf_ttl: 3,
            foaf_fanout: 3,
            query_round_gap: SimDuration::from_secs(2),
            strategy: LookupStrategy::Plumtree,
        }
    }
}

impl EpidemicConfig {
    /// Sets the active and passive view bounds, clamping the shuffle
    /// contributions to stay legal.
    pub fn with_views(mut self, active: usize, passive: usize) -> Self {
        self.active_size = active;
        self.passive_size = passive;
        self.shuffle_active = self.shuffle_active.min(active.max(1));
        self.shuffle_passive = self.shuffle_passive.min(passive.max(1));
        self
    }

    /// Sets the lookup strategy.
    pub fn with_strategy(mut self, strategy: LookupStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Panics unless the configuration is internally consistent.
    ///
    /// # Panics
    ///
    /// Panics on zero view bounds, oversized shuffle contributions,
    /// zero TTLs/timeouts, or a Cyclon-only lookup strategy.
    pub fn assert_valid(&self) {
        assert!(
            !self.strategy.is_cyclon(),
            "the epidemic engine supports plumtree and foaf lookups; \
             use GossipConfig for {:?}",
            self.strategy
        );
        assert!(self.active_size >= 1, "active_size must be at least 1");
        assert!(
            self.passive_size >= self.active_size,
            "passive_size must be at least active_size"
        );
        assert!(
            (1..=self.active_size).contains(&self.shuffle_active),
            "shuffle_active must be in 1..=active_size"
        );
        assert!(
            (1..=self.passive_size).contains(&self.shuffle_passive),
            "shuffle_passive must be in 1..=passive_size"
        );
        assert!(self.gossip_period > SimDuration::ZERO, "gossip_period");
        assert!(
            self.exchange_timeout > SimDuration::ZERO,
            "exchange_timeout"
        );
        assert!(self.suspicion_limit >= 1, "suspicion_limit");
        assert!(self.arwl >= 1, "arwl");
        assert!(self.prwl <= self.arwl, "prwl must not exceed arwl");
        assert!(self.graft_timeout > SimDuration::ZERO, "graft_timeout");
        assert!(self.query_ttl >= 1, "query_ttl");
        assert!(self.foaf_ttl >= 1, "foaf_ttl");
        assert!(self.foaf_fanout >= 1, "foaf_fanout");
        assert!(self.query_round_gap > SimDuration::ZERO, "query_round_gap");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        GossipConfig::default().assert_valid();
    }

    #[test]
    fn epidemic_defaults_are_valid() {
        EpidemicConfig::default().assert_valid();
        EpidemicConfig::default()
            .with_strategy(LookupStrategy::Foaf)
            .assert_valid();
    }

    #[test]
    fn epidemic_shuffle_exchange_fits_the_inline_payload() {
        // self + shuffle_active + shuffle_passive must not spill the
        // pooled payload buffer in the steady state.
        let c = EpidemicConfig::default();
        assert!(1 + c.shuffle_active + c.shuffle_passive <= mpil_sim::PAYLOAD_INLINE);
    }

    #[test]
    #[should_panic(expected = "cyclon engine supports")]
    fn cyclon_config_rejects_tree_strategies() {
        GossipConfig::default()
            .with_strategy(LookupStrategy::Plumtree)
            .assert_valid();
    }

    #[test]
    #[should_panic(expected = "epidemic engine supports")]
    fn epidemic_config_rejects_cyclon_strategies() {
        EpidemicConfig::default()
            .with_strategy(LookupStrategy::ExpandingRing)
            .assert_valid();
    }

    #[test]
    fn with_views_keeps_shuffle_contributions_legal() {
        let c = EpidemicConfig::default().with_views(2, 4);
        c.assert_valid();
        assert_eq!(c.active_size, 2);
        assert!(c.shuffle_active <= 2);
    }

    #[test]
    fn with_view_size_keeps_shuffle_len_legal() {
        let c = GossipConfig::default().with_view_size(2);
        c.assert_valid();
        assert_eq!(c.view_size, 2);
        assert!(c.shuffle_len <= 2);
    }

    #[test]
    #[should_panic(expected = "view_size")]
    fn zero_view_is_rejected() {
        let c = GossipConfig {
            view_size: 0,
            shuffle_len: 0,
            ..GossipConfig::default()
        };
        c.assert_valid();
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(LookupStrategy::KRandomWalk.label(), "k-walk");
        assert_eq!(LookupStrategy::ExpandingRing.label(), "ring");
        assert_eq!(LookupStrategy::Plumtree.label(), "plumtree");
        assert_eq!(LookupStrategy::Foaf.label(), "foaf");
        assert!(LookupStrategy::KRandomWalk.is_cyclon());
        assert!(!LookupStrategy::Foaf.is_cyclon());
    }
}
