//! # mpil-alloc
//!
//! A counting wrapper around the system allocator, used to *enforce*
//! (not just claim) the allocation-free steady state of the simulation
//! message plane: `scale_run` reports allocations per event, and the
//! conformance suite asserts that a warmed-up gossip shuffle round
//! performs ~zero heap allocations.
//!
//! Install it as the global allocator in a binary or test target:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mpil_alloc::CountingAlloc = mpil_alloc::CountingAlloc;
//! ```
//!
//! then bracket the region of interest with [`snapshot`] and diff the
//! two snapshots with [`AllocSnapshot::since`]. The counters are
//! process-global relaxed atomics: cheap enough to leave on for whole
//! benchmark runs, and exact in single-threaded sections (which is what
//! the deterministic simulators are). If the allocator is *not*
//! installed, the counters simply stay at zero.
//!
//! This is the one crate in the workspace that needs `unsafe`: the
//! [`GlobalAlloc`] trait is unsafe by definition. The implementation
//! adds nothing but counter bumps around `std::alloc::System`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// The counting allocator. Delegates every operation to
/// [`std::alloc::System`], bumping process-global counters on the way
/// through. `realloc` counts as one allocation event (it may move the
/// block) plus the grown byte delta.
pub struct CountingAlloc;

// SAFETY: every method delegates directly to `System`, which upholds
// the `GlobalAlloc` contract; the counter bumps touch nothing else.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: the caller upholds `layout`'s validity per the trait
        // contract; we forward it untouched.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: as in `alloc`.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` come from a prior alloc through this
        // allocator, which delegated to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        // SAFETY: as in `dealloc`; `new_size` obeys the trait contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// A point-in-time reading of the global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events (`alloc`, `alloc_zeroed`, `realloc`) so far.
    pub allocs: u64,
    /// Deallocation events so far.
    pub deallocs: u64,
    /// Bytes requested by allocation events so far (growth only for
    /// `realloc`).
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter deltas accumulated since `earlier` (saturating, so a
    /// stale pair never underflows).
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            deallocs: self.deallocs.saturating_sub(earlier.deallocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Reads the global counters. All zeros unless [`CountingAlloc`] is
/// installed as the `#[global_allocator]` of the running binary.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the counters
    // stay flat; install-side behavior is covered by the scale_run
    // binary and the harness alloc_free conformance test.
    #[test]
    fn snapshots_diff_cleanly() {
        let a = AllocSnapshot {
            allocs: 10,
            deallocs: 4,
            bytes: 1024,
        };
        let b = AllocSnapshot {
            allocs: 25,
            deallocs: 9,
            bytes: 2048,
        };
        assert_eq!(
            b.since(a),
            AllocSnapshot {
                allocs: 15,
                deallocs: 5,
                bytes: 1024
            }
        );
        assert_eq!(a.since(b), AllocSnapshot::default(), "saturates, not wraps");
    }

    #[test]
    fn uninstalled_counters_are_stable() {
        let before = snapshot();
        let v: Vec<u64> = (0..64).collect();
        std::hint::black_box(&v);
        drop(v);
        let after = snapshot();
        assert_eq!(after.since(before), AllocSnapshot::default());
    }
}
