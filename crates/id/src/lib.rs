//! # mpil-id
//!
//! The 160-bit identifier space used throughout the MPIL reproduction, plus
//! the routing metrics the paper discusses (Section 4.1–4.2):
//!
//! * the **MPIL common-digit metric** — the number of digit positions (in
//!   base `2^b`) at which two IDs agree, equivalently the number of zero
//!   digits of their XOR;
//! * **prefix** and **suffix** match lengths (Pastry/Tapestry-style);
//! * the **Kademlia XOR distance**;
//! * **numeric ring distance** (Chord/Pastry leaf-set style).
//!
//! IDs are 160 bits, matching the paper ("we use random numbers picked from
//! 160-bit ID space"). The digit width `b` is configurable through
//! [`IdSpace`]; the paper's static-overlay experiments use base-4 (`b = 2`,
//! 80 digits) and the MSPastry comparison uses base-16 (`b = 4`, 40 digits).
//!
//! ```
//! use mpil_id::{Id, IdSpace};
//!
//! let space = IdSpace::base4();
//! let a = Id::from_low_u64(0b1001);
//! let b = Id::from_low_u64(0b1011);
//! // 160 bits = 80 base-4 digits; the two IDs differ in exactly one digit.
//! assert_eq!(space.common_digits(a, b), 79);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod id;
mod map;
mod metric;
mod num;
mod space;

pub use id::{Id, ParseIdError, ID_BITS, ID_BYTES};
pub use map::{IdMap, IdSet};
pub use metric::{common_digits, prefix_match_digits, suffix_match_digits, xor_distance};
pub use num::{numeric_distance, ring_distance, wrapping_add, wrapping_sub};
pub use space::{DigitBits, IdSpace, InvalidDigitBits};
