//! 160-bit modular arithmetic on [`Id`]s.
//!
//! Pastry's leaf set and "numerically closest" tests treat IDs as unsigned
//! integers on a ring of size 2^160. We represent an ID for arithmetic as
//! a `(u32, u128)` pair (high 32 bits, low 128 bits).

use crate::id::{Id, ID_BYTES};

fn split(id: Id) -> (u32, u128) {
    let b = id.to_bytes();
    let hi = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
    let mut lo_bytes = [0u8; 16];
    lo_bytes.copy_from_slice(&b[4..]);
    (hi, u128::from_be_bytes(lo_bytes))
}

fn join(hi: u32, lo: u128) -> Id {
    let mut out = [0u8; ID_BYTES];
    out[..4].copy_from_slice(&hi.to_be_bytes());
    out[4..].copy_from_slice(&lo.to_be_bytes());
    Id::from_bytes(out)
}

/// `a + b` modulo 2^160.
pub fn wrapping_add(a: Id, b: Id) -> Id {
    let (ah, al) = split(a);
    let (bh, bl) = split(b);
    let (lo, carry) = al.overflowing_add(bl);
    let hi = ah.wrapping_add(bh).wrapping_add(u32::from(carry));
    join(hi, lo)
}

/// `a - b` modulo 2^160.
pub fn wrapping_sub(a: Id, b: Id) -> Id {
    let (ah, al) = split(a);
    let (bh, bl) = split(b);
    let (lo, borrow) = al.overflowing_sub(bl);
    let hi = ah.wrapping_sub(bh).wrapping_sub(u32::from(borrow));
    join(hi, lo)
}

/// Absolute numeric distance `|a - b|` (no wraparound).
pub fn numeric_distance(a: Id, b: Id) -> Id {
    if a >= b {
        wrapping_sub(a, b)
    } else {
        wrapping_sub(b, a)
    }
}

/// Ring distance: `min(a - b mod 2^160, b - a mod 2^160)`.
///
/// This is the metric Pastry uses to decide which leaf-set member is
/// numerically closest to a key.
pub fn ring_distance(a: Id, b: Id) -> Id {
    let d1 = wrapping_sub(a, b);
    let d2 = wrapping_sub(b, a);
    if d1 <= d2 {
        d1
    } else {
        d2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn add_and_sub_small_values() {
        let a = Id::from_low_u64(100);
        let b = Id::from_low_u64(42);
        assert_eq!(wrapping_add(a, b), Id::from_low_u64(142));
        assert_eq!(wrapping_sub(a, b), Id::from_low_u64(58));
    }

    #[test]
    fn sub_wraps_around() {
        let a = Id::from_low_u64(1);
        let b = Id::from_low_u64(2);
        // 1 - 2 mod 2^160 = 2^160 - 1 = MAX.
        assert_eq!(wrapping_sub(a, b), Id::MAX);
        assert_eq!(wrapping_add(Id::MAX, Id::from_low_u64(1)), Id::ZERO);
    }

    #[test]
    fn carry_propagates_across_the_128_bit_boundary() {
        // lo = all ones, +1 must carry into the high 32 bits.
        let mut bytes = [0xffu8; ID_BYTES];
        bytes[..4].copy_from_slice(&[0, 0, 0, 0]);
        let a = Id::from_bytes(bytes);
        let one = Id::from_low_u64(1);
        let sum = wrapping_add(a, one);
        let sb = sum.to_bytes();
        assert_eq!(&sb[..4], &[0, 0, 0, 1]);
        assert!(sb[4..].iter().all(|&x| x == 0));
    }

    #[test]
    fn numeric_distance_is_symmetric() {
        let a = Id::from_low_u64(7);
        let b = Id::from_low_u64(19);
        assert_eq!(numeric_distance(a, b), numeric_distance(b, a));
        assert_eq!(numeric_distance(a, b), Id::from_low_u64(12));
        assert_eq!(numeric_distance(a, a), Id::ZERO);
    }

    #[test]
    fn ring_distance_takes_the_short_way() {
        // ZERO and MAX are adjacent on the ring.
        assert_eq!(ring_distance(Id::ZERO, Id::MAX), Id::from_low_u64(1));
        let a = Id::from_low_u64(10);
        let b = Id::from_low_u64(20);
        assert_eq!(ring_distance(a, b), Id::from_low_u64(10));
    }

    #[test]
    fn random_add_sub_round_trip() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            let a = Id::random(&mut rng);
            let b = Id::random(&mut rng);
            assert_eq!(wrapping_sub(wrapping_add(a, b), b), a);
            assert_eq!(wrapping_add(wrapping_sub(a, b), b), a);
        }
    }
}
