//! [`IdSpace`]: the digit-width configuration of the 160-bit key space.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::id::{Id, ID_BITS};
use crate::metric;

/// Digit width in bits (the `b` of a base-2^b representation).
///
/// The paper analyses base-4 (`b = 2`) for MPIL's static-overlay study and
/// uses base-16 (`b = 4`) for the MSPastry comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum DigitBits {
    /// Binary digits (base 2).
    B1 = 1,
    /// Base-4 digits — the paper's default for MPIL.
    B2 = 2,
    /// Base-16 digits — Pastry's default (`b = 4`).
    B4 = 4,
    /// Byte digits (base 256).
    B8 = 8,
}

impl DigitBits {
    /// The width in bits.
    pub const fn bits(self) -> u8 {
        self as u8
    }

    /// Number of distinct digit values, `2^b`.
    pub const fn radix(self) -> u16 {
        1 << (self as u8)
    }
}

/// Error returned by [`IdSpace::new`] for an unsupported digit width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidDigitBits(pub u8);

impl fmt::Display for InvalidDigitBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "digit width must be 1, 2, 4 or 8 bits, got {}", self.0)
    }
}

impl std::error::Error for InvalidDigitBits {}

/// The 160-bit identifier space viewed as `M` digits of width `b` bits.
///
/// Bundles the digit width with the metric functions so that call sites
/// can't mix widths by accident.
///
/// ```
/// use mpil_id::{Id, IdSpace};
/// let space = IdSpace::base16();
/// assert_eq!(space.num_digits(), 40);
/// let a = Id::from_low_u64(0xa0);
/// let b = Id::from_low_u64(0xb0);
/// assert_eq!(space.common_digits(a, b), 39);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IdSpace {
    digit_bits: DigitBits,
}

impl IdSpace {
    /// Creates a space with the given digit width.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDigitBits`] if `bits` is not 1, 2, 4 or 8.
    pub fn new(bits: u8) -> Result<Self, InvalidDigitBits> {
        let digit_bits = match bits {
            1 => DigitBits::B1,
            2 => DigitBits::B2,
            4 => DigitBits::B4,
            8 => DigitBits::B8,
            other => return Err(InvalidDigitBits(other)),
        };
        Ok(IdSpace { digit_bits })
    }

    /// Binary digit space (160 digits).
    pub const fn base2() -> Self {
        IdSpace {
            digit_bits: DigitBits::B1,
        }
    }

    /// Base-4 digit space (80 digits) — the paper's MPIL default.
    pub const fn base4() -> Self {
        IdSpace {
            digit_bits: DigitBits::B2,
        }
    }

    /// Base-16 digit space (40 digits) — Pastry's default.
    pub const fn base16() -> Self {
        IdSpace {
            digit_bits: DigitBits::B4,
        }
    }

    /// The digit width.
    pub const fn digit_bits(self) -> DigitBits {
        self.digit_bits
    }

    /// Number of digits `M = 160 / b`.
    pub const fn num_digits(self) -> u32 {
        (ID_BITS as u32) / (self.digit_bits as u8 as u32)
    }

    /// The MPIL common-digit metric in this space. Higher is closer.
    pub fn common_digits(self, a: Id, b: Id) -> u32 {
        metric::common_digits(a, b, self.digit_bits.bits())
    }

    /// Shared-prefix length in digits (Pastry's metric).
    pub fn prefix_match(self, a: Id, b: Id) -> u32 {
        metric::prefix_match_digits(a, b, self.digit_bits.bits())
    }

    /// Shared-suffix length in digits (Tapestry's metric).
    pub fn suffix_match(self, a: Id, b: Id) -> u32 {
        metric::suffix_match_digits(a, b, self.digit_bits.bits())
    }

    /// Extracts digit `i` (0 = most significant) of `id`.
    pub fn digit(self, id: Id, i: usize) -> u8 {
        id.digit(i, self.digit_bits.bits())
    }

    /// Draws a uniformly random ID.
    pub fn random_id<R: Rng + ?Sized>(self, rng: &mut R) -> Id {
        Id::random(rng)
    }
}

impl Default for IdSpace {
    /// Defaults to base-4, the paper's MPIL configuration.
    fn default() -> Self {
        IdSpace::base4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_digit_counts() {
        assert_eq!(IdSpace::base2().num_digits(), 160);
        assert_eq!(IdSpace::base4().num_digits(), 80);
        assert_eq!(IdSpace::base16().num_digits(), 40);
        assert_eq!(IdSpace::new(8).unwrap().num_digits(), 20);
        assert!(IdSpace::new(3).is_err());
        assert!(IdSpace::new(0).is_err());
    }

    #[test]
    fn radix_matches_width() {
        assert_eq!(DigitBits::B1.radix(), 2);
        assert_eq!(DigitBits::B2.radix(), 4);
        assert_eq!(DigitBits::B4.radix(), 16);
        assert_eq!(DigitBits::B8.radix(), 256);
    }

    #[test]
    fn metric_dispatch_matches_free_functions() {
        let a = Id::from_low_u64(0x1234);
        let b = Id::from_low_u64(0x1235);
        let s = IdSpace::base4();
        assert_eq!(s.common_digits(a, b), metric::common_digits(a, b, 2));
        assert_eq!(s.prefix_match(a, b), metric::prefix_match_digits(a, b, 2));
        assert_eq!(s.suffix_match(a, b), metric::suffix_match_digits(a, b, 2));
    }

    #[test]
    fn default_is_base4() {
        assert_eq!(IdSpace::default(), IdSpace::base4());
    }

    #[test]
    fn error_displays_width() {
        let err = IdSpace::new(5).unwrap_err();
        assert!(err.to_string().contains('5'));
    }
}
