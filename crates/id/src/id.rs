//! The [`Id`] type: a 160-bit identifier.

use std::fmt;
use std::str::FromStr;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of bits in an identifier.
pub const ID_BITS: usize = 160;
/// Number of bytes in an identifier.
pub const ID_BYTES: usize = ID_BITS / 8;

/// A 160-bit identifier in the MPIL/Pastry key space.
///
/// Stored big-endian: byte 0 holds the most significant bits. The derived
/// `Ord` therefore orders IDs as 160-bit unsigned integers, which is what
/// Pastry's leaf set and numeric-closeness tests require.
///
/// ```
/// use mpil_id::Id;
/// let a = Id::from_low_u64(5);
/// let b = Id::from_low_u64(9);
/// assert!(a < b);
/// assert_eq!((a ^ b), Id::from_low_u64(12));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Id(pub(crate) [u8; ID_BYTES]);

impl Id {
    /// The all-zero identifier.
    pub const ZERO: Id = Id([0u8; ID_BYTES]);
    /// The all-one identifier (the largest key).
    pub const MAX: Id = Id([0xffu8; ID_BYTES]);

    /// Creates an identifier from its big-endian byte representation.
    pub const fn from_bytes(bytes: [u8; ID_BYTES]) -> Self {
        Id(bytes)
    }

    /// Returns the big-endian byte representation.
    pub const fn to_bytes(self) -> [u8; ID_BYTES] {
        self.0
    }

    /// Borrows the big-endian bytes.
    pub fn as_bytes(&self) -> &[u8; ID_BYTES] {
        &self.0
    }

    /// Creates an identifier whose low 64 bits are `v` and whose remaining
    /// bits are zero. Handy for tests and doc examples.
    pub const fn from_low_u64(v: u64) -> Self {
        let mut b = [0u8; ID_BYTES];
        let vb = v.to_be_bytes();
        let mut i = 0;
        while i < 8 {
            b[ID_BYTES - 8 + i] = vb[i];
            i += 1;
        }
        Id(b)
    }

    /// Draws a uniformly random identifier from the full 160-bit space.
    ///
    /// All randomness in the reproduction flows through caller-provided
    /// seeded RNGs so that experiments are reproducible.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut b = [0u8; ID_BYTES];
        rng.fill(&mut b[..]);
        Id(b)
    }

    /// Returns the bit at position `i` counting from the most significant
    /// bit (bit 0 is the MSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 160`.
    pub fn bit(&self, i: usize) -> u8 {
        assert!(i < ID_BITS, "bit index {i} out of range");
        (self.0[i / 8] >> (7 - (i % 8))) & 1
    }

    /// Returns the `i`-th digit of width `bits` counting from the most
    /// significant digit. `bits` must divide 8 or be 8 (i.e. 1, 2, 4, 8).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not one of 1, 2, 4, 8 or if the digit index is
    /// out of range.
    pub fn digit(&self, i: usize, bits: u8) -> u8 {
        assert!(
            matches!(bits, 1 | 2 | 4 | 8),
            "unsupported digit width {bits}"
        );
        let per_byte = (8 / bits) as usize;
        let n_digits = ID_BYTES * per_byte;
        assert!(
            i < n_digits,
            "digit index {i} out of range for width {bits}"
        );
        let byte = self.0[i / per_byte];
        let within = i % per_byte;
        let shift = 8 - bits as usize * (within + 1);
        (byte >> shift) & ((1u16 << bits) - 1) as u8
    }

    /// Returns a copy of this identifier with digit `i` (width `bits`) set
    /// to `value`.
    ///
    /// # Panics
    ///
    /// Panics on an unsupported width, out-of-range index, or a `value`
    /// that does not fit in `bits` bits.
    pub fn with_digit(mut self, i: usize, bits: u8, value: u8) -> Self {
        assert!(
            matches!(bits, 1 | 2 | 4 | 8),
            "unsupported digit width {bits}"
        );
        assert!(
            u32::from(value) < (1u32 << bits),
            "digit value {value} too wide"
        );
        let per_byte = (8 / bits) as usize;
        let n_digits = ID_BYTES * per_byte;
        assert!(
            i < n_digits,
            "digit index {i} out of range for width {bits}"
        );
        let within = i % per_byte;
        let shift = 8 - bits as usize * (within + 1);
        let mask = (((1u16 << bits) - 1) as u8) << shift;
        let byte = &mut self.0[i / per_byte];
        *byte = (*byte & !mask) | (value << shift);
        self
    }

    /// Counts leading zero bits.
    pub fn leading_zeros(&self) -> u32 {
        let mut total = 0;
        for b in self.0 {
            if b == 0 {
                total += 8;
            } else {
                total += b.leading_zeros();
                break;
            }
        }
        total
    }

    /// Returns `true` if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }
}

impl std::ops::BitXor for Id {
    type Output = Id;

    fn bitxor(self, rhs: Id) -> Id {
        let mut out = [0u8; ID_BYTES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a ^ b;
        }
        Id(out)
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({self})")
    }
}

impl fmt::Display for Id {
    /// Renders the identifier as 40 lowercase hex digits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::LowerHex for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing an [`Id`] from a hex string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIdError {
    kind: ParseIdErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseIdErrorKind {
    Length(usize),
    Digit(char),
}

impl fmt::Display for ParseIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseIdErrorKind::Length(n) => {
                write!(f, "expected 40 hex digits, found {n}")
            }
            ParseIdErrorKind::Digit(c) => write!(f, "invalid hex digit {c:?}"),
        }
    }
}

impl std::error::Error for ParseIdError {}

impl FromStr for Id {
    type Err = ParseIdError;

    /// Parses 40 hex digits (with an optional `0x` prefix) into an [`Id`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseIdError`] if the string is not exactly 40 hex digits.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.len() != ID_BYTES * 2 {
            return Err(ParseIdError {
                kind: ParseIdErrorKind::Length(s.len()),
            });
        }
        let mut out = [0u8; ID_BYTES];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = hex_val(chunk[0] as char)?;
            let lo = hex_val(chunk[1] as char)?;
            out[i] = (hi << 4) | lo;
        }
        Ok(Id(out))
    }
}

fn hex_val(c: char) -> Result<u8, ParseIdError> {
    c.to_digit(16).map(|d| d as u8).ok_or(ParseIdError {
        kind: ParseIdErrorKind::Digit(c),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn from_low_u64_round_trip() {
        let id = Id::from_low_u64(0xdead_beef);
        let bytes = id.to_bytes();
        assert_eq!(&bytes[..16], &[0u8; 16]);
        assert_eq!(&bytes[16..], &0xdead_beefu32.to_be_bytes());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Id::from_low_u64(1) < Id::from_low_u64(2));
        assert!(Id::ZERO < Id::MAX);
        let mut high = [0u8; ID_BYTES];
        high[0] = 1;
        assert!(Id::from_bytes(high) > Id::from_low_u64(u64::MAX));
    }

    #[test]
    fn bit_extraction_msb_first() {
        let mut b = [0u8; ID_BYTES];
        b[0] = 0b1010_0000;
        let id = Id::from_bytes(b);
        assert_eq!(id.bit(0), 1);
        assert_eq!(id.bit(1), 0);
        assert_eq!(id.bit(2), 1);
        assert_eq!(id.bit(3), 0);
    }

    #[test]
    fn digit_extraction_base4() {
        let mut b = [0u8; ID_BYTES];
        b[0] = 0b11_01_00_10;
        let id = Id::from_bytes(b);
        assert_eq!(id.digit(0, 2), 0b11);
        assert_eq!(id.digit(1, 2), 0b01);
        assert_eq!(id.digit(2, 2), 0b00);
        assert_eq!(id.digit(3, 2), 0b10);
    }

    #[test]
    fn digit_extraction_base16() {
        let mut b = [0u8; ID_BYTES];
        b[0] = 0xab;
        b[19] = 0xcd;
        let id = Id::from_bytes(b);
        assert_eq!(id.digit(0, 4), 0xa);
        assert_eq!(id.digit(1, 4), 0xb);
        assert_eq!(id.digit(38, 4), 0xc);
        assert_eq!(id.digit(39, 4), 0xd);
    }

    #[test]
    fn with_digit_sets_and_preserves() {
        let id = Id::ZERO.with_digit(3, 4, 0x7).with_digit(0, 4, 0x2);
        assert_eq!(id.digit(0, 4), 0x2);
        assert_eq!(id.digit(3, 4), 0x7);
        assert_eq!(id.digit(1, 4), 0);
        assert_eq!(id.digit(2, 4), 0);
    }

    #[test]
    fn xor_is_bitwise() {
        let a = Id::from_low_u64(0b1100);
        let b = Id::from_low_u64(0b1010);
        assert_eq!(a ^ b, Id::from_low_u64(0b0110));
        assert_eq!(a ^ a, Id::ZERO);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            let id = Id::random(&mut rng);
            let s = id.to_string();
            assert_eq!(s.len(), 40);
            assert_eq!(s.parse::<Id>().unwrap(), id);
        }
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("zz".parse::<Id>().is_err());
        assert!("12345".parse::<Id>().is_err());
        let bad = "g".repeat(40);
        assert!(bad.parse::<Id>().is_err());
    }

    #[test]
    fn leading_zeros_counts() {
        assert_eq!(Id::ZERO.leading_zeros(), 160);
        assert_eq!(Id::MAX.leading_zeros(), 0);
        assert_eq!(Id::from_low_u64(1).leading_zeros(), 159);
    }

    #[test]
    fn random_ids_differ() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = Id::random(&mut rng);
        let b = Id::random(&mut rng);
        assert_ne!(a, b);
    }
}
