//! Routing metrics over [`Id`]s.
//!
//! The MPIL metric (Section 4.1 of the paper) counts the digits two IDs
//! share *at the same positions* — the number of zero digits of their XOR.
//! For contrast we also provide prefix/suffix match lengths (what Pastry
//! and Tapestry route on) and the Kademlia XOR distance; Section 4.2 argues
//! the common-digit metric distinguishes neighbors far better than prefix
//! matching on arbitrary overlays, and the ablation benches quantify that.

use crate::id::{Id, ID_BYTES};

/// Counts digits (width `digit_bits`) equal at the same positions.
///
/// This is the MPIL routing metric. A higher value means "closer".
///
/// ```
/// use mpil_id::{common_digits, Id};
/// // 1001 vs 1011 in base-2: bits differ only at one position.
/// let a = Id::from_low_u64(0b1001);
/// let b = Id::from_low_u64(0b1011);
/// assert_eq!(common_digits(a, b, 1), 159);
/// ```
///
/// # Panics
///
/// Panics if `digit_bits` is not one of 1, 2, 4, 8.
pub fn common_digits(a: Id, b: Id, digit_bits: u8) -> u32 {
    let x = a ^ b;
    let bytes = x.to_bytes();
    match digit_bits {
        1 => {
            // Zero bits of the XOR.
            let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
            (ID_BYTES as u32) * 8 - ones
        }
        2 => {
            let mut zero_digits = 0;
            for byte in bytes {
                // A base-4 digit is zero iff both its bits are zero.
                let pairs = [byte >> 6, (byte >> 4) & 3, (byte >> 2) & 3, byte & 3];
                zero_digits += pairs.iter().filter(|&&d| d == 0).count() as u32;
            }
            zero_digits
        }
        4 => {
            let mut zero_digits = 0;
            for byte in bytes {
                if byte >> 4 == 0 {
                    zero_digits += 1;
                }
                if byte & 0x0f == 0 {
                    zero_digits += 1;
                }
            }
            zero_digits
        }
        8 => bytes.iter().filter(|&&b| b == 0).count() as u32,
        other => panic!("unsupported digit width {other}"),
    }
}

/// Length of the shared prefix, in digits of width `digit_bits`.
///
/// This is what Pastry's prefix routing uses (with `digit_bits = 4` for its
/// default `b = 4` configuration).
///
/// # Panics
///
/// Panics if `digit_bits` is not one of 1, 2, 4, 8.
pub fn prefix_match_digits(a: Id, b: Id, digit_bits: u8) -> u32 {
    assert!(
        matches!(digit_bits, 1 | 2 | 4 | 8),
        "unsupported digit width"
    );
    let x = a ^ b;
    let lz = x.leading_zeros();
    lz / u32::from(digit_bits)
}

/// Length of the shared suffix, in digits of width `digit_bits`.
///
/// Tapestry-style routing matches suffixes; included for the metric
/// ablation experiments.
///
/// # Panics
///
/// Panics if `digit_bits` is not one of 1, 2, 4, 8.
pub fn suffix_match_digits(a: Id, b: Id, digit_bits: u8) -> u32 {
    assert!(
        matches!(digit_bits, 1 | 2 | 4 | 8),
        "unsupported digit width"
    );
    let x = a ^ b;
    let bytes = x.to_bytes();
    let mut tz: u32 = 0;
    for byte in bytes.iter().rev() {
        if *byte == 0 {
            tz += 8;
        } else {
            tz += byte.trailing_zeros();
            break;
        }
    }
    tz / u32::from(digit_bits)
}

/// The Kademlia XOR distance between two IDs (lower is closer).
///
/// Returned as an [`Id`] whose numeric (big-endian) ordering is the
/// distance ordering.
pub fn xor_distance(a: Id, b: Id) -> Id {
    a ^ b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_base2() {
        // Fig. 3: 1001 vs 1011 in a 4-bit space has metric 3. Our space is
        // 160-bit, so the other 156 bits also match: 159 total.
        let a = Id::from_low_u64(0b1001);
        let b = Id::from_low_u64(0b1011);
        assert_eq!(common_digits(a, b, 1), 159);
        // 1001 vs 0010: bits differ at positions 0,1,2... 1001^0010=1011,
        // three ones -> 157 zero bits.
        let c = Id::from_low_u64(0b0010);
        assert_eq!(common_digits(a, c, 1), 157);
    }

    #[test]
    fn identical_ids_match_everywhere() {
        let a = Id::from_low_u64(0xabcdef);
        assert_eq!(common_digits(a, a, 1), 160);
        assert_eq!(common_digits(a, a, 2), 80);
        assert_eq!(common_digits(a, a, 4), 40);
        assert_eq!(common_digits(a, a, 8), 20);
    }

    #[test]
    fn complement_ids_match_nowhere() {
        let a = Id::ZERO;
        let b = Id::MAX;
        assert_eq!(common_digits(a, b, 1), 0);
        assert_eq!(common_digits(a, b, 2), 0);
        assert_eq!(common_digits(a, b, 4), 0);
        assert_eq!(common_digits(a, b, 8), 0);
    }

    #[test]
    fn base4_counts_digit_pairs() {
        // XOR = ...0001: one base-4 digit differs.
        let a = Id::from_low_u64(0);
        let b = Id::from_low_u64(1);
        assert_eq!(common_digits(a, b, 2), 79);
        // XOR = ...0101: two base-4 digits differ.
        let c = Id::from_low_u64(0b0101);
        assert_eq!(common_digits(a, c, 2), 78);
        // XOR = ...1100_0000: one base-4 digit (the 4th from the end).
        let d = Id::from_low_u64(0b1100_0000);
        assert_eq!(common_digits(a, d, 2), 79);
    }

    #[test]
    fn base16_counts_nibbles() {
        let a = Id::from_low_u64(0);
        let b = Id::from_low_u64(0x10);
        assert_eq!(common_digits(a, b, 4), 39);
        let c = Id::from_low_u64(0x11);
        assert_eq!(common_digits(a, c, 4), 38);
    }

    #[test]
    fn prefix_match_counts_leading_digits() {
        let a = Id::ZERO;
        let b = Id::from_low_u64(1); // first 159 bits match
        assert_eq!(prefix_match_digits(a, b, 1), 159);
        assert_eq!(prefix_match_digits(a, b, 2), 79);
        assert_eq!(prefix_match_digits(a, b, 4), 39);
        let mut high = [0u8; ID_BYTES];
        high[0] = 0x80;
        let c = Id::from_bytes(high);
        assert_eq!(prefix_match_digits(a, c, 1), 0);
        assert_eq!(prefix_match_digits(a, c, 4), 0);
        assert_eq!(prefix_match_digits(a, a, 4), 40);
    }

    #[test]
    fn suffix_match_counts_trailing_digits() {
        let a = Id::ZERO;
        let mut high = [0u8; ID_BYTES];
        high[0] = 0x80;
        let c = Id::from_bytes(high);
        assert_eq!(suffix_match_digits(a, c, 1), 159);
        assert_eq!(suffix_match_digits(a, c, 4), 39);
        let b = Id::from_low_u64(1);
        assert_eq!(suffix_match_digits(a, b, 1), 0);
        assert_eq!(suffix_match_digits(a, a, 2), 80);
    }

    #[test]
    fn xor_distance_orders_like_kademlia() {
        let target = Id::from_low_u64(8);
        let near = Id::from_low_u64(9); // d = 1
        let far = Id::from_low_u64(0); // d = 8
        assert!(xor_distance(target, near) < xor_distance(target, far));
    }

    #[test]
    fn common_digit_sum_consistency_across_bases() {
        // A base-16 match implies two base-4 matches and four base-2
        // matches at those positions; so counts are monotone when scaled.
        let a = Id::from_low_u64(0x00ff_13a7);
        let b = Id::from_low_u64(0x00f0_03a7);
        let c1 = common_digits(a, b, 1);
        let c2 = common_digits(a, b, 2);
        let c4 = common_digits(a, b, 4);
        assert!(c1 >= 2 * c2);
        assert!(c2 >= 2 * c4);
    }
}
