//! [`IdMap`]/[`IdSet`]: open-addressed tables keyed by [`Id`].
//!
//! Simulation engines keep one small object store per node —
//! `Vec<HashMap<Id, _>>` at a million nodes means a million SipHash
//! states and heap-heavy bucket arrays dominating the profile. These
//! tables exploit what the workspace knows about its keys: every [`Id`]
//! is (a hash of) a uniformly random 160-bit value, so **the id is its
//! own hash**. Lookups mix the low 64 bits with one multiply and probe
//! linearly through a flat power-of-two slot array: no hasher state, no
//! per-entry allocation, cache-line-friendly collisions.
//!
//! Determinism: layout and iteration order are pure functions of the
//! insertion/removal history (tombstone-free backward-shift deletion),
//! so seeded experiments reproduce exactly — unlike `RandomState` maps,
//! which may not even iterate the same way twice in one process.
//!
//! An empty map allocates nothing: the per-node `Vec<IdMap<_>>` pattern
//! stays cheap for the (common) nodes that never store an object.

use crate::id::Id;

/// Fibonacci-style mixer (the 64-bit golden-ratio constant); ids are
/// already uniform, the multiply just spreads the low bits into the
/// high bits the index mask uses.
const MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Initial slot count on first insert (power of two).
const INITIAL_SLOTS: usize = 8;

#[inline]
fn slot_hash(id: &Id) -> u64 {
    let bytes = id.as_bytes();
    let mut low = [0u8; 8];
    low.copy_from_slice(&bytes[12..20]);
    u64::from_le_bytes(low).wrapping_mul(MIX)
}

/// An open-addressed `Id -> V` map (see the module docs).
#[derive(Debug, Clone)]
pub struct IdMap<V> {
    /// Power-of-two slot array; `None` is an empty slot.
    slots: Vec<Option<(Id, V)>>,
    len: usize,
}

impl<V> Default for IdMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> IdMap<V> {
    /// An empty map. Allocates on first insert, not here.
    pub fn new() -> Self {
        IdMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// An empty map pre-sized for `n` entries without rehashing.
    pub fn with_capacity(n: usize) -> Self {
        let mut m = Self::new();
        if n > 0 {
            m.slots = Self::empty_slots((n * 4 / 3 + 1).next_power_of_two().max(INITIAL_SLOTS));
        }
        m
    }

    fn empty_slots(count: usize) -> Vec<Option<(Id, V)>> {
        let mut v = Vec::with_capacity(count);
        v.resize_with(count, || None);
        v
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    #[inline]
    fn start_slot(&self, id: &Id) -> usize {
        // High bits of the mixed hash, folded onto the table size.
        (slot_hash(id) >> 32) as usize & self.mask()
    }

    /// Looks up the value stored under `id`.
    pub fn get(&self, id: &Id) -> Option<&V> {
        if self.len == 0 {
            return None;
        }
        let mask = self.mask();
        let mut i = self.start_slot(id);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, v)) if k == id => return Some(v),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Looks up the value stored under `id`, mutably.
    pub fn get_mut(&mut self, id: &Id) -> Option<&mut V> {
        if self.len == 0 {
            return None;
        }
        let mask = self.mask();
        let mut i = self.start_slot(id);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if k == id => {
                    let Some((_, v)) = self.slots[i].as_mut() else {
                        unreachable!("matched above");
                    };
                    return Some(v);
                }
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Returns `true` if `id` has an entry.
    pub fn contains_key(&self, id: &Id) -> bool {
        self.get(id).is_some()
    }

    /// Inserts `value` under `id`, returning the previous value if any.
    pub fn insert(&mut self, id: Id, value: V) -> Option<V> {
        if self.slots.is_empty() {
            self.slots = Self::empty_slots(INITIAL_SLOTS);
        } else if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = self.start_slot(&id);
        loop {
            match &mut self.slots[i] {
                slot @ None => {
                    *slot = Some((id, value));
                    self.len += 1;
                    return None;
                }
                Some((k, v)) if *k == id => return Some(std::mem::replace(v, value)),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Removes the entry under `id`, returning its value if present.
    ///
    /// Uses backward-shift deletion, keeping probe chains tombstone-free
    /// (and layout a pure function of the operation history).
    pub fn remove(&mut self, id: &Id) -> Option<V> {
        if self.len == 0 {
            return None;
        }
        let mask = self.mask();
        let mut i = self.start_slot(id);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if k == id => break,
                Some(_) => i = (i + 1) & mask,
            }
        }
        let Some((_, value)) = self.slots[i].take() else {
            unreachable!("matched above");
        };
        self.len -= 1;
        // Shift the probe chain back over the hole.
        let mut hole = i;
        let mut j = (i + 1) & mask;
        while let Some((k, _)) = &self.slots[j] {
            let home = self.start_slot(k);
            // Move k back iff the hole lies cyclically in [home, j).
            let wraps = if hole <= j {
                home <= hole || home > j
            } else {
                home <= hole && home > j
            };
            if wraps {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
            j = (j + 1) & mask;
        }
        Some(value)
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    /// Iterates entries in slot order (deterministic for a given
    /// operation history).
    pub fn iter(&self) -> impl Iterator<Item = (&Id, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (k, v)))
    }

    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(INITIAL_SLOTS);
        let old = std::mem::replace(&mut self.slots, Self::empty_slots(new_len));
        self.len = 0;
        for (k, v) in old.into_iter().flatten() {
            self.insert(k, v);
        }
    }
}

/// An open-addressed set of [`Id`]s over [`IdMap`].
#[derive(Debug, Clone, Default)]
pub struct IdSet(IdMap<()>);

impl IdSet {
    /// An empty set. Allocates on first insert, not here.
    pub fn new() -> Self {
        IdSet(IdMap::new())
    }

    /// An empty set pre-sized for `n` entries without rehashing.
    pub fn with_capacity(n: usize) -> Self {
        IdSet(IdMap::with_capacity(n))
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Adds `id`; returns `true` if it was not already present.
    pub fn insert(&mut self, id: Id) -> bool {
        self.0.insert(id, ()).is_none()
    }

    /// Returns `true` if `id` is in the set.
    pub fn contains(&self, id: &Id) -> bool {
        self.0.contains_key(id)
    }

    /// Removes `id`; returns `true` if it was present.
    pub fn remove(&mut self, id: &Id) -> bool {
        self.0.remove(id).is_some()
    }

    /// Removes every id, keeping the allocation.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Iterates ids in slot order (deterministic for a given history).
    pub fn iter(&self) -> impl Iterator<Item = &Id> {
        self.0.iter().map(|(k, _)| k)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // std HashMap is the differential oracle here
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn empty_maps_do_not_allocate() {
        let m: IdMap<u32> = IdMap::new();
        assert_eq!(m.slots.capacity(), 0);
        assert!(m.is_empty());
        assert!(!m.contains_key(&Id::from_low_u64(1)));
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m = IdMap::new();
        let a = Id::from_low_u64(1);
        let b = Id::from_low_u64(2);
        assert_eq!(m.insert(a, 10), None);
        assert_eq!(m.insert(b, 20), None);
        assert_eq!(m.insert(a, 11), Some(10));
        assert_eq!(m.get(&a), Some(&11));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(&a), Some(11));
        assert_eq!(m.remove(&a), None);
        assert_eq!(m.get(&b), Some(&20));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn differential_against_std_hashmap() {
        let mut rng = SmallRng::seed_from_u64(0xbeef);
        let mut ours: IdMap<u64> = IdMap::new();
        let mut reference: HashMap<Id, u64> = HashMap::new();
        // A small key universe forces collisions, duplicate inserts, and
        // removals of present and absent keys.
        let universe: Vec<Id> = (0..64).map(|_| Id::random(&mut rng)).collect();
        for step in 0..20_000u64 {
            let key = universe[rng.gen_range(0..universe.len())];
            match rng.gen_range(0u8..10) {
                0..=5 => {
                    assert_eq!(ours.insert(key, step), reference.insert(key, step));
                }
                6..=7 => {
                    assert_eq!(ours.remove(&key), reference.remove(&key));
                }
                _ => {
                    assert_eq!(ours.get(&key), reference.get(&key));
                }
            }
            assert_eq!(ours.len(), reference.len());
        }
        for key in &universe {
            assert_eq!(ours.get(key), reference.get(key));
        }
    }

    #[test]
    fn growth_keeps_all_entries() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut m = IdMap::new();
        let keys: Vec<Id> = (0..1000).map(|_| Id::random(&mut rng)).collect();
        for (i, &k) in keys.iter().enumerate() {
            m.insert(k, i);
        }
        assert_eq!(m.len(), 1000);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(m.get(k), Some(&i));
        }
        assert_eq!(m.iter().count(), 1000);
    }

    #[test]
    fn sets_behave_like_sets() {
        let mut s = IdSet::new();
        let a = Id::from_low_u64(5);
        assert!(s.insert(a));
        assert!(!s.insert(a));
        assert!(s.contains(&a));
        assert_eq!(s.len(), 1);
        assert!(s.remove(&a));
        assert!(!s.remove(&a));
        assert!(s.is_empty());
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut m = IdMap::new();
        for i in 0..100 {
            m.insert(Id::random(&mut rng), i);
        }
        let cap = m.slots.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.slots.len(), cap);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn with_capacity_does_not_rehash_under_n_inserts() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut m: IdMap<u32> = IdMap::with_capacity(100);
        let cap = m.slots.len();
        for i in 0..100 {
            m.insert(Id::random(&mut rng), i);
        }
        assert_eq!(m.slots.len(), cap, "no growth within the stated capacity");
    }
}
