//! Property-based tests for the identifier space and metrics.

use mpil_id::{
    common_digits, numeric_distance, prefix_match_digits, ring_distance, suffix_match_digits,
    wrapping_add, wrapping_sub, xor_distance, Id, IdSpace, ID_BYTES,
};
use proptest::prelude::*;

fn arb_id() -> impl Strategy<Value = Id> {
    proptest::array::uniform20(any::<u8>()).prop_map(Id::from_bytes)
}

fn arb_digit_bits() -> impl Strategy<Value = u8> {
    prop::sample::select(vec![1u8, 2, 4, 8])
}

proptest! {
    #[test]
    fn common_digits_is_symmetric(a in arb_id(), b in arb_id(), bits in arb_digit_bits()) {
        prop_assert_eq!(common_digits(a, b, bits), common_digits(b, a, bits));
    }

    #[test]
    fn common_digits_self_is_total(a in arb_id(), bits in arb_digit_bits()) {
        prop_assert_eq!(common_digits(a, a, bits), 160 / u32::from(bits));
    }

    #[test]
    fn common_digits_bounded(a in arb_id(), b in arb_id(), bits in arb_digit_bits()) {
        let m = 160 / u32::from(bits);
        prop_assert!(common_digits(a, b, bits) <= m);
    }

    #[test]
    fn common_digits_matches_digitwise_count(a in arb_id(), b in arb_id(), bits in arb_digit_bits()) {
        // Reference implementation: compare digit by digit.
        let m = 160 / usize::from(bits);
        let expected = (0..m)
            .filter(|&i| a.digit(i, bits) == b.digit(i, bits))
            .count() as u32;
        prop_assert_eq!(common_digits(a, b, bits), expected);
    }

    #[test]
    fn prefix_plus_mismatch_consistency(a in arb_id(), b in arb_id(), bits in arb_digit_bits()) {
        // The digit right after the shared prefix must differ (unless the
        // prefix covers the whole ID).
        let p = prefix_match_digits(a, b, bits) as usize;
        let m = 160 / usize::from(bits);
        for i in 0..p {
            prop_assert_eq!(a.digit(i, bits), b.digit(i, bits));
        }
        if p < m {
            prop_assert_ne!(a.digit(p, bits), b.digit(p, bits));
        }
    }

    #[test]
    fn suffix_match_mirrors_prefix_of_reversed(a in arb_id(), b in arb_id(), bits in arb_digit_bits()) {
        let s = suffix_match_digits(a, b, bits) as usize;
        let m = 160 / usize::from(bits);
        for i in 0..s {
            prop_assert_eq!(a.digit(m - 1 - i, bits), b.digit(m - 1 - i, bits));
        }
        if s < m {
            prop_assert_ne!(a.digit(m - 1 - s, bits), b.digit(m - 1 - s, bits));
        }
    }

    #[test]
    fn prefix_and_suffix_bound_common(a in arb_id(), b in arb_id(), bits in arb_digit_bits()) {
        // Every shared-prefix digit and shared-suffix digit is a common
        // digit, and when a != b the two regions are disjoint.
        let c = common_digits(a, b, bits);
        let p = prefix_match_digits(a, b, bits);
        let s = suffix_match_digits(a, b, bits);
        if a != b {
            prop_assert!(c >= p + s);
        } else {
            prop_assert_eq!(c, 160 / u32::from(bits));
        }
    }

    #[test]
    fn xor_distance_identity_and_symmetry(a in arb_id(), b in arb_id()) {
        prop_assert_eq!(xor_distance(a, a), Id::ZERO);
        prop_assert_eq!(xor_distance(a, b), xor_distance(b, a));
    }

    #[test]
    fn xor_triangle_inequality_holds(a in arb_id(), b in arb_id(), c in arb_id()) {
        // d(a,c) <= d(a,b) xor-added with d(b,c) is not a metric statement;
        // the actual Kademlia property is d(a,c) = d(a,b) ^ d(b,c).
        prop_assert_eq!(
            xor_distance(a, c),
            xor_distance(a, b) ^ xor_distance(b, c)
        );
    }

    #[test]
    fn add_sub_inverse(a in arb_id(), b in arb_id()) {
        prop_assert_eq!(wrapping_sub(wrapping_add(a, b), b), a);
        prop_assert_eq!(wrapping_add(wrapping_sub(a, b), b), a);
    }

    #[test]
    fn add_commutes(a in arb_id(), b in arb_id()) {
        prop_assert_eq!(wrapping_add(a, b), wrapping_add(b, a));
    }

    #[test]
    fn ring_distance_symmetric_and_bounded(a in arb_id(), b in arb_id()) {
        prop_assert_eq!(ring_distance(a, b), ring_distance(b, a));
        // Ring distance is at most half the ring: its top bit may be set
        // only when the two halves are exactly opposite.
        let d = ring_distance(a, b);
        let other = wrapping_sub(Id::ZERO, d);
        if !d.is_zero() {
            prop_assert!(d <= other);
        }
    }

    #[test]
    fn numeric_distance_triangle(a in arb_id(), b in arb_id(), c in arb_id()) {
        // |a-c| <= |a-b| + |b-c| as 161-bit integers; verify via a u128
        // embedding of the top bytes to avoid bignum: instead check the
        // equivalent ordering statement on the ring with saturation.
        let ab = numeric_distance(a, b);
        let bc = numeric_distance(b, c);
        let ac = numeric_distance(a, c);
        let sum = wrapping_add(ab, bc);
        // If the sum did not wrap (sum >= ab), the triangle inequality must
        // hold exactly.
        if sum >= ab {
            prop_assert!(ac <= sum);
        }
    }

    #[test]
    fn parse_display_round_trip(a in arb_id()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Id>().unwrap(), a);
    }

    #[test]
    fn with_digit_then_digit_reads_back(a in arb_id(), i in 0usize..40, v in 0u8..16) {
        let id = a.with_digit(i, 4, v);
        prop_assert_eq!(id.digit(i, 4), v);
        // All other digits unchanged.
        for j in 0..40 {
            if j != i {
                prop_assert_eq!(id.digit(j, 4), a.digit(j, 4));
            }
        }
    }

    #[test]
    fn space_metrics_agree_with_free_functions(a in arb_id(), b in arb_id()) {
        let s = IdSpace::base4();
        prop_assert_eq!(s.common_digits(a, b), common_digits(a, b, 2));
        let s16 = IdSpace::base16();
        prop_assert_eq!(s16.prefix_match(a, b), prefix_match_digits(a, b, 4));
    }

    #[test]
    fn bytes_round_trip(bytes in proptest::array::uniform20(any::<u8>())) {
        let id = Id::from_bytes(bytes);
        prop_assert_eq!(id.to_bytes(), bytes);
        prop_assert_eq!(id.as_bytes(), &bytes);
        let _ = ID_BYTES;
    }
}
