//! Ablation: tie-based vs top-k flow splitting
//! ([`mpil_bench::figures::ablation_split_policy`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ablation_split_policy [--full] [--csv] [--seed N]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::ablation_split_policy(&args).print(args.flag("csv"));
}
