//! Ablation: tie-based vs top-k flow splitting.
//!
//! The paper's Figure 5 pseudo-code splits a message across neighbors
//! *tied* at the best metric; its Section 4 prose and the realized flow
//! counts of Table 3 (~9 of a 10-flow budget) imply fan-out to the *best
//! few* neighbors up to the budget. This binary quantifies the choice on
//! both static-overlay families; `TopK` is the crate default because it
//! reproduces Tables 1–3 (see EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ablation_split_policy [--full] [--csv] [--seed N]
//! ```

use mpil::{MpilConfig, SplitPolicy};
use mpil_bench::scale::static_scale;
use mpil_bench::static_exp::{lookup_behavior, Family};
use mpil_bench::Args;
use mpil_workload::Table;

fn main() {
    let args = Args::parse_env();
    let (full, csv, seed) = args.standard();
    let scale = static_scale(full);
    let n = *scale.sizes.last().expect("non-empty sizes");

    let mut table = Table::new(vec![
        "family".into(),
        "policy".into(),
        "lookup cfg".into(),
        "success %".into(),
        "flows".into(),
        "traffic".into(),
        "hops".into(),
    ]);
    for family in [
        Family::PowerLaw,
        Family::Random {
            degree: scale.random_degree,
        },
    ] {
        for policy in [SplitPolicy::MetricTies, SplitPolicy::TopK] {
            for (mf, r) in [(10u32, 3u32), (10, 5), (5, 1)] {
                let insert = MpilConfig::default()
                    .with_max_flows(30)
                    .with_num_replicas(5)
                    .with_split_policy(policy);
                let lookup = MpilConfig::default()
                    .with_max_flows(mf)
                    .with_num_replicas(r)
                    .with_split_policy(policy);
                let b =
                    lookup_behavior(family, n, scale.graphs, scale.objects, insert, lookup, seed);
                table.row(vec![
                    family.label().into(),
                    format!("{policy:?}"),
                    format!("mf={mf} r={r}"),
                    format!("{:.1}", b.success_rate),
                    format!("{:.2}", b.mean_flows),
                    format!("{:.1}", b.mean_traffic),
                    format!("{:.2}", b.mean_hops),
                ]);
            }
        }
    }
    println!("Ablation: flow-splitting policy ({n} nodes)");
    println!(
        "{}",
        if csv {
            table.render_csv()
        } else {
            table.render()
        }
    );
}
