//! Extension: link loss instead of (and combined with) node flapping.
//!
//! Castro et al.'s dependability study (cited in Section 2 as the source
//! of MSPastry's maintenance techniques) evaluates Pastry under *network
//! message loss* as well as churn. The MPIL paper only perturbs nodes;
//! this binary closes that gap: an independent per-message loss
//! probability is injected during the lookup stage, alone and on top of
//! moderate flapping.
//!
//! Expected shape: per-hop retransmission lets MSPastry absorb small
//! loss rates; MPIL absorbs them through flow redundancy without any
//! retransmission. Under combined loss + flapping the ordering of
//! Figure 11 (MPIL on top) must persist.
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ext_link_loss [--full] [--csv] [--seed N]
//! ```

use mpil_bench::perturb::{run_system, PerturbRun, System};
use mpil_workload::Table;

fn main() {
    let args = mpil_bench::Args::parse_env();
    let (full, csv, seed) = args.standard();
    let (nodes, ops) = if full { (1000, 1000) } else { (300, 60) };
    let nodes = args.value_or("nodes", nodes);
    let ops = args.value_or("ops", ops);

    let losses = [0.0, 0.05, 0.1, 0.2, 0.4];

    let mut table = Table::new(vec![
        "loss".into(),
        "flap p".into(),
        "MSPastry %".into(),
        "MPIL w/o DS %".into(),
        "MSPastry msgs/lookup".into(),
        "MPIL msgs/lookup".into(),
    ]);
    for &flap in &[0.0, 0.5] {
        for &loss in &losses {
            let run = PerturbRun {
                nodes,
                operations: ops,
                idle_secs: 30,
                offline_secs: 30,
                probability: flap,
                deadline_cap_secs: 60,
                loss_probability: loss,
                seed,
            };
            let pastry = run_system(System::Pastry, run);
            let mpil = run_system(System::MpilNoDs, run);
            table.row(vec![
                format!("{loss:.2}"),
                format!("{flap:.1}"),
                format!("{:.1}", pastry.success_rate),
                format!("{:.1}", mpil.success_rate),
                format!("{:.1}", pastry.lookup_messages as f64 / ops as f64),
                format!("{:.1}", mpil.lookup_messages as f64 / ops as f64),
            ]);
            eprintln!(
                "loss {loss:.2} flap {flap:.1}: pastry {:.1}%, mpil {:.1}%",
                pastry.success_rate, mpil.success_rate
            );
        }
    }
    println!(
        "Extension: success under link loss ({nodes} nodes, {ops} lookups, idle:offline=30:30)"
    );
    println!(
        "{}",
        if csv {
            table.render_csv()
        } else {
            table.render()
        }
    );
}
