//! Extension: link loss instead of (and combined with) node flapping
//! ([`mpil_bench::figures::ext_link_loss`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ext_link_loss [--full] [--csv] [--seed N] [--nodes N] [--ops K]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::ext_link_loss(&args).print(args.flag("csv"));
}
