//! Figure 1: the effect of perturbation on MSPastry
//! ([`mpil_bench::figures::fig1_pastry_perturbation`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin fig1_pastry_perturbation [--full] [--csv] [--seed N]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::fig1_pastry_perturbation(&args).print(args.flag("csv"));
}
