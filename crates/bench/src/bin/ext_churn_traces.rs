//! Extension: trace-driven churn instead of periodic flapping
//! ([`mpil_bench::figures::ext_churn_traces`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ext_churn_traces [--csv] [--seed N] [--nodes N] [--ops K]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::ext_churn_traces(&args).print(args.flag("csv"));
}
