//! Extension: trace-driven churn instead of periodic flapping.
//!
//! The paper motivates perturbation with the measured availability of
//! real deployments (Bhagwan et al.'s Overnet crawl, Saroiu et al.'s
//! Napster/Gnutella study — Section 2) but evaluates only the synthetic
//! flapping model. This binary replays synthetic session traces with
//! exponential on/off times calibrated to those studies' headline
//! numbers (median session lengths of tens of minutes, mean availability
//! well below 1) and compares MPIL against Pastry-with-maintenance on
//! the same frozen overlay.
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ext_churn_traces [--csv] [--seed N]
//! ```

use mpil::{DynamicConfig, DynamicNetwork, LookupStatus, MpilConfig};
use mpil_overlay::transit_stub::{self, TransitStubConfig};
use mpil_overlay::NodeIdx;
use mpil_pastry::{build_converged_states, PastryConfig, PastrySim};
use mpil_sim::{AlwaysOn, SimDuration, SimTime, TraceChurn, TransitStubLatency};
use mpil_workload::Table;
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct Scenario {
    label: &'static str,
    mean_online_s: u64,
    mean_offline_s: u64,
}

fn main() {
    let args = mpil_bench::Args::parse_env();
    let (_full, csv, seed) = args.standard();
    let nodes = args.value_or("nodes", 400usize);
    let ops = args.value_or("ops", 80usize);

    // Session scales bracketing the measurement studies: Gnutella-like
    // (short sessions, ~50% availability), Overnet-like (longer sessions,
    // ~70%), and a stable fleet (~90%).
    let scenarios = [
        Scenario {
            label: "gnutella-like (50% up)",
            mean_online_s: 600,
            mean_offline_s: 600,
        },
        Scenario {
            label: "overnet-like (70% up)",
            mean_online_s: 1400,
            mean_offline_s: 600,
        },
        Scenario {
            label: "stable fleet (90% up)",
            mean_online_s: 5400,
            mean_offline_s: 600,
        },
    ];

    let mut table = Table::new(vec![
        "scenario".into(),
        "MSPastry %".into(),
        "MPIL w/o DS %".into(),
    ]);
    for sc in &scenarios {
        let pastry = run_pastry(sc, nodes, ops, seed);
        let mpil = run_mpil(sc, nodes, ops, seed);
        table.row(vec![
            sc.label.into(),
            format!("{pastry:.1}"),
            format!("{mpil:.1}"),
        ]);
        eprintln!("{}: pastry {pastry:.1}%, mpil {mpil:.1}%", sc.label);
    }
    println!("Extension: success under trace-driven churn ({nodes} nodes, {ops} lookups)");
    println!(
        "{}",
        if csv {
            table.render_csv()
        } else {
            table.render()
        }
    );
}

fn trace(sc: &Scenario, nodes: usize, horizon: SimTime, origin: NodeIdx, seed: u64) -> TraceChurn {
    use rand::Rng;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0ffee);
    let exp = |rng: &mut SmallRng, mean_us: f64| -> u64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (-mean_us * u.ln()).max(1.0) as u64
    };
    let on_us = sc.mean_online_s as f64 * 1e6;
    let off_us = sc.mean_offline_s as f64 * 1e6;
    let mut all: Vec<Vec<(SimTime, SimTime)>> = Vec::with_capacity(nodes);
    for i in 0..nodes {
        if i == origin.index() {
            // The measurement origin is always up.
            all.push(vec![(
                SimTime::ZERO,
                horizon + SimDuration::from_secs(3600),
            )]);
            continue;
        }
        let mut list = Vec::new();
        let mut t = if rng.gen_bool(0.5) {
            0
        } else {
            exp(&mut rng, off_us)
        };
        while t < horizon.as_micros() {
            let end = (t + exp(&mut rng, on_us)).min(horizon.as_micros());
            list.push((SimTime::from_micros(t), SimTime::from_micros(end)));
            t = end + exp(&mut rng, off_us);
        }
        all.push(list);
    }
    TraceChurn::from_sessions(all)
}

fn run_pastry(sc: &Scenario, nodes: usize, ops: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let config = PastryConfig::default();
    let ids = mpil_pastry::bootstrap::random_ids(nodes, &mut rng);
    let states = build_converged_states(&ids, &config, &mut rng);
    let ts = transit_stub::generate(nodes, TransitStubConfig::default(), &mut rng).expect("ts");
    let mut sim = PastrySim::new(
        ids,
        states,
        config,
        Box::new(AlwaysOn),
        Box::new(TransitStubLatency::new(ts, 0.1)),
        seed ^ 0x77,
    );
    let origin = NodeIdx::new(0);
    let objects: Vec<_> = (0..ops).map(|_| mpil_id::Id::random(&mut rng)).collect();
    for &o in &objects {
        sim.insert(origin, o);
    }
    sim.run_to_quiescence();
    sim.start_maintenance();

    let period = SimDuration::from_secs(120);
    let horizon = sim.now() + period * (ops as u64 + 2);
    sim.set_availability(Box::new(trace(sc, nodes, horizon, origin, seed)));

    let mut lookups = Vec::new();
    for &o in objects.iter() {
        sim.run_until(sim.now() + period);
        lookups.push(sim.issue_lookup(origin, o, sim.now() + SimDuration::from_secs(60)));
    }
    sim.run_until(sim.now() + SimDuration::from_secs(90));
    let ok = lookups
        .iter()
        .filter(|&&l| {
            matches!(
                sim.lookup_outcome(l),
                mpil_pastry::LookupOutcome::Succeeded { .. }
            )
        })
        .count();
    100.0 * ok as f64 / lookups.len() as f64
}

fn run_mpil(sc: &Scenario, nodes: usize, ops: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let config = PastryConfig::default();
    let ids = mpil_pastry::bootstrap::random_ids(nodes, &mut rng);
    let states = build_converged_states(&ids, &config, &mut rng);
    let neighbors: Vec<Vec<NodeIdx>> = states.iter().map(|s| s.neighbor_list()).collect();
    let ts = transit_stub::generate(nodes, TransitStubConfig::default(), &mut rng).expect("ts");
    let mut net = DynamicNetwork::new(
        ids,
        neighbors,
        DynamicConfig {
            mpil: MpilConfig::default().with_duplicate_suppression(false),
            heartbeat_period: None,
        },
        Box::new(AlwaysOn),
        Box::new(TransitStubLatency::new(ts, 0.1)),
        seed ^ 0x77,
    );
    let origin = NodeIdx::new(0);
    let objects: Vec<_> = (0..ops).map(|_| mpil_id::Id::random(&mut rng)).collect();
    for &o in &objects {
        net.insert(origin, o);
    }
    net.run_to_quiescence();

    let period = SimDuration::from_secs(120);
    let horizon = net.now() + period * (ops as u64 + 2);
    net.set_availability(Box::new(trace(sc, nodes, horizon, origin, seed)));

    let mut lookups = Vec::new();
    for &o in objects.iter() {
        net.run_until(net.now() + period);
        lookups.push(net.issue_lookup(origin, o, net.now() + SimDuration::from_secs(60)));
    }
    net.run_until(net.now() + SimDuration::from_secs(90));
    let ok = lookups
        .iter()
        .filter(|&&l| matches!(net.lookup_status(l), LookupStatus::Succeeded { .. }))
        .count();
    100.0 * ok as f64 / lookups.len() as f64
}
