//! Table 3: the actual number of flows created by lookups with
//! max_flows = 10 and per-flow replicas = 3.
//!
//! ```text
//! cargo run --release -p mpil-bench --bin table3_flows [--full] [--csv] [--seed N]
//! ```

use mpil::MpilConfig;
use mpil_bench::scale::static_scale;
use mpil_bench::static_exp::{lookup_behavior, paper_insert_config, Family};
use mpil_bench::Args;
use mpil_workload::Table;

fn main() {
    let args = Args::parse_env();
    let (full, csv, seed) = args.standard();
    let scale = static_scale(full);
    let insert_config = paper_insert_config();
    let lookup_config = MpilConfig::default()
        .with_max_flows(10)
        .with_num_replicas(3);

    let mut table = Table::new(vec!["topology".into(), "actual # of flows".into()]);
    for family in [
        Family::PowerLaw,
        Family::Random {
            degree: scale.random_degree,
        },
    ] {
        for &n in scale.sizes {
            eprintln!("table3: {} {n} nodes", family.label());
            let b = lookup_behavior(
                family,
                n,
                scale.graphs,
                scale.objects,
                insert_config,
                lookup_config,
                seed,
            );
            table.row(vec![
                format!("{} {n}", family.label()),
                format!("{:.3}", b.mean_flows),
            ]);
        }
    }
    println!("Table 3: actual number of flows of lookups (max_flows=10, per-flow replicas=3)");
    println!(
        "{}",
        if csv {
            table.render_csv()
        } else {
            table.render()
        }
    );
}
