//! Table 3: the actual number of flows created by lookups
//! ([`mpil_bench::figures::table3_flows`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin table3_flows [--full] [--csv] [--seed N]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::table3_flows(&args).print(args.flag("csv"));
}
