//! Figure 9: MPIL insertion behavior over power-law and random overlays
//! ([`mpil_bench::figures::fig9_insertion`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin fig9_insertion [--full] [--csv] [--seed N]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::fig9_insertion(&args).print(args.flag("csv"));
}
