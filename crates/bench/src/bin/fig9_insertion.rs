//! Figure 9: MPIL insertion behavior over power-law and random overlays —
//! replicas per insertion (left panel), insertion traffic (center), and
//! duplicate messages (right), vs overlay size.
//!
//! Paper parameters: max_flows = 30, per-flow replicas = 5, DS on.
//!
//! ```text
//! cargo run --release -p mpil-bench --bin fig9_insertion [--full] [--csv] [--seed N]
//! ```

use mpil_bench::scale::static_scale;
use mpil_bench::static_exp::{insertion_behavior, paper_insert_config, Family};
use mpil_bench::Args;
use mpil_workload::Table;

fn main() {
    let args = Args::parse_env();
    let (full, csv, seed) = args.standard();
    let scale = static_scale(full);
    let config = paper_insert_config();
    let families = [
        Family::PowerLaw,
        Family::Random {
            degree: scale.random_degree,
        },
    ];

    let mut table = Table::new(vec![
        "family".into(),
        "nodes".into(),
        "avg replicas".into(),
        "avg traffic".into(),
        "total duplicates".into(),
        "avg flows".into(),
    ]);
    for family in families {
        for &n in scale.sizes {
            eprintln!(
                "fig9: {} {n} nodes ({} graphs x {} inserts)",
                family.label(),
                scale.graphs,
                scale.objects
            );
            let b = insertion_behavior(family, n, scale.graphs, scale.objects, config, seed);
            table.row(vec![
                family.label().into(),
                n.to_string(),
                format!("{:.1}", b.mean_replicas),
                format!("{:.1}", b.mean_traffic),
                b.total_duplicates.to_string(),
                format!("{:.2}", b.mean_flows),
            ]);
        }
    }
    println!(
        "Figure 9: MPIL insertion behavior (max_flows=30, per-flow replicas=5; replica bound {})",
        config.replica_bound()
    );
    println!(
        "{}",
        if csv {
            table.render_csv()
        } else {
            table.render()
        }
    );
}
