//! Figure 11: success rate under perturbation for the four systems —
//! MSPastry, MSPastry with RR, MPIL with DS, MPIL without DS — at
//! idle:offline settings 1:1, 30:30 and 300:300 seconds.
//!
//! ```text
//! cargo run --release -p mpil-bench --bin fig11_perturbation [--full] [--csv] [--seed N]
//! ```

use mpil_bench::perturb::{run_points, PerturbRun, System};
use mpil_bench::scale::perturb_scale;
use mpil_bench::Args;
use mpil_workload::Table;

fn main() {
    let args = Args::parse_env();
    let (full, csv, seed) = args.standard();
    let scale = perturb_scale(full);
    let workers = args.value_or("workers", 2usize);
    let settings: &[(u64, u64)] = &[(1, 1), (30, 30), (300, 300)];
    let systems = System::all();

    for &(idle, offline) in settings {
        let mut points = Vec::new();
        for &system in &systems {
            for &p in scale.probabilities {
                let mut run = PerturbRun::new(idle, offline, p);
                run.nodes = scale.nodes;
                run.operations = scale.operations;
                run.seed = seed;
                points.push((system, run));
            }
        }
        eprintln!(
            "fig11 idle:offline={idle}:{offline}: {} runs, {} nodes, {} lookups each",
            points.len(),
            scale.nodes,
            scale.operations
        );
        let results = run_points(&points, workers);

        let mut headers = vec!["flap prob".to_string()];
        headers.extend(systems.iter().map(|s| s.label().to_string()));
        let mut table = Table::new(headers);
        for (pi, &p) in scale.probabilities.iter().enumerate() {
            let mut row = vec![format!("{p:.1}")];
            for si in 0..systems.len() {
                let r = &results[si * scale.probabilities.len() + pi];
                row.push(format!("{:.1}", r.success_rate));
            }
            table.row(row);
        }
        println!("Figure 11 (idle:offline = {idle}:{offline}): success rate (%)");
        println!(
            "{}",
            if csv {
                table.render_csv()
            } else {
                table.render()
            }
        );
    }
}
