//! Figure 11: success rate under perturbation for the four systems
//! ([`mpil_bench::figures::fig11_perturbation`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin fig11_perturbation [--full] [--csv] [--seed N]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    // fig11 streams: each idle:offline setting's table prints as soon
    // as its sweep completes.
    figures::fig11_perturbation(&Args::parse_env());
}
