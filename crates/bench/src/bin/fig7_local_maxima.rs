//! Figure 7: expected number of local maxima for random regular
//! topologies (Section 5.2 closed form), with an optional Monte-Carlo
//! cross-check against actual generated graphs (`--validate`).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin fig7_local_maxima [--csv] [--validate]
//! ```

use mpil_analysis::AnalysisModel;
use mpil_bench::Args;
use mpil_id::{Id, IdSpace};
use mpil_workload::Table;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse_env();
    let (_full, csv, seed) = args.standard();
    let model = AnalysisModel::base4();
    let sizes = [4000usize, 8000, 16000];
    let degrees: Vec<usize> = (10..=100).step_by(10).collect();

    let mut headers = vec!["degree".to_string()];
    headers.extend(sizes.iter().map(|n| format!("{n} nodes")));
    if args.flag("validate") {
        headers.push("simulated (1000, d)".into());
    }
    let mut table = Table::new(headers);
    for &d in &degrees {
        let mut row = vec![d.to_string()];
        for &n in &sizes {
            row.push(format!("{:.1}", model.expected_local_maxima_regular(n, d)));
        }
        if args.flag("validate") {
            row.push(format!("{:.1}", monte_carlo(1000, d, seed)));
        }
        table.row(row);
    }
    println!("Figure 7: expected number of local maxima (random regular topologies, base-4)");
    println!(
        "{}",
        if csv {
            table.render_csv()
        } else {
            table.render()
        }
    );
    println!(
        "expected hops to a local maximum (1/C): d=10 -> {:.1}, d=50 -> {:.1}, d=100 -> {:.1}",
        model.expected_hops_regular(10),
        model.expected_hops_regular(50),
        model.expected_hops_regular(100)
    );
}

/// Counts actual local maxima on generated graphs (scaled to the formula's
/// per-node probability times 1000 nodes for comparability).
fn monte_carlo(nodes: usize, degree: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let topo = mpil_overlay::generators::random_regular(nodes, degree, &mut rng)
        .expect("graph generation");
    let space = IdSpace::base4();
    let trials = 40;
    let mut total = 0usize;
    for _ in 0..trials {
        let object = Id::random(&mut rng);
        total += topo
            .iter_nodes()
            .filter(|&n| {
                let own = space.common_digits(object, topo.id(n));
                topo.neighbors(n)
                    .iter()
                    .all(|&m| space.common_digits(object, topo.id(m)) <= own)
            })
            .count();
    }
    total as f64 / trials as f64
}
