//! Figure 7: expected number of local maxima for random regular
//! topologies ([`mpil_bench::figures::fig7_local_maxima`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin fig7_local_maxima [--csv] [--validate]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::fig7_local_maxima(&args).print(args.flag("csv"));
}
