//! Ablation: the MPIL common-digit metric vs prefix and suffix matching
//! (Section 4.2, "Continuous Forwarding over Arbitrary Overlays").
//!
//! The paper argues prefix/suffix routing cannot distinguish neighbors on
//! arbitrary overlays — with base-4 digits, two random IDs share no
//! prefix at all with probability 3/4, so most neighbors look identical
//! (metric 0) and redundancy is spent blindly. The common-digit metric
//! almost never ties at zero, so every hop makes measurable progress.
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ablation_metric [--full] [--csv] [--seed N]
//! ```

use mpil::{MpilConfig, RoutingMetric, SplitPolicy};
use mpil_bench::scale::static_scale;
use mpil_bench::static_exp::{lookup_behavior, Family};
use mpil_bench::Args;
use mpil_workload::Table;

fn main() {
    let args = Args::parse_env();
    let (full, csv, seed) = args.standard();
    let scale = static_scale(full);
    let n = *scale.sizes.last().expect("non-empty sizes");

    let mut table = Table::new(vec![
        "family".into(),
        "metric".into(),
        "success %".into(),
        "traffic".into(),
        "hops".into(),
    ]);
    for family in [
        Family::PowerLaw,
        Family::Random {
            degree: scale.random_degree,
        },
    ] {
        for metric in [
            RoutingMetric::CommonDigits,
            RoutingMetric::PrefixMatch,
            RoutingMetric::SuffixMatch,
        ] {
            // Tie-based splitting exposes the metric's distinguishing
            // power: an uninformative metric ties everywhere and cannot
            // steer the limited flow budget (with TopK fan-out the extra
            // redundancy masks the difference).
            let insert = MpilConfig::default()
                .with_max_flows(30)
                .with_num_replicas(5)
                .with_metric(metric)
                .with_split_policy(SplitPolicy::MetricTies);
            let lookup = MpilConfig::default()
                .with_max_flows(10)
                .with_num_replicas(3)
                .with_metric(metric)
                .with_split_policy(SplitPolicy::MetricTies);
            let b = lookup_behavior(family, n, scale.graphs, scale.objects, insert, lookup, seed);
            table.row(vec![
                family.label().into(),
                format!("{metric:?}"),
                format!("{:.1}", b.success_rate),
                format!("{:.1}", b.mean_traffic),
                format!("{:.2}", b.mean_hops),
            ]);
        }
    }
    println!("Ablation: routing metric (Section 4.2), {n} nodes, tie-splitting, lookups mf=10 r=3");
    println!(
        "{}",
        if csv {
            table.render_csv()
        } else {
            table.render()
        }
    );
}
