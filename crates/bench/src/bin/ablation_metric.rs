//! Ablation: the MPIL common-digit metric vs prefix and suffix matching
//! ([`mpil_bench::figures::ablation_metric`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ablation_metric [--full] [--csv] [--seed N]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::ablation_metric(&args).print(args.flag("csv"));
}
