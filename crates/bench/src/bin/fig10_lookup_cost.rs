//! Figure 10: MPIL lookup latency and traffic vs overlay size
//! ([`mpil_bench::figures::fig10_lookup_cost`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin fig10_lookup_cost [--full] [--csv] [--seed N]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::fig10_lookup_cost(&args).print(args.flag("csv"));
}
