//! Figure 10: MPIL lookup latency (hops of the first successful reply,
//! left panel) and lookup traffic (right panel) vs overlay size, for
//! power-law and random overlays.
//!
//! Paper parameters: lookups with max_flows = 10 and per-flow
//! replicas = 5 ("that setting gives 100% success rates for all sizes").
//!
//! ```text
//! cargo run --release -p mpil-bench --bin fig10_lookup_cost [--full] [--csv] [--seed N]
//! ```

use mpil::MpilConfig;
use mpil_bench::scale::static_scale;
use mpil_bench::static_exp::{lookup_behavior, paper_insert_config, Family};
use mpil_bench::Args;
use mpil_workload::Table;

fn main() {
    let args = Args::parse_env();
    let (full, csv, seed) = args.standard();
    let scale = static_scale(full);
    let insert_config = paper_insert_config();
    let lookup_config = MpilConfig::default()
        .with_max_flows(10)
        .with_num_replicas(5);

    let mut table = Table::new(vec![
        "family".into(),
        "nodes".into(),
        "success %".into(),
        "avg latency (hops)".into(),
        "avg traffic".into(),
        "traffic to 1st reply".into(),
    ]);
    for family in [
        Family::PowerLaw,
        Family::Random {
            degree: scale.random_degree,
        },
    ] {
        for &n in scale.sizes {
            eprintln!("fig10: {} {n} nodes", family.label());
            let b = lookup_behavior(
                family,
                n,
                scale.graphs,
                scale.objects,
                insert_config,
                lookup_config,
                seed,
            );
            table.row(vec![
                family.label().into(),
                n.to_string(),
                format!("{:.1}", b.success_rate),
                format!("{:.2}", b.mean_hops),
                format!("{:.1}", b.mean_traffic),
                format!("{:.1}", b.mean_traffic_to_first_reply),
            ]);
        }
    }
    println!("Figure 10: MPIL lookup latency and traffic (max_flows=10, per-flow replicas=5)");
    println!(
        "{}",
        if csv {
            table.render_csv()
        } else {
            table.render()
        }
    );
}
