//! Extension: overlay-independence across five overlay families.
//!
//! The paper demonstrates overlay-independence on random and power-law
//! graphs (Section 6.1) and on the MSPastry overlay (Section 6.2). With
//! Chord and Kademlia built as additional substrates, this binary runs
//! the *same* MPIL configuration (max_flows = 10, per-flow replicas = 5,
//! no DS, no maintenance) over the frozen neighbor graphs of all five
//! families — Pastry, Chord, Kademlia, random-regular, power-law — both
//! unperturbed and under 30:30 flapping at p = 0.5 and p = 0.9.
//!
//! Expected shape: success stays high and hops/traffic stay in the same
//! band on *every* family; the structured overlays' sparser graphs
//! (Chord's ≈ log N out-degree) cost a few points at heavy flapping but
//! do not change the story.
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ext_overlay_independence [--full] [--csv] [--seed N]
//! ```

use mpil_bench::dhts::{mean_out_degree, run_mpil_over, OverlaySource};
use mpil_bench::perturb::PerturbRun;
use mpil_workload::Table;

fn main() {
    let args = mpil_bench::Args::parse_env();
    let (full, csv, seed) = args.standard();
    let (nodes, ops) = if full { (1000, 500) } else { (300, 60) };
    let nodes = args.value_or("nodes", nodes);
    let ops = args.value_or("ops", ops);

    let sources = [
        OverlaySource::Pastry,
        OverlaySource::Chord,
        OverlaySource::Kademlia,
        OverlaySource::RandomRegular(16),
        OverlaySource::PowerLaw,
    ];

    let mut table = Table::new(vec![
        "overlay".into(),
        "out-degree".into(),
        "p=0 %".into(),
        "p=0.5 %".into(),
        "p=0.9 %".into(),
        "hops (p=0)".into(),
        "msgs/lookup (p=0)".into(),
    ]);
    for src in sources {
        let (_, nbrs) = src.build(nodes, seed);
        let degree = mean_out_degree(&nbrs);
        let mut cells = vec![src.label(), format!("{degree:.1}")];
        let mut calm_hops = String::new();
        let mut calm_msgs = String::new();
        for p in [0.0, 0.5, 0.9] {
            let run = PerturbRun {
                nodes,
                operations: ops,
                idle_secs: 30,
                offline_secs: 30,
                probability: p,
                deadline_cap_secs: 60,
                loss_probability: 0.0,
                seed,
            };
            let r = run_mpil_over(src, run);
            cells.push(format!("{:.1}", r.success_rate));
            if p == 0.0 {
                calm_hops = format!("{:.2}", r.mean_reply_hops);
                calm_msgs = format!("{:.1}", r.lookup_messages as f64 / ops as f64);
            }
            eprintln!("{} p={p}: {:.1}%", src.label(), r.success_rate);
        }
        cells.push(calm_hops);
        cells.push(calm_msgs);
        table.row(cells);
    }
    println!(
        "Extension: MPIL overlay-independence across overlay families \
         ({nodes} nodes, {ops} lookups, max_flows=10, r=5, idle:offline=30:30)"
    );
    println!(
        "{}",
        if csv {
            table.render_csv()
        } else {
            table.render()
        }
    );
}
