//! Extension: overlay-independence across five overlay families
//! ([`mpil_bench::figures::ext_overlay_independence`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ext_overlay_independence [--full] [--csv] [--seed N] [--nodes N] [--ops K]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::ext_overlay_independence(&args).print(args.flag("csv"));
}
