//! Figure 8: expected number of replicas on complete topologies
//! ([`mpil_bench::figures::fig8_complete_replicas`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin fig8_complete_replicas [--csv] [--validate]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::fig8_complete_replicas(&args).print(args.flag("csv"));
}
