//! Figure 8: expected number of replicas on complete topologies
//! (Section 5.2 closed form), with an optional simulated cross-check on
//! small complete graphs (`--validate`).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin fig8_complete_replicas [--csv] [--validate]
//! ```

use mpil::{MpilConfig, StaticEngine};
use mpil_analysis::AnalysisModel;
use mpil_bench::Args;
use mpil_id::Id;
use mpil_overlay::{generators, NodeIdx};
use mpil_workload::{RunningStats, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse_env();
    let (_full, csv, seed) = args.standard();
    let model = AnalysisModel::base4();
    let sizes: Vec<usize> = (1..=8).map(|k| k * 2000).collect();

    let mut headers = vec!["nodes".to_string(), "expected replicas".to_string()];
    if args.flag("validate") {
        headers.push("simulated (n=800)".into());
    }
    let mut table = Table::new(headers);
    let simulated = if args.flag("validate") {
        Some(simulate_complete(800, seed))
    } else {
        None
    };
    for &n in &sizes {
        let mut row = vec![
            n.to_string(),
            format!("{:.3}", model.expected_replicas_complete(n)),
        ];
        if let Some(sim) = simulated {
            row.push(format!(
                "{sim:.3} (formula {:.3})",
                model.expected_replicas_complete(800)
            ));
        }
        table.row(row);
    }
    println!("Figure 8: expected number of replicas (complete topologies, base-4)");
    println!(
        "{}",
        if csv {
            table.render_csv()
        } else {
            table.render()
        }
    );
}

/// Inserts random objects into an actual complete graph and reports the
/// mean replica count (every tied global maximum stores).
fn simulate_complete(n: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let topo = generators::complete(n, &mut rng).expect("complete graph");
    // One flow suffices on a complete graph (every node is everyone's
    // neighbor); give the budget room for ties.
    let config = MpilConfig::default()
        .with_max_flows(30)
        .with_num_replicas(1);
    let mut engine = StaticEngine::new(&topo, config, seed ^ 1);
    let mut stats = RunningStats::new();
    for _ in 0..60 {
        let object = Id::random(&mut rng);
        let origin = NodeIdx::new(rng.gen_range(0..n as u32));
        let report = engine.insert(origin, object);
        stats.push(f64::from(report.replicas));
    }
    stats.mean()
}
