//! Figure 12: overall traffic under perturbation (idle:offline = 30:30) —
//! forwarded lookup messages (left panel) and total messages including
//! maintenance and acks (right panel), vs flapping probability.
//!
//! ```text
//! cargo run --release -p mpil-bench --bin fig12_traffic [--full] [--csv] [--seed N]
//! ```

use mpil_bench::perturb::{run_points, PerturbRun, System};
use mpil_bench::scale::perturb_scale;
use mpil_bench::Args;
use mpil_workload::Table;

fn main() {
    let args = Args::parse_env();
    let (full, csv, seed) = args.standard();
    let scale = perturb_scale(full);
    let workers = args.value_or("workers", 2usize);
    let systems = [System::Pastry, System::MpilDs, System::MpilNoDs];

    let mut points = Vec::new();
    for &system in &systems {
        for &p in scale.probabilities {
            let mut run = PerturbRun::new(30, 30, p);
            run.nodes = scale.nodes;
            run.operations = scale.operations;
            run.seed = seed;
            points.push((system, run));
        }
    }
    eprintln!(
        "fig12: {} runs, {} nodes, {} lookups each",
        points.len(),
        scale.nodes,
        scale.operations
    );
    let results = run_points(&points, workers);

    for (title, pick) in [
        (
            "Figure 12 (left): forwarded lookup messages (idle:offline = 30:30)",
            0usize,
        ),
        (
            "Figure 12 (right): total messages incl. maintenance (idle:offline = 30:30)",
            1usize,
        ),
    ] {
        let mut headers = vec!["flap prob".to_string()];
        headers.extend(systems.iter().map(|s| s.label().to_string()));
        let mut table = Table::new(headers);
        for (pi, &p) in scale.probabilities.iter().enumerate() {
            let mut row = vec![format!("{p:.1}")];
            for si in 0..systems.len() {
                let r = &results[si * scale.probabilities.len() + pi];
                let v = if pick == 0 {
                    r.lookup_messages
                } else {
                    r.total_messages
                };
                row.push(v.to_string());
            }
            table.row(row);
        }
        println!("{title}");
        println!(
            "{}",
            if csv {
                table.render_csv()
            } else {
                table.render()
            }
        );
    }
}
