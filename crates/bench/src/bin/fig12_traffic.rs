//! Figure 12: overall traffic under perturbation
//! ([`mpil_bench::figures::fig12_traffic`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin fig12_traffic [--full] [--csv] [--seed N]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::fig12_traffic(&args).print(args.flag("csv"));
}
