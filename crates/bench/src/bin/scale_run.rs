//! Kernel-scaling point: one engine at one overlay size, with wall-clock
//! and peak-RSS measurement ([`mpil_bench::scale_curve`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin scale_run -- \
//!     --engine mpil|kademlia|gossip --nodes N [--ops K] [--p X] [--seed S] \
//!     [--budget-s B]
//! ```
//!
//! Prints one JSON object line per invocation. Run one point per process
//! so the `VmHWM` peak-RSS reading belongs to that point;
//! `BENCH_scale.json` is composed from the per-point lines.
//!
//! `--budget-s B` turns the run into a CI tripwire: if the point takes
//! longer than `B` wall-clock seconds the process exits 1 (the point is
//! still printed, so a slow run remains diagnosable).

use std::time::Duration;

use mpil_bench::scale_curve::{run_point, scale_spec};
use mpil_bench::Args;
use mpil_harness::WallClockBudget;

fn main() {
    let args = Args::parse_env();
    let name = args.value_or("engine", "mpil".to_string());
    let Some(spec) = scale_spec(&name) else {
        eprintln!("unknown --engine '{name}' (expected mpil, kademlia, or gossip)");
        std::process::exit(2);
    };
    let nodes = args.value_or("nodes", 1000usize);
    let ops = args.value_or("ops", 20usize);
    let p = args.value_or("p", 0.5f64);
    let seed = args.value_or("seed", 1u64);
    let budget_s = args.value_or("budget-s", 0u64);
    let budget = (budget_s > 0).then(|| WallClockBudget::start(Duration::from_secs(budget_s)));
    let point = run_point(spec, nodes, ops, p, seed);
    eprintln!(
        "{}: {} nodes in {:.2}s (build {:.2}s, inserts {:.2}s, lookups {:.2}s), peak {:.0} MiB, \
         success {:.0}%",
        point.engine,
        point.nodes,
        point.total_s,
        point.build_s,
        point.insert_s,
        point.lookup_s,
        point.peak_rss_mib,
        point.success_rate,
    );
    println!("{}", point.to_json());
    if let Some(budget) = budget {
        if let Err(msg) = budget.check(&format!("{} {}-node point", point.engine, point.nodes)) {
            eprintln!("scale_run: {msg}");
            std::process::exit(1);
        }
    }
}
