//! Kernel-scaling point: one engine at one overlay size, with wall-clock
//! and peak-RSS measurement ([`mpil_bench::scale_curve`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin scale_run -- \
//!     --engine mpil|kademlia|chord|pastry|gossip|plumtree|foaf \
//!     --nodes N [--ops K] [--p X] [--seed S] \
//!     [--strategy walk|ring|plumtree|foaf] \
//!     [--budget-s B] [--max-rss-mib M] [--max-msgs-per-lookup T]
//! ```
//!
//! Prints one JSON object line per invocation. Run one point per process
//! so the `VmHWM` peak-RSS reading belongs to that point;
//! `BENCH_scale.json` is composed from the per-point lines.
//!
//! `--strategy` selects the gossip lookup strategy (`walk`, the
//! default, `ring`, `plumtree`, or `foaf` — the last two pick the
//! HyParView/Plumtree epidemic engine, also reachable directly as
//! `--engine plumtree|foaf`); the other engines ignore it.
//!
//! `--budget-s B`, `--max-rss-mib M`, and `--max-msgs-per-lookup T`
//! turn the run into a CI tripwire: if the point takes longer than `B`
//! wall-clock seconds, the process's peak RSS exceeds `M` MiB, or
//! stage-2 lookup traffic averages more than `T` messages per lookup,
//! the process exits 1 (the point is still printed, so a bad run
//! remains diagnosable).

use std::time::Duration;

use mpil_bench::scale_curve::{run_point, scale_spec};
use mpil_bench::Args;
use mpil_harness::{RssBudget, TrafficBudget, WallClockBudget};

/// Count every heap allocation so the point can report steady-state
/// allocations per kernel event — the enforcement side of the
/// allocation-free message plane.
#[global_allocator]
static ALLOC: mpil_alloc::CountingAlloc = mpil_alloc::CountingAlloc;

fn main() {
    let args = Args::parse_env();
    let name = args.value_or("engine", "mpil".to_string());
    let strategy = args.value_or("strategy", "walk".to_string());
    let Some(spec) = scale_spec(&name, &strategy) else {
        eprintln!(
            "unknown --engine '{name}' / --strategy '{strategy}' \
             (expected mpil, kademlia, chord, pastry, gossip, plumtree, or foaf; \
             walk, ring, plumtree, or foaf)"
        );
        std::process::exit(2);
    };
    let nodes = args.value_or("nodes", 1000usize);
    let ops = args.value_or("ops", 20usize);
    let p = args.value_or("p", 0.5f64);
    let seed = args.value_or("seed", 1u64);
    let budget_s = args.value_or("budget-s", 0u64);
    let budget = (budget_s > 0).then(|| WallClockBudget::start(Duration::from_secs(budget_s)));
    let max_rss_mib = args.value_or("max-rss-mib", 0.0f64);
    let rss_budget = (max_rss_mib > 0.0).then(|| RssBudget::new(max_rss_mib));
    let max_msgs_per_lookup = args.value_or("max-msgs-per-lookup", 0.0f64);
    let traffic_budget =
        (max_msgs_per_lookup > 0.0).then(|| TrafficBudget::new(max_msgs_per_lookup));
    let point = run_point(spec, nodes, ops, p, seed);
    eprintln!(
        "{}: {} nodes in {:.2}s (build {:.2}s, inserts {:.2}s, lookups {:.2}s), peak {:.0} MiB, \
         success {:.0}%, {:.4} allocs/event over {} events",
        point.engine,
        point.nodes,
        point.total_s,
        point.build_s,
        point.insert_s,
        point.lookup_s,
        point.peak_rss_mib,
        point.success_rate,
        point.allocs_per_event(),
        point.events,
    );
    println!("{}", point.to_json());
    let context = format!("{} {}-node point", point.engine, point.nodes);
    if let Some(budget) = budget {
        if let Err(msg) = budget.check(&context) {
            eprintln!("scale_run: {msg}");
            std::process::exit(1);
        }
    }
    if let Some(rss_budget) = rss_budget {
        if let Err(msg) = rss_budget.check(&context) {
            eprintln!("scale_run: {msg}");
            std::process::exit(1);
        }
    }
    if let Some(traffic_budget) = traffic_budget {
        if let Err(msg) = traffic_budget.check(&context, point.lookup_msgs, point.operations) {
            eprintln!("scale_run: {msg}");
            std::process::exit(1);
        }
    }
}
