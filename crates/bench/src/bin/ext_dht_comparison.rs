//! Extension: the Figure 11 comparison widened to three DHT baselines
//! ([`mpil_bench::figures::ext_dht_comparison`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ext_dht_comparison [--full] [--csv] [--seed N] [--nodes N] [--ops K]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::ext_dht_comparison(&args).print(args.flag("csv"));
}
