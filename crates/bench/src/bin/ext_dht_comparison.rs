//! Extension: the Figure 11 comparison widened to three DHT baselines.
//!
//! Figure 11 compares MPIL against MSPastry only. This binary adds
//! Chord (with full stabilization) and Kademlia in two configurations —
//! single-copy/single-path (`k = 1, α = 1`, the apples-to-apples peer of
//! MSPastry's one-root storage) and stock (`k = 8, α = 3`) — all under
//! the same 30:30 flapping sweep, against MPIL over each baseline's own
//! frozen overlay.
//!
//! Expected shape: every *single-copy* maintained DHT collapses as p
//! grows; replicated Kademlia holds (the literature's churn-resistance
//! result); MPIL over any frozen graph stays at the top without any
//! maintenance at all.
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ext_dht_comparison [--full] [--csv] [--seed N]
//! ```

use mpil_bench::dhts::{run_baseline, run_mpil_over, Baseline, OverlaySource};
use mpil_bench::perturb::PerturbRun;
use mpil_workload::Table;

fn main() {
    let args = mpil_bench::Args::parse_env();
    let (full, csv, seed) = args.standard();
    let (nodes, ops) = if full { (1000, 500) } else { (250, 50) };
    let nodes = args.value_or("nodes", nodes);
    let ops = args.value_or("ops", ops);
    let probabilities = [0.2, 0.5, 0.9];

    let run_at = |p: f64| PerturbRun {
        nodes,
        operations: ops,
        idle_secs: 30,
        offline_secs: 30,
        probability: p,
        deadline_cap_secs: 60,
        loss_probability: 0.0,
        seed,
    };

    let mut header: Vec<String> = vec!["system".into()];
    header.extend(probabilities.iter().map(|p| format!("p={p} %")));
    let mut table = Table::new(header);

    let baselines = [
        Baseline::Pastry,
        Baseline::Chord,
        Baseline::Kademlia { k: 1, alpha: 1 },
        Baseline::Kademlia { k: 8, alpha: 3 },
    ];
    for b in baselines {
        let mut cells = vec![b.label()];
        for &p in &probabilities {
            let rate = run_baseline(b, run_at(p));
            cells.push(format!("{rate:.1}"));
            eprintln!("{} p={p}: {rate:.1}%", b.label());
        }
        table.row(cells);
    }
    for src in [
        OverlaySource::Pastry,
        OverlaySource::Chord,
        OverlaySource::Kademlia,
    ] {
        let mut cells = vec![format!("MPIL over {}", src.label())];
        for &p in &probabilities {
            let r = run_mpil_over(src, run_at(p));
            cells.push(format!("{:.1}", r.success_rate));
            eprintln!("MPIL/{} p={p}: {:.1}%", src.label(), r.success_rate);
        }
        table.row(cells);
    }
    println!(
        "Extension: maintained DHTs vs maintenance-free MPIL under flapping \
         ({nodes} nodes, {ops} lookups, idle:offline=30:30)"
    );
    println!(
        "{}",
        if csv {
            table.render_csv()
        } else {
            table.render()
        }
    );
}
