//! Tables 1 and 2: MPIL lookup success rate (%) over power-law
//! (Table 1) and random (Table 2) topologies, for max_flows ∈ {5, 10, 15}
//! × per-flow replicas ∈ {1..5}.
//!
//! Insertions use the paper's setting (max_flows = 30, per-flow
//! replicas = 5) before each grid.
//!
//! ```text
//! cargo run --release -p mpil-bench --bin table1_2_lookup_success [--full] [--csv] [--seed N]
//! ```

use mpil::MpilConfig;
use mpil_bench::scale::static_scale;
use mpil_bench::static_exp::{lookup_behavior, paper_insert_config, Family};
use mpil_bench::Args;
use mpil_workload::Table;

fn main() {
    let args = Args::parse_env();
    let (full, csv, seed) = args.standard();
    let scale = static_scale(full);
    let insert_config = paper_insert_config();
    let max_flows = [5u32, 10, 15];
    let replicas = [1u32, 2, 3, 4, 5];

    for (label, family) in [
        (
            "Table 1: MPIL lookup success rate over power-law topologies",
            Family::PowerLaw,
        ),
        (
            "Table 2: MPIL lookup success rate over random topologies",
            Family::Random {
                degree: scale.random_degree,
            },
        ),
    ] {
        let mut headers = vec!["# nodes".to_string(), "Max flows".to_string()];
        headers.extend(replicas.iter().map(|r| format!("r={r}")));
        let mut table = Table::new(headers);
        for &n in scale.sizes {
            for &mf in &max_flows {
                eprintln!("{}: {n} nodes, max_flows={mf}", family.label());
                let mut row = vec![n.to_string(), mf.to_string()];
                for &r in &replicas {
                    let lookup_config = MpilConfig::default()
                        .with_max_flows(mf)
                        .with_num_replicas(r);
                    let b = lookup_behavior(
                        family,
                        n,
                        scale.graphs,
                        scale.objects,
                        insert_config,
                        lookup_config,
                        seed,
                    );
                    row.push(format!("{:.1}", b.success_rate));
                }
                table.row(row);
            }
        }
        println!("{label}");
        println!(
            "{}",
            if csv {
                table.render_csv()
            } else {
                table.render()
            }
        );
    }
}
