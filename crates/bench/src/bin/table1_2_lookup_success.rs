//! Tables 1 and 2: MPIL lookup success rates
//! ([`mpil_bench::figures::table1_2_lookup_success`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin table1_2_lookup_success [--full] [--csv] [--seed N]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::table1_2_lookup_success(&args).print(args.flag("csv"));
}
