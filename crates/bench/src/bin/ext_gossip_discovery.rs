//! Extension: epidemic gossip discovery vs DHTs vs MPIL under flapping
//! ([`mpil_bench::figures::ext_gossip_discovery`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ext_gossip_discovery [--full] [--csv] [--seed N] [--nodes N] [--ops K] [--dissemination]
//! ```
//!
//! `--dissemination` switches to the dissemination-layer comparison:
//! Plumtree tree queries and FOAF bounded-fanout walks on the
//! HyParView/Plumtree engine vs the expanding-ring flood they replace
//! (plus MPIL routed over the frozen HyParView active graph), with
//! msgs/lookup and convergence-after-flap columns. The default table's
//! engine set, RNG streams, and bytes are unchanged.

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::ext_gossip_discovery(&args).print(args.flag("csv"));
}
