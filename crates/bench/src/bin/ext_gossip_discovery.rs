//! Extension: epidemic gossip discovery vs DHTs vs MPIL under flapping
//! ([`mpil_bench::figures::ext_gossip_discovery`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ext_gossip_discovery [--full] [--csv] [--seed N] [--nodes N] [--ops K]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::ext_gossip_discovery(&args).print(args.flag("csv"));
}
