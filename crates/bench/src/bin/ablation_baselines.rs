//! Baselines: MPIL vs Gnutella-style flooding vs k random walks.
//!
//! Section 1 of the paper dismisses flooding as "neither efficient nor
//! scalable" while acknowledging its robustness; Section 2 discusses
//! random-walk search (Lv et al.). This bench puts numbers on the
//! efficiency claim: success rate vs messages per lookup on the same
//! overlays and workload.
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ablation_baselines [--full] [--csv] [--seed N]
//! ```

use mpil::{MpilConfig, StaticEngine, UnstructuredEngine};
use mpil_bench::scale::static_scale;
use mpil_bench::static_exp::Family;
use mpil_bench::Args;
use mpil_id::Id;
use mpil_workload::{RunningStats, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse_env();
    let (full, csv, seed) = args.standard();
    let scale = static_scale(full);
    let n = *scale.sizes.last().expect("non-empty sizes");
    let objects = scale.objects;

    let mut table = Table::new(vec![
        "family".into(),
        "system".into(),
        "success %".into(),
        "msgs/lookup".into(),
        "hops".into(),
    ]);

    for family in [
        Family::PowerLaw,
        Family::Random {
            degree: scale.random_degree,
        },
    ] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = family.generate(n, &mut rng);
        let pairs: Vec<(Id, u32, u32)> = (0..objects)
            .map(|_| {
                (
                    Id::random(&mut rng),
                    rng.gen_range(0..n as u32),
                    rng.gen_range(0..n as u32),
                )
            })
            .collect();

        // MPIL: paper settings (insert 30x5, lookup 10x5).
        {
            let mut engine = StaticEngine::new(
                &topo,
                MpilConfig::default()
                    .with_max_flows(30)
                    .with_num_replicas(5),
                seed ^ 1,
            );
            for &(object, owner, _) in &pairs {
                engine.insert(mpil_overlay::NodeIdx::new(owner), object);
            }
            engine.set_config(
                MpilConfig::default()
                    .with_max_flows(10)
                    .with_num_replicas(5),
            );
            let (mut ok, mut msgs, mut hops) = (0u64, RunningStats::new(), RunningStats::new());
            for &(object, _, from) in &pairs {
                let r = engine.lookup(mpil_overlay::NodeIdx::new(from), object);
                msgs.push(r.messages as f64);
                if r.success {
                    ok += 1;
                    hops.push(f64::from(r.first_reply_hops.unwrap_or(0)));
                }
            }
            table.row(vec![
                family.label().into(),
                "MPIL (10x5)".into(),
                format!("{:.1}", 100.0 * ok as f64 / pairs.len() as f64),
                format!("{:.1}", msgs.mean()),
                format!("{:.2}", hops.mean()),
            ]);
        }

        // Flooding and random walks share a store with the same replica
        // budget MPIL gets (~#replicas MPIL creates ≈ 15), for fairness.
        for (label, kind) in [("Flooding (TTL=5)", 0u8), ("Random walks (10x50)", 1u8)] {
            let mut engine = UnstructuredEngine::new(&topo, seed ^ 2);
            for &(object, owner, _) in &pairs {
                engine.store(mpil_overlay::NodeIdx::new(owner), object, 14);
            }
            let (mut ok, mut msgs, mut hops) = (0u64, RunningStats::new(), RunningStats::new());
            for &(object, _, from) in &pairs {
                let r = match kind {
                    0 => engine.flood(mpil_overlay::NodeIdx::new(from), object, 5),
                    _ => engine.random_walk(mpil_overlay::NodeIdx::new(from), object, 10, 50),
                };
                msgs.push(r.messages as f64);
                if r.success {
                    ok += 1;
                    hops.push(f64::from(r.first_reply_hops.unwrap_or(0)));
                }
            }
            table.row(vec![
                family.label().into(),
                label.into(),
                format!("{:.1}", 100.0 * ok as f64 / pairs.len() as f64),
                format!("{:.1}", msgs.mean()),
                format!("{:.2}", hops.mean()),
            ]);
        }
    }
    println!("Baselines: MPIL vs unstructured search ({n} nodes, equal replica budgets)");
    println!(
        "{}",
        if csv {
            table.render_csv()
        } else {
            table.render()
        }
    );
}
