//! Baselines: MPIL vs Gnutella-style flooding vs k random walks
//! ([`mpil_bench::figures::ablation_baselines`]).
//!
//! ```text
//! cargo run --release -p mpil-bench --bin ablation_baselines [--full] [--csv] [--seed N]
//! ```

use mpil_bench::{figures, Args};

fn main() {
    let args = Args::parse_env();
    figures::ablation_baselines(&args).print(args.flag("csv"));
}
