//! A minimal flag parser for the experiment binaries (kept dependency-
//! free; the offline crate set has no argument-parsing crate).

use fxhash::FxHashMap;

/// Parsed command-line arguments.
///
/// Recognized forms: `--flag` (boolean) and `--key value`.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: Vec<String>,
    values: FxHashMap<String, String>,
}

impl Args {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage hint on malformed input (an option without the
    /// leading `--`).
    pub fn parse_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    ///
    /// # Panics
    ///
    /// Panics on a positional argument (everything must be `--`-prefixed).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            let Some(name) = a.strip_prefix("--") else {
                panic!("unexpected positional argument {a:?}; use --key value");
            };
            match iter.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = iter.next().expect("peeked");
                    out.values.insert(name.to_string(), v);
                }
                _ => out.flags.push(name.to_string()),
            }
        }
        out
    }

    /// Is the boolean flag present?
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of `--name value`, if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Parses `--name value` as a type, with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but unparseable.
    pub fn value_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.value(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|e| panic!("--{name} {v:?}: {e:?}")),
        }
    }

    /// Standard experiment knobs: (`--full`, `--csv`, `--seed`).
    pub fn standard(&self) -> (bool, bool, u64) {
        (
            self.flag("full"),
            self.flag("csv"),
            self.value_or("seed", 42),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn flags_and_values() {
        let a = parse("--full --seed 7 --csv --nodes 1000");
        assert!(a.flag("full"));
        assert!(a.flag("csv"));
        assert!(!a.flag("quick"));
        assert_eq!(a.value("seed"), Some("7"));
        assert_eq!(a.value_or::<u64>("seed", 0), 7);
        assert_eq!(a.value_or::<usize>("nodes", 0), 1000);
        assert_eq!(a.value_or::<usize>("missing", 9), 9);
    }

    #[test]
    fn standard_triple() {
        let (full, csv, seed) = parse("--seed 5").standard();
        assert!(!full && !csv);
        assert_eq!(seed, 5);
    }

    #[test]
    #[should_panic(expected = "positional")]
    fn rejects_positionals() {
        let _ = parse("oops");
    }

    #[test]
    #[should_panic]
    fn rejects_bad_numbers() {
        let a = parse("--seed banana");
        let _ = a.value_or::<u64>("seed", 0);
    }
}
