//! Static-overlay experiment runners (Section 6.1: Figures 9–10,
//! Tables 1–3).
//!
//! Independent overlays fan out across the
//! [`mpil_harness::ExperimentRunner`] worker pool; per-graph samples
//! are collected in graph order and merged sequentially, so the
//! parallel run is bit-identical to the historical sequential loop.

use mpil::{MpilConfig, StaticEngine};
use mpil_harness::ExperimentRunner;
use mpil_overlay::{generators, Topology};
use mpil_workload::{InsertLookupWorkload, RunningStats, WorkloadConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The two overlay families of Section 6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Inet-style power-law graphs ("0% of degree 1 nodes").
    PowerLaw,
    /// Random `d`-regular graphs (`d = 100` in the paper).
    Random {
        /// Node degree.
        degree: usize,
    },
}

impl Family {
    /// Human-readable label used in table rows.
    pub fn label(&self) -> &'static str {
        match self {
            Family::PowerLaw => "Power-Law",
            Family::Random { .. } => "Random",
        }
    }

    /// Generates one overlay of this family.
    ///
    /// # Panics
    ///
    /// Panics if generation fails (infeasible parameters).
    pub fn generate(&self, nodes: usize, rng: &mut SmallRng) -> Topology {
        match self {
            Family::PowerLaw => {
                generators::power_law(nodes, Default::default(), rng).expect("power-law generation")
            }
            Family::Random { degree } => {
                generators::random_regular(nodes, *degree, rng).expect("regular generation")
            }
        }
    }
}

/// The per-graph seed derivation (unchanged since the seed state; the
/// calibrated tests and the recorded baselines depend on it).
fn graph_seed(seed: u64, g: usize) -> u64 {
    seed ^ (g as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Aggregated insertion behavior over several graphs (Figure 9's three
/// panels).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InsertionBehavior {
    /// Mean replicas per insertion.
    pub mean_replicas: f64,
    /// Mean messages (traffic) per insertion.
    pub mean_traffic: f64,
    /// Total duplicate receptions across all insertions.
    pub total_duplicates: u64,
    /// Mean flows actually created per insertion.
    pub mean_flows: f64,
    /// Number of insertions aggregated.
    pub insertions: u64,
}

/// One graph's raw insertion samples, in insertion order.
struct InsertionSamples {
    /// Per-insertion (replicas, messages, flows) triples.
    per_insert: Vec<(f64, f64, f64)>,
    duplicates: u64,
}

/// Runs Figure 9's insertion workload: `graphs` overlays of `nodes`
/// nodes; `objects` insertions per overlay from random origins, with the
/// paper's insert parameters (`max_flows`, `num_replicas`).
pub fn insertion_behavior(
    family: Family,
    nodes: usize,
    graphs: usize,
    objects: usize,
    config: MpilConfig,
    seed: u64,
) -> InsertionBehavior {
    insertion_behavior_on(
        &ExperimentRunner::default(),
        family,
        nodes,
        graphs,
        objects,
        config,
        seed,
    )
}

/// [`insertion_behavior`] on an explicit runner (worker count must not
/// affect results — the conformance of that claim is tested).
#[allow(clippy::too_many_arguments)]
pub fn insertion_behavior_on(
    runner: &ExperimentRunner,
    family: Family,
    nodes: usize,
    graphs: usize,
    objects: usize,
    config: MpilConfig,
    seed: u64,
) -> InsertionBehavior {
    let graph_indices: Vec<usize> = (0..graphs).collect();
    let per_graph = runner.map(&graph_indices, |&g| {
        let gseed = graph_seed(seed, g);
        let mut rng = SmallRng::seed_from_u64(gseed);
        let topo = family.generate(nodes, &mut rng);
        let workload = InsertLookupWorkload::generate(WorkloadConfig {
            objects,
            nodes,
            fixed_origin: None,
            seed: gseed ^ 0xabcd,
        });
        let mut engine = StaticEngine::new(&topo, config, gseed ^ 0x1234);
        let mut samples = InsertionSamples {
            per_insert: Vec::with_capacity(objects),
            duplicates: 0,
        };
        for (object, origin) in workload.inserts() {
            let r = engine.insert(origin, object);
            samples.per_insert.push((
                f64::from(r.replicas),
                r.messages as f64,
                f64::from(r.flows_created),
            ));
            samples.duplicates += r.duplicates;
        }
        samples
    });

    let mut replicas = RunningStats::new();
    let mut traffic = RunningStats::new();
    let mut flows = RunningStats::new();
    let mut duplicates = 0u64;
    for samples in &per_graph {
        for &(r, m, f) in &samples.per_insert {
            replicas.push(r);
            traffic.push(m);
            flows.push(f);
        }
        duplicates += samples.duplicates;
    }
    InsertionBehavior {
        mean_replicas: replicas.mean(),
        mean_traffic: traffic.mean(),
        total_duplicates: duplicates,
        mean_flows: flows.mean(),
        insertions: replicas.count(),
    }
}

/// Aggregated lookup behavior (Tables 1–3, Figure 10).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LookupBehavior {
    /// Fraction of lookups that found the object, in percent.
    pub success_rate: f64,
    /// Mean first-reply hop count over successful lookups.
    pub mean_hops: f64,
    /// Mean messages per lookup (whole lifetime).
    pub mean_traffic: f64,
    /// Mean messages until the first reply, over successful lookups.
    pub mean_traffic_to_first_reply: f64,
    /// Mean flows actually created per lookup (Table 3).
    pub mean_flows: f64,
    /// Number of lookups aggregated.
    pub lookups: u64,
}

/// One lookup's raw measurements: messages, flows, and — when it
/// succeeded — (first_reply_hops, messages_until_first_reply).
type LookupSample = (f64, f64, Option<(f64, f64)>);

/// One graph's raw lookup samples, in lookup order.
struct LookupSamples {
    per_lookup: Vec<LookupSample>,
}

/// Runs the Section 6.1 lookup methodology: for each of `graphs`
/// overlays, insert `objects` objects with `insert_config`, then look
/// each up from a fresh random origin with `lookup_config`.
pub fn lookup_behavior(
    family: Family,
    nodes: usize,
    graphs: usize,
    objects: usize,
    insert_config: MpilConfig,
    lookup_config: MpilConfig,
    seed: u64,
) -> LookupBehavior {
    lookup_behavior_on(
        &ExperimentRunner::default(),
        family,
        nodes,
        graphs,
        objects,
        insert_config,
        lookup_config,
        seed,
    )
}

/// [`lookup_behavior`] on an explicit runner (worker count must not
/// affect results — the conformance of that claim is tested).
#[allow(clippy::too_many_arguments)]
pub fn lookup_behavior_on(
    runner: &ExperimentRunner,
    family: Family,
    nodes: usize,
    graphs: usize,
    objects: usize,
    insert_config: MpilConfig,
    lookup_config: MpilConfig,
    seed: u64,
) -> LookupBehavior {
    let graph_indices: Vec<usize> = (0..graphs).collect();
    let per_graph = runner.map(&graph_indices, |&g| {
        let gseed = graph_seed(seed, g);
        let mut rng = SmallRng::seed_from_u64(gseed);
        let topo = family.generate(nodes, &mut rng);
        let workload = InsertLookupWorkload::generate(WorkloadConfig {
            objects,
            nodes,
            fixed_origin: None,
            seed: gseed ^ 0xabcd,
        });
        let mut engine = StaticEngine::new(&topo, insert_config, gseed ^ 0x1234);
        for (object, origin) in workload.inserts() {
            engine.insert(origin, object);
        }
        engine.set_config(lookup_config);
        let mut samples = LookupSamples {
            per_lookup: Vec::with_capacity(objects),
        };
        for (object, origin) in workload.lookups() {
            let r = engine.lookup(origin, object);
            let success = r.success.then(|| {
                (
                    f64::from(r.first_reply_hops.unwrap_or(0)),
                    r.messages_until_first_reply as f64,
                )
            });
            samples
                .per_lookup
                .push((r.messages as f64, f64::from(r.flows_created), success));
        }
        samples
    });

    let mut hops = RunningStats::new();
    let mut traffic = RunningStats::new();
    let mut first_traffic = RunningStats::new();
    let mut flows = RunningStats::new();
    let mut successes = 0u64;
    let mut total = 0u64;
    for samples in &per_graph {
        for &(messages, flow_count, success) in &samples.per_lookup {
            total += 1;
            traffic.push(messages);
            flows.push(flow_count);
            if let Some((h, first)) = success {
                successes += 1;
                hops.push(h);
                first_traffic.push(first);
            }
        }
    }
    LookupBehavior {
        success_rate: 100.0 * successes as f64 / total.max(1) as f64,
        mean_hops: hops.mean(),
        mean_traffic: traffic.mean(),
        mean_traffic_to_first_reply: first_traffic.mean(),
        mean_flows: flows.mean(),
        lookups: total,
    }
}

/// The paper's insertion parameters for Section 6.1 (`max_flows = 30`,
/// per-flow replicas = 5, DS on).
pub fn paper_insert_config() -> MpilConfig {
    MpilConfig::default()
        .with_max_flows(30)
        .with_num_replicas(5)
        .with_duplicate_suppression(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_labels_and_generation() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(Family::PowerLaw.label(), "Power-Law");
        assert_eq!(Family::Random { degree: 8 }.label(), "Random");
        let t = Family::Random { degree: 8 }.generate(100, &mut rng);
        assert_eq!(t.len(), 100);
        let p = Family::PowerLaw.generate(100, &mut rng);
        assert_eq!(p.len(), 100);
    }

    #[test]
    fn insertion_behavior_respects_bounds() {
        let cfg = paper_insert_config();
        let b = insertion_behavior(Family::Random { degree: 12 }, 200, 2, 20, cfg, 7);
        assert_eq!(b.insertions, 40);
        assert!(b.mean_replicas >= 1.0);
        assert!(b.mean_replicas <= 150.0, "bound max_flows*replicas");
        assert!(b.mean_traffic > 0.0);
        assert!(b.mean_flows <= 30.0);
    }

    #[test]
    fn lookup_success_improves_with_redundancy() {
        let ins = paper_insert_config();
        let weak = MpilConfig::default().with_max_flows(2).with_num_replicas(1);
        let strong = MpilConfig::default()
            .with_max_flows(15)
            .with_num_replicas(5);
        let lo = lookup_behavior(Family::PowerLaw, 300, 2, 30, ins, weak, 11);
        let hi = lookup_behavior(Family::PowerLaw, 300, 2, 30, ins, strong, 11);
        assert!(hi.success_rate >= lo.success_rate);
        assert!(hi.success_rate > 80.0, "strong config should mostly hit");
    }

    #[test]
    fn deterministic_runs() {
        let cfg = paper_insert_config();
        let a = insertion_behavior(Family::PowerLaw, 150, 2, 15, cfg, 3);
        let b = insertion_behavior(Family::PowerLaw, 150, 2, 15, cfg, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_graph_fanout_matches_sequential() {
        // The merge is ordered, so worker count cannot change results:
        // one worker (strictly sequential) vs more workers than graphs.
        let cfg = paper_insert_config();
        let lookup = MpilConfig::default().with_max_flows(8).with_num_replicas(3);
        let fam = Family::Random { degree: 10 };
        let seq = ExperimentRunner::new(1);
        let par = ExperimentRunner::new(4);
        let a = lookup_behavior_on(&seq, fam, 150, 3, 10, cfg, lookup, 9);
        let b = lookup_behavior_on(&par, fam, 150, 3, 10, cfg, lookup, 9);
        assert_eq!(a, b);
        let a = insertion_behavior_on(&seq, fam, 150, 3, 10, cfg, 9);
        let b = insertion_behavior_on(&par, fam, 150, 3, 10, cfg, 9);
        assert_eq!(a, b);
    }
}
