//! # mpil-bench
//!
//! The benchmark harness that regenerates **every table and figure** of
//! the paper's evaluation. Each `src/bin/*` binary prints one table or
//! figure's rows/series; this library holds the shared experiment
//! runners so the binaries, the integration tests, and the Criterion
//! performance benches all exercise the same code.
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Figure 1 (MSPastry under perturbation) | `fig1_pastry_perturbation` |
//! | Figure 7 (expected local maxima) | `fig7_local_maxima` |
//! | Figure 8 (expected replicas, complete) | `fig8_complete_replicas` |
//! | Figure 9 (insertion behavior) | `fig9_insertion` |
//! | Figure 10 (lookup latency & traffic) | `fig10_lookup_cost` |
//! | Tables 1–2 (lookup success rates) | `table1_2_lookup_success` |
//! | Table 3 (actual flows) | `table3_flows` |
//! | Figure 11 (success under perturbation, 4 systems) | `fig11_perturbation` |
//! | Figure 12 (lookup & total traffic) | `fig12_traffic` |
//!
//! Beyond the paper: `ablation_split_policy`, `ablation_metric`,
//! `ablation_baselines` (flooding / random walks), `ext_churn_traces`
//! (trace-driven churn), `ext_link_loss` (loss injection),
//! `ext_overlay_independence` (five overlay families),
//! `ext_dht_comparison` (Chord / Kademlia baselines), and
//! `ext_gossip_discovery` (the epidemic `mpil-gossip` engine — k-walk
//! and expanding-ring — vs DHTs vs MPIL over the gossip views).
//!
//! All binaries accept `--full` (paper-scale parameters), `--csv`
//! (machine-readable output), and `--seed <u64>`.
//!
//! Since the `mpil-harness` refactor, every binary is a thin shim over
//! a [`figures`] function: the experiments fan out through
//! [`mpil_harness::ExperimentRunner`] and drive the engines through
//! [`mpil_harness::DiscoveryEngine`], and all output goes through
//! [`mpil_harness::Report`]. The historical entry points in
//! [`perturb`] and [`dhts`] remain as wrappers over the harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod dhts;
pub mod figures;
pub mod perturb;
pub mod scale;
pub mod scale_curve;
pub mod static_exp;

pub use cli::Args;
