//! Cross-DHT experiment entry points (extensions beyond the paper).
//!
//! The paper demonstrates overlay-independence by running MPIL over the
//! MSPastry overlay. With Chord and Kademlia implemented as additional
//! substrates, two stronger statements become testable:
//!
//! * **overlay-independence, widened** — MPIL over the frozen neighbor
//!   graph of *any* structured overlay (Pastry's leaf sets ∪ routing
//!   tables, Chord's successors ∪ fingers, Kademlia's buckets) and of
//!   the unstructured families, with comparable success/cost;
//! * **baseline-independence** — the Figure 11 result (redundant flows
//!   beat maintained single-path routing under perturbation) holds
//!   against Chord and single-copy Kademlia too, not just MSPastry.
//!
//! The engines themselves run through
//! [`mpil_harness::DiscoveryEngine`]; this module keeps the extension
//! experiments' vocabulary ([`Baseline`]) and maps it onto
//! [`EngineSpec`]s.

use mpil_harness::{EngineSpec, Scenario};
use mpil_overlay::{generators, NodeIdx, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::perturb::{PerturbResult, PerturbRun};

pub use mpil_harness::OverlaySource;

/// Runs MPIL (no maintenance) over the frozen neighbor graph of
/// `source` under the flapping parameters of `run`.
pub fn run_mpil_over(source: OverlaySource, run: PerturbRun) -> PerturbResult {
    mpil_harness::run_scenario(&Scenario::new(EngineSpec::MpilOver(source), run))
}

/// Which maintained DHT baseline to run natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// MSPastry with full maintenance.
    Pastry,
    /// Chord with stabilize/fix-fingers/check-predecessor.
    Chord,
    /// Kademlia with the given `(k, alpha)`.
    Kademlia {
        /// Bucket size / replication factor.
        k: usize,
        /// Lookup parallelism.
        alpha: usize,
    },
}

impl Baseline {
    /// Label used in tables.
    pub fn label(&self) -> String {
        self.spec().label()
    }

    /// The harness engine this baseline names.
    pub fn spec(&self) -> EngineSpec {
        match self {
            Baseline::Pastry => EngineSpec::Pastry {
                replication_on_route: false,
            },
            Baseline::Chord => EngineSpec::Chord,
            Baseline::Kademlia { k, alpha } => EngineSpec::Kademlia {
                k: *k,
                alpha: *alpha,
            },
        }
    }
}

/// Runs a maintained DHT baseline under the flapping parameters of
/// `run`, mirroring the paper's two-stage methodology.
pub fn run_baseline(baseline: Baseline, run: PerturbRun) -> f64 {
    mpil_harness::run_scenario(&Scenario::new(baseline.spec(), run)).success_rate
}

/// Mean out-degree of a frozen neighbor-list set (diagnostics/degree
/// stats for the tables).
pub fn mean_out_degree(neighbors: &[Vec<NodeIdx>]) -> f64 {
    if neighbors.is_empty() {
        return 0.0;
    }
    neighbors.iter().map(Vec::len).sum::<usize>() as f64 / neighbors.len() as f64
}

/// Convenience used by tests: a small static topology.
pub fn small_topology(seed: u64) -> Topology {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::random_regular(60, 8, &mut rng).expect("generator")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini(p: f64) -> PerturbRun {
        PerturbRun {
            nodes: 120,
            operations: 15,
            idle_secs: 30,
            offline_secs: 30,
            probability: p,
            deadline_cap_secs: 60,
            loss_probability: 0.0,
            seed: 3,
        }
    }

    #[test]
    fn every_source_builds_a_usable_graph() {
        for src in [
            OverlaySource::Pastry,
            OverlaySource::Chord,
            OverlaySource::Kademlia,
            OverlaySource::RandomRegular(8),
            OverlaySource::PowerLaw,
        ] {
            let (ids, nbrs) = src.build(100, 5);
            assert_eq!(ids.len(), 100, "{}", src.label());
            assert_eq!(nbrs.len(), 100);
            assert!(mean_out_degree(&nbrs) >= 1.0, "{}", src.label());
            for (i, list) in nbrs.iter().enumerate() {
                assert!(
                    !list.contains(&NodeIdx::new(i as u32)),
                    "{}: node {i} lists itself",
                    src.label()
                );
            }
        }
    }

    #[test]
    fn mpil_is_near_perfect_on_every_overlay_unperturbed() {
        for src in [
            OverlaySource::Pastry,
            OverlaySource::Chord,
            OverlaySource::Kademlia,
            OverlaySource::RandomRegular(8),
            OverlaySource::PowerLaw,
        ] {
            let r = run_mpil_over(src, mini(0.0));
            assert!(
                r.success_rate >= 90.0,
                "{}: {}",
                src.label(),
                r.success_rate
            );
        }
    }

    #[test]
    fn chord_baseline_runs_and_degrades() {
        let calm = run_baseline(Baseline::Chord, mini(0.0));
        let storm = run_baseline(Baseline::Chord, mini(0.95));
        assert!(calm >= 90.0, "calm {calm}");
        assert!(storm <= calm, "storm {storm} calm {calm}");
    }

    #[test]
    fn kademlia_single_copy_baseline_runs() {
        let calm = run_baseline(Baseline::Kademlia { k: 1, alpha: 1 }, mini(0.0));
        assert!(calm >= 85.0, "calm {calm}");
    }

    #[test]
    fn labels_are_informative() {
        assert!(Baseline::Kademlia { k: 8, alpha: 3 }
            .label()
            .contains("k=8"));
        assert!(OverlaySource::RandomRegular(16).label().contains("16"));
    }
}
