//! Cross-DHT experiment runners (extensions beyond the paper).
//!
//! The paper demonstrates overlay-independence by running MPIL over the
//! MSPastry overlay. With Chord and Kademlia implemented as additional
//! substrates, two stronger statements become testable:
//!
//! * **overlay-independence, widened** — MPIL over the frozen neighbor
//!   graph of *any* structured overlay (Pastry's leaf sets ∪ routing
//!   tables, Chord's successors ∪ fingers, Kademlia's buckets) and of
//!   the unstructured families, with comparable success/cost;
//! * **baseline-independence** — the Figure 11 result (redundant flows
//!   beat maintained single-path routing under perturbation) holds
//!   against Chord and single-copy Kademlia too, not just MSPastry.

use mpil::{DynamicConfig, DynamicNetwork, LookupStatus, MpilConfig};
use mpil_chord::{ChordConfig, ChordSim};
use mpil_id::Id;
use mpil_kademlia::{KademliaConfig, KademliaSim};
use mpil_overlay::{generators, NodeIdx, Topology};
use mpil_pastry::PastryConfig;
use mpil_sim::{AlwaysOn, ConstantLatency, Flapping, FlappingConfig, SimDuration};
use mpil_workload::RunningStats;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::perturb::{PerturbResult, PerturbRun};

/// A source of frozen neighbor graphs for MPIL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlaySource {
    /// Pastry leaf sets ∪ routing tables.
    Pastry,
    /// Chord successors ∪ fingers ∪ predecessor.
    Chord,
    /// Kademlia bucket contents.
    Kademlia,
    /// Random regular graph with the given degree.
    RandomRegular(usize),
    /// Inet-style power-law graph.
    PowerLaw,
}

impl OverlaySource {
    /// Label used in tables.
    pub fn label(&self) -> String {
        match self {
            OverlaySource::Pastry => "Pastry overlay".into(),
            OverlaySource::Chord => "Chord overlay".into(),
            OverlaySource::Kademlia => "Kademlia overlay".into(),
            OverlaySource::RandomRegular(d) => format!("random d={d}"),
            OverlaySource::PowerLaw => "power-law".into(),
        }
    }

    /// Builds the frozen (ids, neighbor lists) pair.
    ///
    /// # Panics
    ///
    /// Panics if a generator fails for the requested size (degree too
    /// large for `nodes`, etc.).
    pub fn build(&self, nodes: usize, seed: u64) -> (Vec<Id>, Vec<Vec<NodeIdx>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            OverlaySource::Pastry => {
                let config = PastryConfig::default();
                let ids = mpil_pastry::bootstrap::random_ids(nodes, &mut rng);
                let states = mpil_pastry::build_converged_states(&ids, &config, &mut rng);
                let nbrs = states.iter().map(|s| s.neighbor_list()).collect();
                (ids, nbrs)
            }
            OverlaySource::Chord => {
                let config = ChordConfig::default();
                let ids = mpil_chord::random_ids(nodes, &mut rng);
                let states = mpil_chord::build_converged_states(&ids, &config);
                let nbrs = states.iter().map(|s| s.neighbor_list()).collect();
                (ids, nbrs)
            }
            OverlaySource::Kademlia => {
                let config = KademliaConfig::default();
                let ids = mpil_chord::random_ids(nodes, &mut rng);
                let tables = mpil_kademlia::build_converged_tables(&ids, &config);
                let nbrs = tables.iter().map(|t| t.iter().collect()).collect();
                (ids, nbrs)
            }
            OverlaySource::RandomRegular(d) => {
                let topo = generators::random_regular(nodes, *d, &mut rng).expect("generator");
                let nbrs = topo
                    .iter_nodes()
                    .map(|n| topo.neighbors(n).to_vec())
                    .collect();
                (topo.ids().to_vec(), nbrs)
            }
            OverlaySource::PowerLaw => {
                let topo =
                    generators::power_law(nodes, Default::default(), &mut rng).expect("generator");
                let nbrs = topo
                    .iter_nodes()
                    .map(|n| topo.neighbors(n).to_vec())
                    .collect();
                (topo.ids().to_vec(), nbrs)
            }
        }
    }
}

/// Runs MPIL (no maintenance) over the frozen neighbor graph of
/// `source` under the flapping parameters of `run`.
pub fn run_mpil_over(source: OverlaySource, run: PerturbRun) -> PerturbResult {
    let (ids, neighbors) = source.build(run.nodes, run.seed);
    let mut rng = SmallRng::seed_from_u64(run.seed ^ 0xdada);
    let mpil_config = MpilConfig::default()
        .with_max_flows(10)
        .with_num_replicas(5)
        .with_duplicate_suppression(false);
    let mut net = DynamicNetwork::new(
        ids,
        neighbors,
        DynamicConfig {
            mpil: mpil_config,
            heartbeat_period: None,
        },
        Box::new(AlwaysOn),
        Box::new(ConstantLatency(SimDuration::from_millis(20))),
        run.seed ^ 0x5151,
    );

    let origin = NodeIdx::new(0);
    let objects: Vec<Id> = (0..run.operations).map(|_| Id::random(&mut rng)).collect();
    for &o in &objects {
        net.insert(origin, o);
    }
    net.run_to_quiescence();
    let mean_replicas = {
        let mut s = RunningStats::new();
        for &o in &objects {
            s.push(net.replica_holders(o).len() as f64);
        }
        s.mean()
    };

    let flap_cfg = FlappingConfig {
        idle: SimDuration::from_secs(run.idle_secs),
        offline: SimDuration::from_secs(run.offline_secs),
        probability: run.probability,
        start: net.now(),
    };
    let mut flap = Flapping::new(flap_cfg, run.nodes, run.seed ^ 0xf1a9, &mut rng);
    flap.exempt(origin);
    net.set_availability(Box::new(flap));
    net.set_loss_probability(run.loss_probability);
    let start = net.now();
    let period = SimDuration::from_secs(run.idle_secs + run.offline_secs);
    let window =
        SimDuration::from_secs((run.idle_secs + run.offline_secs).min(run.deadline_cap_secs));

    let before = net.stats();
    let before_net = net.net_stats();
    let mut handles = Vec::with_capacity(objects.len());
    for (i, &o) in objects.iter().enumerate() {
        let at = start + period * (i as u64 + 1);
        net.run_until(at);
        handles.push(net.issue_lookup(origin, o, at + window));
    }
    net.run_until(net.now() + window + SimDuration::from_secs(30));

    let mut hops = RunningStats::new();
    let mut ok = 0u64;
    for &h in &handles {
        if let LookupStatus::Succeeded { hops: hp, .. } = net.lookup_status(h) {
            ok += 1;
            hops.push(f64::from(hp));
        }
    }
    let after = net.stats();
    let after_net = net.net_stats();
    PerturbResult {
        success_rate: 100.0 * ok as f64 / handles.len().max(1) as f64,
        lookup_messages: after.lookup_messages - before.lookup_messages,
        total_messages: after_net.sent - before_net.sent,
        mean_reply_hops: hops.mean(),
        mean_replicas,
    }
}

/// Which maintained DHT baseline to run natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// MSPastry with full maintenance.
    Pastry,
    /// Chord with stabilize/fix-fingers/check-predecessor.
    Chord,
    /// Kademlia with the given `(k, alpha)`.
    Kademlia {
        /// Bucket size / replication factor.
        k: usize,
        /// Lookup parallelism.
        alpha: usize,
    },
}

impl Baseline {
    /// Label used in tables.
    pub fn label(&self) -> String {
        match self {
            Baseline::Pastry => "MSPastry".into(),
            Baseline::Chord => "Chord".into(),
            Baseline::Kademlia { k, alpha } => format!("Kademlia k={k} α={alpha}"),
        }
    }
}

/// Runs a maintained DHT baseline under the flapping parameters of
/// `run`, mirroring the paper's two-stage methodology.
pub fn run_baseline(baseline: Baseline, run: PerturbRun) -> f64 {
    match baseline {
        Baseline::Pastry => {
            crate::perturb::run_pastry(crate::perturb::System::Pastry, run).success_rate
        }
        Baseline::Chord => run_chord(run),
        Baseline::Kademlia { k, alpha } => run_kademlia(run, k, alpha),
    }
}

fn run_chord(run: PerturbRun) -> f64 {
    let config = ChordConfig::default();
    let mut rng = SmallRng::seed_from_u64(run.seed);
    let ids = mpil_chord::random_ids(run.nodes, &mut rng);
    let states = mpil_chord::build_converged_states(&ids, &config);
    let mut sim = ChordSim::new(
        ids,
        states,
        config,
        Box::new(AlwaysOn),
        Box::new(ConstantLatency(SimDuration::from_millis(20))),
        run.seed ^ 0x5151,
    );
    let origin = NodeIdx::new(0);
    let objects: Vec<Id> = (0..run.operations).map(|_| Id::random(&mut rng)).collect();
    for &o in &objects {
        sim.insert(origin, o);
    }
    sim.run_to_quiescence();
    sim.start_maintenance();

    let flap_cfg = FlappingConfig {
        idle: SimDuration::from_secs(run.idle_secs),
        offline: SimDuration::from_secs(run.offline_secs),
        probability: run.probability,
        start: sim.now(),
    };
    let mut flap = Flapping::new(flap_cfg, run.nodes, run.seed ^ 0xf1a9, &mut rng);
    flap.exempt(origin);
    sim.set_availability(Box::new(flap));
    sim.set_loss_probability(run.loss_probability);
    let start = sim.now();
    let period = SimDuration::from_secs(run.idle_secs + run.offline_secs);
    let window =
        SimDuration::from_secs((run.idle_secs + run.offline_secs).min(run.deadline_cap_secs));

    let mut handles = Vec::with_capacity(objects.len());
    for (i, &o) in objects.iter().enumerate() {
        let at = start + period * (i as u64 + 1);
        sim.run_until(at);
        handles.push(sim.issue_lookup(origin, o, at + window));
    }
    sim.run_until(sim.now() + window + SimDuration::from_secs(30));
    let ok = handles
        .iter()
        .filter(|&&h| {
            matches!(
                sim.lookup_outcome(h),
                mpil_chord::LookupOutcome::Succeeded { .. }
            )
        })
        .count();
    100.0 * ok as f64 / handles.len().max(1) as f64
}

fn run_kademlia(run: PerturbRun, k: usize, alpha: usize) -> f64 {
    let config = KademliaConfig::default().with_k(k).with_alpha(alpha);
    let mut rng = SmallRng::seed_from_u64(run.seed);
    let ids = mpil_chord::random_ids(run.nodes, &mut rng);
    let tables = mpil_kademlia::build_converged_tables(&ids, &config);
    let mut sim = KademliaSim::new(
        ids,
        tables,
        config,
        Box::new(AlwaysOn),
        Box::new(ConstantLatency(SimDuration::from_millis(20))),
        run.seed ^ 0x5151,
    );
    let origin = NodeIdx::new(0);
    let objects: Vec<Id> = (0..run.operations).map(|_| Id::random(&mut rng)).collect();
    for &o in &objects {
        sim.insert(origin, o);
    }
    sim.run_to_quiescence();
    sim.start_maintenance();

    let flap_cfg = FlappingConfig {
        idle: SimDuration::from_secs(run.idle_secs),
        offline: SimDuration::from_secs(run.offline_secs),
        probability: run.probability,
        start: sim.now(),
    };
    let mut flap = Flapping::new(flap_cfg, run.nodes, run.seed ^ 0xf1a9, &mut rng);
    flap.exempt(origin);
    sim.set_availability(Box::new(flap));
    sim.set_loss_probability(run.loss_probability);
    let start = sim.now();
    let period = SimDuration::from_secs(run.idle_secs + run.offline_secs);
    let window =
        SimDuration::from_secs((run.idle_secs + run.offline_secs).min(run.deadline_cap_secs));

    let mut handles = Vec::with_capacity(objects.len());
    for (i, &o) in objects.iter().enumerate() {
        let at = start + period * (i as u64 + 1);
        sim.run_until(at);
        handles.push(sim.issue_lookup(origin, o, at + window));
    }
    sim.run_until(sim.now() + window + SimDuration::from_secs(30));
    let ok = handles
        .iter()
        .filter(|&&h| {
            matches!(
                sim.lookup_outcome(h),
                mpil_kademlia::LookupOutcome::Succeeded { .. }
            )
        })
        .count();
    100.0 * ok as f64 / handles.len().max(1) as f64
}

/// Builds a [`Topology`] from a frozen neighbor-list pair by
/// symmetrizing directed pointers (diagnostics/degree stats for the
/// tables).
pub fn mean_out_degree(neighbors: &[Vec<NodeIdx>]) -> f64 {
    if neighbors.is_empty() {
        return 0.0;
    }
    neighbors.iter().map(Vec::len).sum::<usize>() as f64 / neighbors.len() as f64
}

/// Convenience used by tests: a small static topology.
pub fn small_topology(seed: u64) -> Topology {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::random_regular(60, 8, &mut rng).expect("generator")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini(p: f64) -> PerturbRun {
        PerturbRun {
            nodes: 120,
            operations: 15,
            idle_secs: 30,
            offline_secs: 30,
            probability: p,
            deadline_cap_secs: 60,
            loss_probability: 0.0,
            seed: 3,
        }
    }

    #[test]
    fn every_source_builds_a_usable_graph() {
        for src in [
            OverlaySource::Pastry,
            OverlaySource::Chord,
            OverlaySource::Kademlia,
            OverlaySource::RandomRegular(8),
            OverlaySource::PowerLaw,
        ] {
            let (ids, nbrs) = src.build(100, 5);
            assert_eq!(ids.len(), 100, "{}", src.label());
            assert_eq!(nbrs.len(), 100);
            assert!(mean_out_degree(&nbrs) >= 1.0, "{}", src.label());
            for (i, list) in nbrs.iter().enumerate() {
                assert!(
                    !list.contains(&NodeIdx::new(i as u32)),
                    "{}: node {i} lists itself",
                    src.label()
                );
            }
        }
    }

    #[test]
    fn mpil_is_near_perfect_on_every_overlay_unperturbed() {
        for src in [
            OverlaySource::Pastry,
            OverlaySource::Chord,
            OverlaySource::Kademlia,
            OverlaySource::RandomRegular(8),
            OverlaySource::PowerLaw,
        ] {
            let r = run_mpil_over(src, mini(0.0));
            assert!(
                r.success_rate >= 90.0,
                "{}: {}",
                src.label(),
                r.success_rate
            );
        }
    }

    #[test]
    fn chord_baseline_runs_and_degrades() {
        let calm = run_baseline(Baseline::Chord, mini(0.0));
        let storm = run_baseline(Baseline::Chord, mini(0.95));
        assert!(calm >= 90.0, "calm {calm}");
        assert!(storm <= calm, "storm {storm} calm {calm}");
    }

    #[test]
    fn kademlia_single_copy_baseline_runs() {
        let calm = run_baseline(Baseline::Kademlia { k: 1, alpha: 1 }, mini(0.0));
        assert!(calm >= 85.0, "calm {calm}");
    }

    #[test]
    fn labels_are_informative() {
        assert!(Baseline::Kademlia { k: 8, alpha: 3 }
            .label()
            .contains("k=8"));
        assert!(OverlaySource::RandomRegular(16).label().contains("16"));
    }
}
