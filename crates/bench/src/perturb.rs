//! Perturbation experiment runners (Sections 3 and 6.2: Figures 1, 11,
//! 12).
//!
//! Methodology, following the paper: 1000 nodes over a GT-ITM-style
//! transit-stub Internet topology. Stage 1 inserts 1000 objects from one
//! designated origin node on the static overlay. Stage 2 turns on
//! periodic flapping (the origin is exempt — it is the experimenter's
//! observation point) and issues one lookup per flapping period for the
//! same objects. Success = a positive reply before the deadline
//! (`min(period, 60 s)`, the cap standing in for MSPastry's application
//! timeout; see EXPERIMENTS.md).

use mpil::{DynamicConfig, DynamicNetwork, LookupStatus, MpilConfig};
use mpil_overlay::transit_stub::{self, TransitStubConfig};
use mpil_overlay::NodeIdx;
use mpil_pastry::{build_converged_states, LookupOutcome, PastryConfig, PastrySim};
use mpil_sim::{AlwaysOn, Flapping, FlappingConfig, SimDuration, TransitStubLatency};
use mpil_workload::RunningStats;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The four systems Figure 11 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum System {
    /// MSPastry with all maintenance (Figure 1 / "MSPastry").
    Pastry,
    /// MSPastry plus Replication on Route.
    PastryRr,
    /// MPIL over the frozen Pastry overlay, duplicate suppression on.
    MpilDs,
    /// MPIL over the frozen Pastry overlay, duplicate suppression off.
    MpilNoDs,
}

impl System {
    /// The label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            System::Pastry => "MSPastry",
            System::PastryRr => "MSPastry with RR",
            System::MpilDs => "MPIL with DS",
            System::MpilNoDs => "MPIL without DS",
        }
    }

    /// All four systems, in the paper's legend order.
    pub fn all() -> [System; 4] {
        [
            System::Pastry,
            System::PastryRr,
            System::MpilDs,
            System::MpilNoDs,
        ]
    }
}

/// One perturbation run's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerturbRun {
    /// Overlay size (1000 in the paper).
    pub nodes: usize,
    /// Insert/lookup pairs (1000 in the paper).
    pub operations: usize,
    /// Idle (online) seconds per flapping period.
    pub idle_secs: u64,
    /// Offline seconds per flapping period.
    pub offline_secs: u64,
    /// Flapping probability.
    pub probability: f64,
    /// Cap on the per-lookup deadline in seconds (60 by default).
    pub deadline_cap_secs: u64,
    /// Independent per-message link-loss probability injected in stage 2
    /// (0 = lossless; Castro et al.'s dependability study sweeps this).
    pub loss_probability: f64,
    /// Master seed.
    pub seed: u64,
}

impl PerturbRun {
    /// A run with the paper's defaults for everything but the sweep
    /// variables.
    pub fn new(idle_secs: u64, offline_secs: u64, probability: f64) -> Self {
        PerturbRun {
            nodes: 1000,
            operations: 1000,
            idle_secs,
            offline_secs,
            probability,
            deadline_cap_secs: 60,
            loss_probability: 0.0,
            seed: 42,
        }
    }

    /// Sets the stage-2 link-loss probability.
    pub fn with_loss(mut self, loss_probability: f64) -> Self {
        self.loss_probability = loss_probability;
        self
    }

    fn period(&self) -> SimDuration {
        SimDuration::from_secs(self.idle_secs + self.offline_secs)
    }

    fn deadline_window(&self) -> SimDuration {
        SimDuration::from_secs((self.idle_secs + self.offline_secs).min(self.deadline_cap_secs))
    }
}

/// What one run measured.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerturbResult {
    /// Percentage of lookups answered positively before their deadline.
    pub success_rate: f64,
    /// Lookup-message transmissions (Figure 12, left).
    pub lookup_messages: u64,
    /// All messages sent, including maintenance and acks (Figure 12,
    /// right).
    pub total_messages: u64,
    /// Mean forward-path hops of successful replies.
    pub mean_reply_hops: f64,
    /// Mean replicas per object after stage 1.
    pub mean_replicas: f64,
}

/// Runs MSPastry (optionally with RR) under flapping perturbation.
pub fn run_pastry(system: System, run: PerturbRun) -> PerturbResult {
    assert!(matches!(system, System::Pastry | System::PastryRr));
    let mut rng = SmallRng::seed_from_u64(run.seed);
    let config =
        PastryConfig::default().with_replication_on_route(matches!(system, System::PastryRr));
    let ids = mpil_pastry::bootstrap::random_ids(run.nodes, &mut rng);
    let states = build_converged_states(&ids, &config, &mut rng);
    let ts = transit_stub::generate(run.nodes, TransitStubConfig::default(), &mut rng)
        .expect("transit-stub generation");
    let latency = TransitStubLatency::new(ts, 0.1);
    let mut sim = PastrySim::new(
        ids,
        states,
        config,
        Box::new(AlwaysOn),
        Box::new(latency),
        run.seed ^ 0x5151,
    );

    // Stage 1: inserts on the static overlay, all from the origin.
    let origin = NodeIdx::new(0);
    let objects: Vec<_> = (0..run.operations)
        .map(|_| mpil_id::Id::random(&mut rng))
        .collect();
    for &object in &objects {
        sim.insert(origin, object);
    }
    sim.run_to_quiescence();
    let mean_replicas = {
        let mut s = RunningStats::new();
        for &object in &objects {
            s.push(sim.replica_holders(object).len() as f64);
        }
        s.mean()
    };

    // Stage 2: maintenance + flapping + one lookup per period.
    sim.start_maintenance();
    let warmup = sim.now() + SimDuration::from_secs(90);
    sim.run_until(warmup);
    let flap_cfg = FlappingConfig {
        idle: SimDuration::from_secs(run.idle_secs),
        offline: SimDuration::from_secs(run.offline_secs),
        probability: run.probability,
        start: sim.now(),
    };
    let mut flap = Flapping::new(flap_cfg, run.nodes, run.seed ^ 0xf1a9, &mut rng);
    flap.exempt(origin);
    sim.set_availability(Box::new(flap));
    sim.set_loss_probability(run.loss_probability);
    let flap_start = sim.now();

    let before = sim.stats();
    let mut lookup_ids = Vec::with_capacity(objects.len());
    for (i, &object) in objects.iter().enumerate() {
        let issue_at = flap_start + run.period() * (i as u64 + 1);
        sim.run_until(issue_at);
        let deadline = issue_at + run.deadline_window();
        lookup_ids.push(sim.issue_lookup(origin, object, deadline));
    }
    let tail = sim.now() + run.deadline_window() + SimDuration::from_secs(30);
    sim.run_until(tail);

    let mut hops = RunningStats::new();
    let mut ok = 0u64;
    for &lk in &lookup_ids {
        if let LookupOutcome::Succeeded { hops: h, .. } = sim.lookup_outcome(lk) {
            ok += 1;
            hops.push(f64::from(h));
        }
    }
    let after = sim.stats();
    PerturbResult {
        success_rate: 100.0 * ok as f64 / lookup_ids.len().max(1) as f64,
        lookup_messages: after.lookup_messages - before.lookup_messages,
        total_messages: after.total_messages() - before.total_messages(),
        mean_reply_hops: hops.mean(),
        mean_replicas,
    }
}

/// Runs MPIL over the frozen Pastry overlay (no maintenance) under
/// flapping perturbation — "MPIL with/without DS" in Figures 11–12.
pub fn run_mpil_over_pastry(system: System, run: PerturbRun) -> PerturbResult {
    assert!(matches!(system, System::MpilDs | System::MpilNoDs));
    let mut rng = SmallRng::seed_from_u64(run.seed);
    // Build the same structured overlay MSPastry would have...
    let pastry_config = PastryConfig::default();
    let ids = mpil_pastry::bootstrap::random_ids(run.nodes, &mut rng);
    let states = build_converged_states(&ids, &pastry_config, &mut rng);
    let neighbors: Vec<Vec<NodeIdx>> = states.iter().map(|s| s.neighbor_list()).collect();
    let ts = transit_stub::generate(run.nodes, TransitStubConfig::default(), &mut rng)
        .expect("transit-stub generation");
    let latency = TransitStubLatency::new(ts, 0.1);
    // ...then route on it with MPIL and zero maintenance.
    let mpil_config = MpilConfig::default()
        .with_max_flows(10)
        .with_num_replicas(5)
        .with_duplicate_suppression(matches!(system, System::MpilDs));
    let mut net = DynamicNetwork::new(
        ids,
        neighbors,
        DynamicConfig {
            mpil: mpil_config,
            heartbeat_period: None,
        },
        Box::new(AlwaysOn),
        Box::new(latency),
        run.seed ^ 0x5151,
    );

    let origin = NodeIdx::new(0);
    let objects: Vec<_> = (0..run.operations)
        .map(|_| mpil_id::Id::random(&mut rng))
        .collect();
    for &object in &objects {
        net.insert(origin, object);
    }
    net.run_to_quiescence();
    let mean_replicas = {
        let mut s = RunningStats::new();
        for &object in &objects {
            s.push(net.replica_holders(object).len() as f64);
        }
        s.mean()
    };

    let flap_cfg = FlappingConfig {
        idle: SimDuration::from_secs(run.idle_secs),
        offline: SimDuration::from_secs(run.offline_secs),
        probability: run.probability,
        start: net.now(),
    };
    let mut flap = Flapping::new(flap_cfg, run.nodes, run.seed ^ 0xf1a9, &mut rng);
    flap.exempt(origin);
    net.set_availability(Box::new(flap));
    net.set_loss_probability(run.loss_probability);
    let flap_start = net.now();

    let before = net.stats();
    let before_net = net.net_stats();
    let mut lookup_ids = Vec::with_capacity(objects.len());
    for (i, &object) in objects.iter().enumerate() {
        let issue_at = flap_start + run.period() * (i as u64 + 1);
        net.run_until(issue_at);
        let deadline = issue_at + run.deadline_window();
        lookup_ids.push(net.issue_lookup(origin, object, deadline));
    }
    let tail = net.now() + run.deadline_window() + SimDuration::from_secs(30);
    net.run_until(tail);

    let mut hops = RunningStats::new();
    let mut ok = 0u64;
    for &lk in &lookup_ids {
        if let LookupStatus::Succeeded { hops: h, .. } = net.lookup_status(lk) {
            ok += 1;
            hops.push(f64::from(h));
        }
    }
    let after = net.stats();
    let after_net = net.net_stats();
    PerturbResult {
        success_rate: 100.0 * ok as f64 / lookup_ids.len().max(1) as f64,
        lookup_messages: after.lookup_messages - before.lookup_messages,
        total_messages: after_net.sent - before_net.sent,
        mean_reply_hops: hops.mean(),
        mean_replicas,
    }
}

/// Dispatches to the right runner for a system.
pub fn run_system(system: System, run: PerturbRun) -> PerturbResult {
    match system {
        System::Pastry | System::PastryRr => run_pastry(system, run),
        System::MpilDs | System::MpilNoDs => run_mpil_over_pastry(system, run),
    }
}

/// Runs several (system, probability) points in parallel with a bounded
/// worker pool, preserving input order in the output.
pub fn run_points(points: &[(System, PerturbRun)], workers: usize) -> Vec<PerturbResult> {
    assert!(workers >= 1);
    let results: Vec<std::sync::Mutex<Option<PerturbResult>>> =
        points.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers.min(points.len()) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= points.len() {
                    break;
                }
                let (system, run) = points[i];
                let r = run_system(system, run);
                *results[i].lock().expect("poisoned") = Some(r);
            });
        }
    })
    .expect("worker panicked");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("all points run"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run(idle: u64, offline: u64, p: f64) -> PerturbRun {
        PerturbRun {
            nodes: 120,
            operations: 20,
            idle_secs: idle,
            offline_secs: offline,
            probability: p,
            deadline_cap_secs: 60,
            loss_probability: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn pastry_near_perfect_without_perturbation() {
        let r = run_pastry(System::Pastry, small_run(30, 30, 0.0));
        assert!(r.success_rate > 95.0, "p=0 success {}", r.success_rate);
        assert!((r.mean_replicas - 1.0).abs() < 1e-9, "single root replica");
    }

    #[test]
    fn mpil_near_perfect_without_perturbation() {
        let r = run_mpil_over_pastry(System::MpilDs, small_run(30, 30, 0.0));
        assert!(r.success_rate > 95.0, "p=0 success {}", r.success_rate);
        assert!(r.mean_replicas > 1.5, "MPIL should store multiple replicas");
    }

    #[test]
    fn perturbation_hurts_pastry_more_than_mpil() {
        let run = small_run(300, 300, 1.0);
        let pastry = run_pastry(System::Pastry, run);
        let mpil = run_mpil_over_pastry(System::MpilNoDs, run);
        assert!(
            mpil.success_rate > pastry.success_rate,
            "MPIL {} vs Pastry {}",
            mpil.success_rate,
            pastry.success_rate
        );
    }

    #[test]
    fn rr_stores_more_replicas() {
        let plain = run_pastry(System::Pastry, small_run(30, 30, 0.0));
        let rr = run_pastry(System::PastryRr, small_run(30, 30, 0.0));
        assert!(rr.mean_replicas > plain.mean_replicas);
    }

    #[test]
    fn run_points_matches_sequential() {
        let pts = vec![
            (System::MpilDs, small_run(30, 30, 0.5)),
            (System::Pastry, small_run(30, 30, 0.5)),
        ];
        let par = run_points(&pts, 2);
        let seq: Vec<_> = pts.iter().map(|&(s, r)| run_system(s, r)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = System::all().iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }
}
