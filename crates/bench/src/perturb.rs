//! Perturbation experiment entry points (Sections 3 and 6.2: Figures 1,
//! 11, 12).
//!
//! Methodology, following the paper: 1000 nodes over a GT-ITM-style
//! transit-stub Internet topology. Stage 1 inserts 1000 objects from one
//! designated origin node on the static overlay. Stage 2 turns on
//! periodic flapping (the origin is exempt — it is the experimenter's
//! observation point) and issues one lookup per flapping period for the
//! same objects. Success = a positive reply before the deadline
//! (`min(period, 60 s)`, the cap standing in for MSPastry's application
//! timeout; see EXPERIMENTS.md).
//!
//! The methodology itself lives in [`mpil_harness::run_scenario`] — one
//! drive loop for every engine behind
//! [`mpil_harness::DiscoveryEngine`]. This module keeps the paper's
//! four-system vocabulary ([`System`]) and maps it onto
//! [`EngineSpec`]s.

use mpil_harness::{EngineSpec, ExperimentRunner, Scenario};
use serde::{Deserialize, Serialize};

pub use mpil_harness::{PerturbResult, PerturbRun};

/// The four systems Figure 11 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum System {
    /// MSPastry with all maintenance (Figure 1 / "MSPastry").
    Pastry,
    /// MSPastry plus Replication on Route.
    PastryRr,
    /// MPIL over the frozen Pastry overlay, duplicate suppression on.
    MpilDs,
    /// MPIL over the frozen Pastry overlay, duplicate suppression off.
    MpilNoDs,
}

impl System {
    /// The label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            System::Pastry => "MSPastry",
            System::PastryRr => "MSPastry with RR",
            System::MpilDs => "MPIL with DS",
            System::MpilNoDs => "MPIL without DS",
        }
    }

    /// All four systems, in the paper's legend order.
    pub fn all() -> [System; 4] {
        [
            System::Pastry,
            System::PastryRr,
            System::MpilDs,
            System::MpilNoDs,
        ]
    }

    /// The harness engine this system names.
    pub fn spec(&self) -> EngineSpec {
        match self {
            System::Pastry => EngineSpec::Pastry {
                replication_on_route: false,
            },
            System::PastryRr => EngineSpec::Pastry {
                replication_on_route: true,
            },
            System::MpilDs => EngineSpec::MpilOverPastry {
                duplicate_suppression: true,
            },
            System::MpilNoDs => EngineSpec::MpilOverPastry {
                duplicate_suppression: false,
            },
        }
    }
}

/// Runs MSPastry (optionally with RR) under flapping perturbation.
pub fn run_pastry(system: System, run: PerturbRun) -> PerturbResult {
    assert!(matches!(system, System::Pastry | System::PastryRr));
    mpil_harness::run_scenario(&Scenario::new(system.spec(), run))
}

/// Runs MPIL over the frozen Pastry overlay (no maintenance) under
/// flapping perturbation — "MPIL with/without DS" in Figures 11–12.
pub fn run_mpil_over_pastry(system: System, run: PerturbRun) -> PerturbResult {
    assert!(matches!(system, System::MpilDs | System::MpilNoDs));
    mpil_harness::run_scenario(&Scenario::new(system.spec(), run))
}

/// Dispatches to the right runner for a system.
pub fn run_system(system: System, run: PerturbRun) -> PerturbResult {
    mpil_harness::run_scenario(&Scenario::new(system.spec(), run))
}

/// Runs several (system, probability) points in parallel with a bounded
/// worker pool, preserving input order in the output.
pub fn run_points(points: &[(System, PerturbRun)], workers: usize) -> Vec<PerturbResult> {
    let scenarios: Vec<Scenario> = points
        .iter()
        .map(|&(system, run)| Scenario::new(system.spec(), run))
        .collect();
    ExperimentRunner::new(workers).run_scenarios(&scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run(idle: u64, offline: u64, p: f64) -> PerturbRun {
        PerturbRun {
            nodes: 120,
            operations: 20,
            idle_secs: idle,
            offline_secs: offline,
            probability: p,
            deadline_cap_secs: 60,
            loss_probability: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn pastry_near_perfect_without_perturbation() {
        let r = run_pastry(System::Pastry, small_run(30, 30, 0.0));
        assert!(r.success_rate > 95.0, "p=0 success {}", r.success_rate);
        assert!((r.mean_replicas - 1.0).abs() < 1e-9, "single root replica");
    }

    #[test]
    fn mpil_near_perfect_without_perturbation() {
        let r = run_mpil_over_pastry(System::MpilDs, small_run(30, 30, 0.0));
        assert!(r.success_rate > 95.0, "p=0 success {}", r.success_rate);
        assert!(r.mean_replicas > 1.5, "MPIL should store multiple replicas");
    }

    #[test]
    fn perturbation_hurts_pastry_more_than_mpil() {
        let run = small_run(300, 300, 1.0);
        let pastry = run_pastry(System::Pastry, run);
        let mpil = run_mpil_over_pastry(System::MpilNoDs, run);
        assert!(
            mpil.success_rate > pastry.success_rate,
            "MPIL {} vs Pastry {}",
            mpil.success_rate,
            pastry.success_rate
        );
    }

    #[test]
    fn rr_stores_more_replicas() {
        let plain = run_pastry(System::Pastry, small_run(30, 30, 0.0));
        let rr = run_pastry(System::PastryRr, small_run(30, 30, 0.0));
        assert!(rr.mean_replicas > plain.mean_replicas);
    }

    #[test]
    fn run_points_matches_sequential() {
        let pts = vec![
            (System::MpilDs, small_run(30, 30, 0.5)),
            (System::Pastry, small_run(30, 30, 0.5)),
        ];
        let par = run_points(&pts, 2);
        let seq: Vec<_> = pts.iter().map(|&(s, r)| run_system(s, r)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = System::all().iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn system_specs_share_labels_with_the_harness() {
        for system in System::all() {
            assert_eq!(system.spec().label(), system.label());
        }
    }
}
