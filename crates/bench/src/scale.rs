//! Quick vs. paper-scale parameter sets.
//!
//! Every binary defaults to a reduced configuration that regenerates the
//! paper's *shapes* in seconds on a laptop; `--full` switches to the
//! exact parameters of the paper (10 graphs per size, 4000/8000/16000
//! nodes, 1000 operations, ten probability points).

/// Parameters for the static-overlay experiments (Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticScale {
    /// Overlay sizes to sweep.
    pub sizes: &'static [usize],
    /// Independent graphs per size.
    pub graphs: usize,
    /// Insert/lookup pairs per graph.
    pub objects: usize,
    /// Degree of the random (regular) overlays; the paper uses 100.
    pub random_degree: usize,
}

/// The paper's Section 6.1 numbers.
pub const STATIC_FULL: StaticScale = StaticScale {
    sizes: &[4000, 8000, 16000],
    graphs: 10,
    objects: 100,
    random_degree: 100,
};

/// A laptop-friendly reduction preserving the trends.
pub const STATIC_QUICK: StaticScale = StaticScale {
    sizes: &[1000, 2000, 4000],
    graphs: 3,
    objects: 60,
    random_degree: 100,
};

/// Parameters for the perturbation experiments (Sections 3 and 6.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbScale {
    /// Overlay size (the paper uses 1000).
    pub nodes: usize,
    /// Insert/lookup pairs.
    pub operations: usize,
    /// Flapping probabilities to sweep.
    pub probabilities: &'static [f64],
}

/// The paper's Section 6.2 numbers.
pub const PERTURB_FULL: PerturbScale = PerturbScale {
    nodes: 1000,
    operations: 1000,
    probabilities: &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
};

/// A reduction that keeps 1000 nodes (the overlay structure matters) but
/// fewer operations and probability points.
pub const PERTURB_QUICK: PerturbScale = PerturbScale {
    nodes: 1000,
    operations: 120,
    probabilities: &[0.2, 0.4, 0.6, 0.8, 1.0],
};

/// Picks a static scale.
pub fn static_scale(full: bool) -> StaticScale {
    if full {
        STATIC_FULL
    } else {
        STATIC_QUICK
    }
}

/// Picks a perturbation scale.
pub fn perturb_scale(full: bool) -> PerturbScale {
    if full {
        PERTURB_FULL
    } else {
        PERTURB_QUICK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper() {
        assert_eq!(STATIC_FULL.sizes, &[4000, 8000, 16000]);
        assert_eq!(STATIC_FULL.graphs, 10);
        assert_eq!(STATIC_FULL.objects, 100);
        assert_eq!(STATIC_FULL.random_degree, 100);
        assert_eq!(PERTURB_FULL.nodes, 1000);
        assert_eq!(PERTURB_FULL.operations, 1000);
        assert_eq!(PERTURB_FULL.probabilities.len(), 10);
    }

    #[test]
    fn quick_is_smaller() {
        assert!(STATIC_QUICK.sizes.iter().max() <= STATIC_FULL.sizes.iter().max());
        // Read through a binding so the comparisons are not
        // compile-time constants (clippy::assertions_on_constants).
        let (quick, full) = (STATIC_QUICK, STATIC_FULL);
        assert!(quick.graphs < full.graphs);
        let (quick, full) = (PERTURB_QUICK, PERTURB_FULL);
        assert!(quick.operations < full.operations);
    }

    #[test]
    fn selector_picks() {
        assert_eq!(static_scale(true), STATIC_FULL);
        assert_eq!(static_scale(false), STATIC_QUICK);
        assert_eq!(perturb_scale(true), PERTURB_FULL);
        assert_eq!(perturb_scale(false), PERTURB_QUICK);
    }
}
