//! Kernel-scaling measurement: nodes vs wall-clock vs peak RSS.
//!
//! One [`ScalePoint`] is one engine at one overlay size, driven through
//! the exact two-stage perturbation methodology of
//! [`mpil_harness::run_scenario`] but with per-stage wall-clock timing
//! and a peak-RSS reading. The `scale_run` binary runs a single point
//! per process so the `VmHWM` reading is attributable to that point;
//! `BENCH_scale.json` is composed from many such invocations.

pub use mpil_harness::peak_rss_mib;
use mpil_harness::{
    EngineSpec, LookupStrategy, OverlaySource, PerturbRun, PreparedRun, Scenario, WallClock,
};
use mpil_sim::{Flapping, FlappingConfig, LookupOutcome, SimDuration};

/// One measured point on a scaling curve.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Engine label (from [`EngineSpec::label`]).
    pub engine: String,
    /// Overlay size.
    pub nodes: usize,
    /// Number of insert+lookup operations driven.
    pub operations: usize,
    /// Scenario seed.
    pub seed: u64,
    /// Flapping probability during stage 2.
    pub probability: f64,
    /// Wall-clock seconds to build the converged engine.
    pub build_s: f64,
    /// Wall-clock seconds for stage 1 (inserts to quiescence).
    pub insert_s: f64,
    /// Wall-clock seconds for stage 2 (perturbed lookups).
    pub lookup_s: f64,
    /// Total wall-clock seconds (build + stages).
    pub total_s: f64,
    /// Peak resident set size of this process, in MiB (`VmHWM`), read
    /// after the run; 0.0 where `/proc` is unavailable.
    pub peak_rss_mib: f64,
    /// Lookup success rate (%), a sanity check that the scenario ran.
    pub success_rate: f64,
    /// Raw kernel sends over the whole run.
    pub sent: u64,
    /// Lookup-class messages during stage 2 (the numerator of the
    /// msgs/lookup traffic tripwire).
    pub lookup_msgs: u64,
    /// Kernel events (deliveries + timer fires) during stage 2 — the
    /// steady-state denominator for `allocs`.
    pub events: u64,
    /// Heap allocations during stage 2, from [`mpil_alloc::snapshot`].
    /// Zero unless the running binary installs
    /// [`mpil_alloc::CountingAlloc`] as its global allocator (the
    /// `scale_run` binary does).
    pub allocs: u64,
}

impl ScalePoint {
    /// Renders the point as one self-describing JSON object line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"engine\": \"{}\", \"nodes\": {}, \"ops\": {}, \"seed\": {}, \"p\": {}, \
             \"build_s\": {:.3}, \"insert_s\": {:.3}, \"lookup_s\": {:.3}, \"total_s\": {:.3}, \
             \"peak_rss_mib\": {:.1}, \"success_rate\": {:.1}, \"sent\": {}, \"events\": {}, \
             \"allocs\": {}, \"allocs_per_event\": {:.4}, \"lookup_msgs\": {}, \
             \"msgs_per_lookup\": {:.1}}}",
            self.engine,
            self.nodes,
            self.operations,
            self.seed,
            self.probability,
            self.build_s,
            self.insert_s,
            self.lookup_s,
            self.total_s,
            self.peak_rss_mib,
            self.success_rate,
            self.sent,
            self.events,
            self.allocs,
            self.allocs_per_event(),
            self.lookup_msgs,
            self.msgs_per_lookup(),
        )
    }

    /// Stage-2 lookup-class messages per lookup driven — what the
    /// `scale_run --max-msgs-per-lookup` tripwire budgets.
    pub fn msgs_per_lookup(&self) -> f64 {
        self.lookup_msgs as f64 / self.operations.max(1) as f64
    }

    /// Stage-2 heap allocations per kernel event — ~0 when the message
    /// plane is allocation-free in steady state (and exactly 0.0 when
    /// the counting allocator is not installed).
    pub fn allocs_per_event(&self) -> f64 {
        self.allocs as f64 / self.events.max(1) as f64
    }
}

/// Maps a `scale_run --engine` name (plus, for gossip, a `--strategy`)
/// onto its [`EngineSpec`].
///
/// All five engine families scale-test here: MPIL over a frozen random
/// graph (no maintenance timers), Kademlia (per-node refresh timers),
/// Chord and MSPastry (full structured maintenance, converged builds),
/// and the two gossip engines (per-node shuffle timers — the heaviest
/// scheduler load). Gossip takes a lookup strategy: `walk` (the default
/// k-random-walk: 8 walkers, ttl 16) or `ring` (expanding-ring flooding,
/// ttl 8); `plumtree` and `foaf` select the HyParView/Plumtree epidemic
/// engine with tree-query or bounded-fanout-walk lookups. The
/// strategies scale very differently — see the notes in
/// `BENCH_scale.json` (k-walk success collapses to 0% at 10k+ nodes
/// while ring stays near 100%) and `BENCH_pr9.json` (plumtree matches
/// ring's success at a fraction of its lookup traffic).
pub fn scale_spec(name: &str, strategy: &str) -> Option<EngineSpec> {
    match (name, strategy) {
        ("mpil", _) => Some(EngineSpec::MpilOver(OverlaySource::RandomRegular(8))),
        ("kademlia", _) => Some(EngineSpec::Kademlia { k: 8, alpha: 3 }),
        ("chord", _) => Some(EngineSpec::Chord),
        ("pastry", _) => Some(EngineSpec::Pastry {
            replication_on_route: false,
        }),
        ("plumtree", _) | ("gossip", "plumtree") => Some(EngineSpec::Epidemic {
            active: 5,
            passive: 24,
            strategy: LookupStrategy::Plumtree,
        }),
        ("foaf", _) | ("gossip", "foaf") => Some(EngineSpec::Epidemic {
            active: 5,
            passive: 24,
            strategy: LookupStrategy::Foaf,
        }),
        ("gossip", "walk") => Some(EngineSpec::Gossip {
            view: 8,
            walkers: 8,
            ttl: 16,
            strategy: LookupStrategy::KRandomWalk,
        }),
        ("gossip", "ring") => Some(EngineSpec::Gossip {
            view: 8,
            walkers: 1,
            ttl: 8,
            strategy: LookupStrategy::ExpandingRing,
        }),
        _ => None,
    }
}

/// Runs one scaling point: the same choreography as
/// [`mpil_harness::run_scenario`], instrumented with per-stage timing.
pub fn run_point(spec: EngineSpec, nodes: usize, ops: usize, p: f64, seed: u64) -> ScalePoint {
    let mut run = PerturbRun::new(30, 30, p);
    run.nodes = nodes;
    run.operations = ops;
    run.seed = seed;
    let scenario = Scenario::new(spec, run);

    let t0 = WallClock::start();
    let PreparedRun {
        mut engine,
        origin,
        objects,
        mut rng,
        maintenance,
        warmup_secs,
    } = scenario.build();
    let build_s = t0.elapsed_s();

    let t1 = WallClock::start();
    for &object in &objects {
        engine.insert(origin, object);
    }
    engine.run_to_quiescence();
    let insert_s = t1.elapsed_s();

    let stats_before = engine.net_stats();
    let counters_before = engine.counters();
    let allocs_before = mpil_alloc::snapshot();
    let t2 = WallClock::start();
    if maintenance {
        engine.start_maintenance();
    }
    if warmup_secs > 0 {
        engine.advance(SimDuration::from_secs(warmup_secs));
    }
    let flap_cfg = FlappingConfig {
        idle: SimDuration::from_secs(run.idle_secs),
        offline: SimDuration::from_secs(run.offline_secs),
        probability: run.probability,
        start: engine.now(),
    };
    let mut flap = Flapping::new(flap_cfg, run.nodes, run.seed ^ 0xf1a9, &mut rng);
    flap.exempt(origin);
    engine.set_availability(Box::new(flap));
    let flap_start = engine.now();
    let period = run.period();
    let window = run.deadline_window();
    let mut handles = Vec::with_capacity(objects.len());
    for (i, &object) in objects.iter().enumerate() {
        let issue_at = flap_start + period * (i as u64 + 1);
        engine.run_until(issue_at);
        handles.push(engine.issue_lookup(origin, object, issue_at + window));
    }
    let tail = engine.now() + window + SimDuration::from_secs(30);
    engine.run_until(tail);
    let lookup_s = t2.elapsed_s();
    let stats_after = engine.net_stats();
    let counters_after = engine.counters();
    let allocs_after = mpil_alloc::snapshot();
    let events = (stats_after.delivered - stats_before.delivered)
        + (stats_after.timers_fired - stats_before.timers_fired);

    let ok = handles
        .iter()
        .filter(|&&h| matches!(engine.lookup_outcome(h), LookupOutcome::Succeeded { .. }))
        .count();
    ScalePoint {
        engine: scenario.label(),
        nodes,
        operations: ops,
        seed,
        probability: p,
        build_s,
        insert_s,
        lookup_s,
        total_s: t0.elapsed_s(),
        peak_rss_mib: peak_rss_mib().unwrap_or(0.0),
        success_rate: 100.0 * ok as f64 / handles.len().max(1) as f64,
        sent: engine.net_stats().sent,
        lookup_msgs: counters_after.lookup_messages - counters_before.lookup_messages,
        events,
        allocs: allocs_after.since(allocs_before).allocs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_spec_knows_every_curve_engine() {
        assert!(scale_spec("mpil", "walk").is_some());
        assert!(scale_spec("kademlia", "walk").is_some());
        assert!(scale_spec("chord", "walk").is_some());
        assert!(scale_spec("pastry", "walk").is_some());
        assert!(scale_spec("gossip", "walk").is_some());
        assert!(scale_spec("gossip", "ring").is_some());
        assert!(scale_spec("plumtree", "walk").is_some());
        assert!(scale_spec("foaf", "walk").is_some());
        assert_eq!(
            scale_spec("gossip", "plumtree"),
            scale_spec("plumtree", "walk")
        );
        assert_eq!(scale_spec("gossip", "foaf"), scale_spec("foaf", "walk"));
        assert!(scale_spec("gossip", "banana").is_none());
        assert!(scale_spec("banana", "walk").is_none());
    }

    #[test]
    fn a_tiny_point_runs_and_reports() {
        let p = run_point(scale_spec("mpil", "walk").expect("spec"), 200, 5, 0.5, 3);
        assert_eq!(p.nodes, 200);
        assert_eq!(p.operations, 5);
        assert!(p.total_s >= p.build_s);
        assert!(p.sent > 0);
        assert!(p.success_rate >= 0.0);
        let json = p.to_json();
        assert!(json.contains("\"nodes\": 200"), "{json}");
        assert!(json.contains("\"peak_rss_mib\""), "{json}");
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_mib().expect("VmHWM") > 0.0);
        }
    }
}
