//! Static-overlay figures and tables (Section 6.1: Figures 9–10,
//! Tables 1–3).

use mpil::MpilConfig;
use mpil_harness::Report;
use mpil_workload::Table;

use crate::cli::Args;
use crate::scale::static_scale;
use crate::static_exp::{insertion_behavior, lookup_behavior, paper_insert_config, Family};

/// Figure 9: MPIL insertion behavior over power-law and random overlays —
/// replicas per insertion (left panel), insertion traffic (center), and
/// duplicate messages (right), vs overlay size.
///
/// Paper parameters: max_flows = 30, per-flow replicas = 5, DS on.
pub fn fig9_insertion(args: &Args) -> Report {
    let (full, _csv, seed) = args.standard();
    let scale = static_scale(full);
    let config = paper_insert_config();
    let families = [
        Family::PowerLaw,
        Family::Random {
            degree: scale.random_degree,
        },
    ];

    let mut table = Table::new(vec![
        "family".into(),
        "nodes".into(),
        "avg replicas".into(),
        "avg traffic".into(),
        "total duplicates".into(),
        "avg flows".into(),
    ]);
    for family in families {
        for &n in scale.sizes {
            eprintln!(
                "fig9: {} {n} nodes ({} graphs x {} inserts)",
                family.label(),
                scale.graphs,
                scale.objects
            );
            let b = insertion_behavior(family, n, scale.graphs, scale.objects, config, seed);
            table.row(vec![
                family.label().into(),
                n.to_string(),
                format!("{:.1}", b.mean_replicas),
                format!("{:.1}", b.mean_traffic),
                b.total_duplicates.to_string(),
                format!("{:.2}", b.mean_flows),
            ]);
        }
    }
    let mut report = Report::new();
    report.table(
        format!(
            "Figure 9: MPIL insertion behavior (max_flows=30, per-flow replicas=5; replica bound {})",
            config.replica_bound()
        ),
        table,
    );
    report
}

/// Figure 10: MPIL lookup latency (hops of the first successful reply,
/// left panel) and lookup traffic (right panel) vs overlay size, for
/// power-law and random overlays.
///
/// Paper parameters: lookups with max_flows = 10 and per-flow
/// replicas = 5 ("that setting gives 100% success rates for all sizes").
pub fn fig10_lookup_cost(args: &Args) -> Report {
    let (full, _csv, seed) = args.standard();
    let scale = static_scale(full);
    let insert_config = paper_insert_config();
    let lookup_config = MpilConfig::default()
        .with_max_flows(10)
        .with_num_replicas(5);

    let mut table = Table::new(vec![
        "family".into(),
        "nodes".into(),
        "success %".into(),
        "avg latency (hops)".into(),
        "avg traffic".into(),
        "traffic to 1st reply".into(),
    ]);
    for family in [
        Family::PowerLaw,
        Family::Random {
            degree: scale.random_degree,
        },
    ] {
        for &n in scale.sizes {
            eprintln!("fig10: {} {n} nodes", family.label());
            let b = lookup_behavior(
                family,
                n,
                scale.graphs,
                scale.objects,
                insert_config,
                lookup_config,
                seed,
            );
            table.row(vec![
                family.label().into(),
                n.to_string(),
                format!("{:.1}", b.success_rate),
                format!("{:.2}", b.mean_hops),
                format!("{:.1}", b.mean_traffic),
                format!("{:.1}", b.mean_traffic_to_first_reply),
            ]);
        }
    }
    let mut report = Report::new();
    report.table(
        "Figure 10: MPIL lookup latency and traffic (max_flows=10, per-flow replicas=5)",
        table,
    );
    report
}

/// Tables 1 and 2: MPIL lookup success rate (%) over power-law
/// (Table 1) and random (Table 2) topologies, for max_flows ∈ {5, 10, 15}
/// × per-flow replicas ∈ {1..5}.
///
/// Insertions use the paper's setting (max_flows = 30, per-flow
/// replicas = 5) before each grid.
pub fn table1_2_lookup_success(args: &Args) -> Report {
    let (full, _csv, seed) = args.standard();
    let scale = static_scale(full);
    let insert_config = paper_insert_config();
    let max_flows = [5u32, 10, 15];
    let replicas = [1u32, 2, 3, 4, 5];

    let mut report = Report::new();
    for (label, family) in [
        (
            "Table 1: MPIL lookup success rate over power-law topologies",
            Family::PowerLaw,
        ),
        (
            "Table 2: MPIL lookup success rate over random topologies",
            Family::Random {
                degree: scale.random_degree,
            },
        ),
    ] {
        let mut headers = vec!["# nodes".to_string(), "Max flows".to_string()];
        headers.extend(replicas.iter().map(|r| format!("r={r}")));
        let mut table = Table::new(headers);
        for &n in scale.sizes {
            for &mf in &max_flows {
                eprintln!("{}: {n} nodes, max_flows={mf}", family.label());
                let mut row = vec![n.to_string(), mf.to_string()];
                for &r in &replicas {
                    let lookup_config = MpilConfig::default()
                        .with_max_flows(mf)
                        .with_num_replicas(r);
                    let b = lookup_behavior(
                        family,
                        n,
                        scale.graphs,
                        scale.objects,
                        insert_config,
                        lookup_config,
                        seed,
                    );
                    row.push(format!("{:.1}", b.success_rate));
                }
                table.row(row);
            }
        }
        report.table(label, table);
    }
    report
}

/// Table 3: the actual number of flows created by lookups with
/// max_flows = 10 and per-flow replicas = 3.
pub fn table3_flows(args: &Args) -> Report {
    let (full, _csv, seed) = args.standard();
    let scale = static_scale(full);
    let insert_config = paper_insert_config();
    let lookup_config = MpilConfig::default()
        .with_max_flows(10)
        .with_num_replicas(3);

    let mut table = Table::new(vec!["topology".into(), "actual # of flows".into()]);
    for family in [
        Family::PowerLaw,
        Family::Random {
            degree: scale.random_degree,
        },
    ] {
        for &n in scale.sizes {
            eprintln!("table3: {} {n} nodes", family.label());
            let b = lookup_behavior(
                family,
                n,
                scale.graphs,
                scale.objects,
                insert_config,
                lookup_config,
                seed,
            );
            table.row(vec![
                format!("{} {n}", family.label()),
                format!("{:.3}", b.mean_flows),
            ]);
        }
    }
    let mut report = Report::new();
    report.table(
        "Table 3: actual number of flows of lookups (max_flows=10, per-flow replicas=3)",
        table,
    );
    report
}
