//! Ablation studies: split policy, routing metric, unstructured-search
//! baselines.

use mpil::{MpilConfig, RoutingMetric, SplitPolicy, StaticEngine, UnstructuredEngine};
use mpil_harness::Report;
use mpil_id::Id;
use mpil_workload::{RunningStats, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cli::Args;
use crate::scale::static_scale;
use crate::static_exp::{lookup_behavior, Family};

/// Ablation: tie-based vs top-k flow splitting.
///
/// The paper's Figure 5 pseudo-code splits a message across neighbors
/// *tied* at the best metric; its Section 4 prose and the realized flow
/// counts of Table 3 (~9 of a 10-flow budget) imply fan-out to the *best
/// few* neighbors up to the budget. This quantifies the choice on both
/// static-overlay families; `TopK` is the crate default because it
/// reproduces Tables 1–3 (see EXPERIMENTS.md).
pub fn ablation_split_policy(args: &Args) -> Report {
    let (full, _csv, seed) = args.standard();
    let scale = static_scale(full);
    let n = *scale.sizes.last().expect("non-empty sizes");

    let mut table = Table::new(vec![
        "family".into(),
        "policy".into(),
        "lookup cfg".into(),
        "success %".into(),
        "flows".into(),
        "traffic".into(),
        "hops".into(),
    ]);
    for family in [
        Family::PowerLaw,
        Family::Random {
            degree: scale.random_degree,
        },
    ] {
        for policy in [SplitPolicy::MetricTies, SplitPolicy::TopK] {
            for (mf, r) in [(10u32, 3u32), (10, 5), (5, 1)] {
                let insert = MpilConfig::default()
                    .with_max_flows(30)
                    .with_num_replicas(5)
                    .with_split_policy(policy);
                let lookup = MpilConfig::default()
                    .with_max_flows(mf)
                    .with_num_replicas(r)
                    .with_split_policy(policy);
                let b =
                    lookup_behavior(family, n, scale.graphs, scale.objects, insert, lookup, seed);
                table.row(vec![
                    family.label().into(),
                    format!("{policy:?}"),
                    format!("mf={mf} r={r}"),
                    format!("{:.1}", b.success_rate),
                    format!("{:.2}", b.mean_flows),
                    format!("{:.1}", b.mean_traffic),
                    format!("{:.2}", b.mean_hops),
                ]);
            }
        }
    }
    let mut report = Report::new();
    report.table(
        format!("Ablation: flow-splitting policy ({n} nodes)"),
        table,
    );
    report
}

/// Ablation: the MPIL common-digit metric vs prefix and suffix matching
/// (Section 4.2, "Continuous Forwarding over Arbitrary Overlays").
///
/// The paper argues prefix/suffix routing cannot distinguish neighbors on
/// arbitrary overlays — with base-4 digits, two random IDs share no
/// prefix at all with probability 3/4, so most neighbors look identical
/// (metric 0) and redundancy is spent blindly. The common-digit metric
/// almost never ties at zero, so every hop makes measurable progress.
pub fn ablation_metric(args: &Args) -> Report {
    let (full, _csv, seed) = args.standard();
    let scale = static_scale(full);
    let n = *scale.sizes.last().expect("non-empty sizes");

    let mut table = Table::new(vec![
        "family".into(),
        "metric".into(),
        "success %".into(),
        "traffic".into(),
        "hops".into(),
    ]);
    for family in [
        Family::PowerLaw,
        Family::Random {
            degree: scale.random_degree,
        },
    ] {
        for metric in [
            RoutingMetric::CommonDigits,
            RoutingMetric::PrefixMatch,
            RoutingMetric::SuffixMatch,
        ] {
            // Tie-based splitting exposes the metric's distinguishing
            // power: an uninformative metric ties everywhere and cannot
            // steer the limited flow budget (with TopK fan-out the extra
            // redundancy masks the difference).
            let insert = MpilConfig::default()
                .with_max_flows(30)
                .with_num_replicas(5)
                .with_metric(metric)
                .with_split_policy(SplitPolicy::MetricTies);
            let lookup = MpilConfig::default()
                .with_max_flows(10)
                .with_num_replicas(3)
                .with_metric(metric)
                .with_split_policy(SplitPolicy::MetricTies);
            let b = lookup_behavior(family, n, scale.graphs, scale.objects, insert, lookup, seed);
            table.row(vec![
                family.label().into(),
                format!("{metric:?}"),
                format!("{:.1}", b.success_rate),
                format!("{:.1}", b.mean_traffic),
                format!("{:.2}", b.mean_hops),
            ]);
        }
    }
    let mut report = Report::new();
    report.table(
        format!(
            "Ablation: routing metric (Section 4.2), {n} nodes, tie-splitting, lookups mf=10 r=3"
        ),
        table,
    );
    report
}

/// Baselines: MPIL vs Gnutella-style flooding vs k random walks.
///
/// Section 1 of the paper dismisses flooding as "neither efficient nor
/// scalable" while acknowledging its robustness; Section 2 discusses
/// random-walk search (Lv et al.). This puts numbers on the efficiency
/// claim: success rate vs messages per lookup on the same overlays and
/// workload.
pub fn ablation_baselines(args: &Args) -> Report {
    let (full, _csv, seed) = args.standard();
    let scale = static_scale(full);
    let n = *scale.sizes.last().expect("non-empty sizes");
    let objects = scale.objects;

    let mut table = Table::new(vec![
        "family".into(),
        "system".into(),
        "success %".into(),
        "msgs/lookup".into(),
        "hops".into(),
    ]);

    for family in [
        Family::PowerLaw,
        Family::Random {
            degree: scale.random_degree,
        },
    ] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = family.generate(n, &mut rng);
        let pairs: Vec<(Id, u32, u32)> = (0..objects)
            .map(|_| {
                (
                    Id::random(&mut rng),
                    rng.gen_range(0..n as u32),
                    rng.gen_range(0..n as u32),
                )
            })
            .collect();

        // MPIL: paper settings (insert 30x5, lookup 10x5).
        {
            let mut engine = StaticEngine::new(
                &topo,
                MpilConfig::default()
                    .with_max_flows(30)
                    .with_num_replicas(5),
                seed ^ 1,
            );
            for &(object, owner, _) in &pairs {
                engine.insert(mpil_overlay::NodeIdx::new(owner), object);
            }
            engine.set_config(
                MpilConfig::default()
                    .with_max_flows(10)
                    .with_num_replicas(5),
            );
            let (mut ok, mut msgs, mut hops) = (0u64, RunningStats::new(), RunningStats::new());
            for &(object, _, from) in &pairs {
                let r = engine.lookup(mpil_overlay::NodeIdx::new(from), object);
                msgs.push(r.messages as f64);
                if r.success {
                    ok += 1;
                    hops.push(f64::from(r.first_reply_hops.unwrap_or(0)));
                }
            }
            table.row(vec![
                family.label().into(),
                "MPIL (10x5)".into(),
                format!("{:.1}", 100.0 * ok as f64 / pairs.len() as f64),
                format!("{:.1}", msgs.mean()),
                format!("{:.2}", hops.mean()),
            ]);
        }

        // Flooding and random walks share a store with the same replica
        // budget MPIL gets (~#replicas MPIL creates ≈ 15), for fairness.
        for (label, kind) in [("Flooding (TTL=5)", 0u8), ("Random walks (10x50)", 1u8)] {
            let mut engine = UnstructuredEngine::new(&topo, seed ^ 2);
            for &(object, owner, _) in &pairs {
                engine.store(mpil_overlay::NodeIdx::new(owner), object, 14);
            }
            let (mut ok, mut msgs, mut hops) = (0u64, RunningStats::new(), RunningStats::new());
            for &(object, _, from) in &pairs {
                let r = match kind {
                    0 => engine.flood(mpil_overlay::NodeIdx::new(from), object, 5),
                    _ => engine.random_walk(mpil_overlay::NodeIdx::new(from), object, 10, 50),
                };
                msgs.push(r.messages as f64);
                if r.success {
                    ok += 1;
                    hops.push(f64::from(r.first_reply_hops.unwrap_or(0)));
                }
            }
            table.row(vec![
                family.label().into(),
                label.into(),
                format!("{:.1}", 100.0 * ok as f64 / pairs.len() as f64),
                format!("{:.1}", msgs.mean()),
                format!("{:.2}", hops.mean()),
            ]);
        }
    }
    let mut report = Report::new();
    report.table(
        format!("Baselines: MPIL vs unstructured search ({n} nodes, equal replica budgets)"),
        table,
    );
    report
}
