//! Perturbation figures (Sections 3 and 6.2: Figures 1, 11, 12).
//!
//! Each figure builds its (system × setting × probability) point list,
//! fans it out through [`ExperimentRunner`], and formats the
//! order-preserved results.

use mpil_harness::{ExperimentRunner, PerturbResult, Scenario};
use mpil_workload::Table;

use crate::cli::Args;
use crate::perturb::{PerturbRun, System};
use crate::scale::perturb_scale;
use mpil_harness::Report;

fn point(
    system: System,
    idle: u64,
    offline: u64,
    p: f64,
    nodes: usize,
    ops: usize,
    seed: u64,
) -> Scenario {
    let mut run = PerturbRun::new(idle, offline, p);
    run.nodes = nodes;
    run.operations = ops;
    run.seed = seed;
    Scenario::new(system.spec(), run)
}

/// Figure 1: the effect of perturbation on MSPastry.
///
/// Success rate (%) vs flapping probability for idle:offline settings
/// 1:1, 45:15, 30:30 and 300:300 seconds.
pub fn fig1_pastry_perturbation(args: &Args) -> Report {
    let (full, _csv, seed) = args.standard();
    let scale = perturb_scale(full);
    let workers = args.value_or("workers", 2usize);
    let settings: &[(u64, u64)] = &[(1, 1), (45, 15), (30, 30), (300, 300)];

    let mut points = Vec::new();
    for &(idle, offline) in settings {
        for &p in scale.probabilities {
            points.push(point(
                System::Pastry,
                idle,
                offline,
                p,
                scale.nodes,
                scale.operations,
                seed,
            ));
        }
    }
    eprintln!(
        "fig1: {} runs ({} settings x {} probabilities), {} nodes, {} lookups each",
        points.len(),
        settings.len(),
        scale.probabilities.len(),
        scale.nodes,
        scale.operations
    );
    let results = ExperimentRunner::new(workers).run_scenarios(&points);

    let mut headers = vec!["flap prob".to_string()];
    headers.extend(settings.iter().map(|&(i, o)| format!("{i}:{o}")));
    let mut table = Table::new(headers);
    for (pi, &p) in scale.probabilities.iter().enumerate() {
        let mut row = vec![format!("{p:.1}")];
        for si in 0..settings.len() {
            let r = &results[si * scale.probabilities.len() + pi];
            row.push(format!("{:.1}", r.success_rate));
        }
        table.row(row);
    }
    let mut report = Report::new();
    report.table(
        "Figure 1: MSPastry success rate (%) under perturbation",
        table,
    );
    report
}

/// Figure 11: success rate under perturbation for the four systems —
/// MSPastry, MSPastry with RR, MPIL with DS, MPIL without DS — at
/// idle:offline settings 1:1, 30:30 and 300:300 seconds.
///
/// Unlike the other figure functions, this one **streams**: each
/// setting's table is printed as soon as its sweep completes (paper
/// scale takes hours per setting — a killed run must not discard the
/// settings it already finished).
pub fn fig11_perturbation(args: &Args) {
    let (full, csv, seed) = args.standard();
    let scale = perturb_scale(full);
    let workers = args.value_or("workers", 2usize);
    let settings: &[(u64, u64)] = &[(1, 1), (30, 30), (300, 300)];
    let systems = System::all();

    for &(idle, offline) in settings {
        let mut points = Vec::new();
        for &system in &systems {
            for &p in scale.probabilities {
                points.push(point(
                    system,
                    idle,
                    offline,
                    p,
                    scale.nodes,
                    scale.operations,
                    seed,
                ));
            }
        }
        eprintln!(
            "fig11 idle:offline={idle}:{offline}: {} runs, {} nodes, {} lookups each",
            points.len(),
            scale.nodes,
            scale.operations
        );
        let results = ExperimentRunner::new(workers).run_scenarios(&points);

        let mut headers = vec!["flap prob".to_string()];
        headers.extend(systems.iter().map(|s| s.label().to_string()));
        let mut table = Table::new(headers);
        for (pi, &p) in scale.probabilities.iter().enumerate() {
            let mut row = vec![format!("{p:.1}")];
            for si in 0..systems.len() {
                let r = &results[si * scale.probabilities.len() + pi];
                row.push(format!("{:.1}", r.success_rate));
            }
            table.row(row);
        }
        let mut report = Report::new();
        report.table(
            format!("Figure 11 (idle:offline = {idle}:{offline}): success rate (%)"),
            table,
        );
        report.print(csv);
    }
}

/// Figure 12: overall traffic under perturbation (idle:offline = 30:30) —
/// forwarded lookup messages (left panel) and total messages including
/// maintenance and acks (right panel), vs flapping probability.
pub fn fig12_traffic(args: &Args) -> Report {
    let (full, _csv, seed) = args.standard();
    let scale = perturb_scale(full);
    let workers = args.value_or("workers", 2usize);
    let systems = [System::Pastry, System::MpilDs, System::MpilNoDs];

    let mut points = Vec::new();
    for &system in &systems {
        for &p in scale.probabilities {
            points.push(point(
                system,
                30,
                30,
                p,
                scale.nodes,
                scale.operations,
                seed,
            ));
        }
    }
    eprintln!(
        "fig12: {} runs, {} nodes, {} lookups each",
        points.len(),
        scale.nodes,
        scale.operations
    );
    let results = ExperimentRunner::new(workers).run_scenarios(&points);

    let mut report = Report::new();
    for (title, pick) in [
        (
            "Figure 12 (left): forwarded lookup messages (idle:offline = 30:30)",
            0usize,
        ),
        (
            "Figure 12 (right): total messages incl. maintenance (idle:offline = 30:30)",
            1usize,
        ),
    ] {
        let mut headers = vec!["flap prob".to_string()];
        headers.extend(systems.iter().map(|s| s.label().to_string()));
        let mut table = Table::new(headers);
        for (pi, &p) in scale.probabilities.iter().enumerate() {
            let mut row = vec![format!("{p:.1}")];
            for si in 0..systems.len() {
                let r: &PerturbResult = &results[si * scale.probabilities.len() + pi];
                let v = if pick == 0 {
                    r.lookup_messages
                } else {
                    r.total_messages
                };
                row.push(v.to_string());
            }
            table.row(row);
        }
        report.table(title, table);
    }
    report
}
