//! One function per figure/table driver.
//!
//! Every `src/bin/*` binary is a three-line shim over a function here:
//! parse [`crate::Args`], build a [`mpil_harness::Report`], print it.
//! The experiment fan-out runs through
//! [`mpil_harness::ExperimentRunner`] and — for every event-driven
//! engine — the [`mpil_harness::DiscoveryEngine`] lifecycle, so every
//! figure is reproducible against every engine from one code path.

pub mod ablations;
pub mod analysis;
pub mod extensions;
pub mod perturbation;
pub mod statics;

pub use ablations::{ablation_baselines, ablation_metric, ablation_split_policy};
pub use analysis::{fig7_local_maxima, fig8_complete_replicas};
pub use extensions::{
    ext_churn_traces, ext_dht_comparison, ext_gossip_discovery, ext_link_loss,
    ext_overlay_independence,
};
pub use perturbation::{fig11_perturbation, fig12_traffic, fig1_pastry_perturbation};
pub use statics::{fig10_lookup_cost, fig9_insertion, table1_2_lookup_success, table3_flows};
