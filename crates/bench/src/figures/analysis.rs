//! Closed-form figures (Section 5.2: Figures 7–8), with optional
//! Monte-Carlo cross-checks against actual generated graphs
//! (`--validate`).

use mpil::{MpilConfig, StaticEngine};
use mpil_analysis::AnalysisModel;
use mpil_harness::Report;
use mpil_id::{Id, IdSpace};
use mpil_overlay::{generators, NodeIdx};
use mpil_workload::{RunningStats, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cli::Args;

/// Figure 7: expected number of local maxima for random regular
/// topologies (Section 5.2 closed form), with an optional Monte-Carlo
/// cross-check against actual generated graphs (`--validate`).
pub fn fig7_local_maxima(args: &Args) -> Report {
    let (_full, _csv, seed) = args.standard();
    let model = AnalysisModel::base4();
    let sizes = [4000usize, 8000, 16000];
    let degrees: Vec<usize> = (10..=100).step_by(10).collect();

    let mut headers = vec!["degree".to_string()];
    headers.extend(sizes.iter().map(|n| format!("{n} nodes")));
    if args.flag("validate") {
        headers.push("simulated (1000, d)".into());
    }
    let mut table = Table::new(headers);
    for &d in &degrees {
        let mut row = vec![d.to_string()];
        for &n in &sizes {
            row.push(format!("{:.1}", model.expected_local_maxima_regular(n, d)));
        }
        if args.flag("validate") {
            row.push(format!("{:.1}", monte_carlo_local_maxima(1000, d, seed)));
        }
        table.row(row);
    }
    let mut report = Report::new();
    report.table(
        "Figure 7: expected number of local maxima (random regular topologies, base-4)",
        table,
    );
    report.note(format!(
        "expected hops to a local maximum (1/C): d=10 -> {:.1}, d=50 -> {:.1}, d=100 -> {:.1}",
        model.expected_hops_regular(10),
        model.expected_hops_regular(50),
        model.expected_hops_regular(100)
    ));
    report
}

/// Counts actual local maxima on generated graphs (scaled to the formula's
/// per-node probability times 1000 nodes for comparability).
fn monte_carlo_local_maxima(nodes: usize, degree: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let topo = generators::random_regular(nodes, degree, &mut rng).expect("graph generation");
    let space = IdSpace::base4();
    let trials = 40;
    let mut total = 0usize;
    for _ in 0..trials {
        let object = Id::random(&mut rng);
        total += topo
            .iter_nodes()
            .filter(|&n| {
                let own = space.common_digits(object, topo.id(n));
                topo.neighbors(n)
                    .iter()
                    .all(|&m| space.common_digits(object, topo.id(m)) <= own)
            })
            .count();
    }
    total as f64 / trials as f64
}

/// Figure 8: expected number of replicas on complete topologies
/// (Section 5.2 closed form), with an optional simulated cross-check on
/// small complete graphs (`--validate`).
pub fn fig8_complete_replicas(args: &Args) -> Report {
    let (_full, _csv, seed) = args.standard();
    let model = AnalysisModel::base4();
    let sizes: Vec<usize> = (1..=8).map(|k| k * 2000).collect();

    let mut headers = vec!["nodes".to_string(), "expected replicas".to_string()];
    if args.flag("validate") {
        headers.push("simulated (n=800)".into());
    }
    let mut table = Table::new(headers);
    let simulated = if args.flag("validate") {
        Some(simulate_complete(800, seed))
    } else {
        None
    };
    for &n in &sizes {
        let mut row = vec![
            n.to_string(),
            format!("{:.3}", model.expected_replicas_complete(n)),
        ];
        if let Some(sim) = simulated {
            row.push(format!(
                "{sim:.3} (formula {:.3})",
                model.expected_replicas_complete(800)
            ));
        }
        table.row(row);
    }
    let mut report = Report::new();
    report.table(
        "Figure 8: expected number of replicas (complete topologies, base-4)",
        table,
    );
    report
}

/// Inserts random objects into an actual complete graph and reports the
/// mean replica count (every tied global maximum stores).
fn simulate_complete(n: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let topo = generators::complete(n, &mut rng).expect("complete graph");
    // One flow suffices on a complete graph (every node is everyone's
    // neighbor); give the budget room for ties.
    let config = MpilConfig::default()
        .with_max_flows(30)
        .with_num_replicas(1);
    let mut engine = StaticEngine::new(&topo, config, seed ^ 1);
    let mut stats = RunningStats::new();
    for _ in 0..60 {
        let object = Id::random(&mut rng);
        let origin = NodeIdx::new(rng.gen_range(0..n as u32));
        let report = engine.insert(origin, object);
        stats.push(f64::from(report.replicas));
    }
    stats.mean()
}
