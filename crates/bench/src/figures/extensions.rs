//! Extension experiments beyond the paper: trace-driven churn, the
//! widened DHT comparison, link loss, and overlay-independence across
//! five overlay families.

use mpil::{DynamicConfig, DynamicNetwork, MpilConfig};
use mpil_harness::{
    DiscoveryEngine, EngineSpec, ExperimentRunner, LookupStrategy, OverlaySource, PerturbResult,
    PreparedRun, Report, Scenario,
};
use mpil_id::Id;
use mpil_overlay::transit_stub::{self, TransitStubConfig};
use mpil_overlay::NodeIdx;
use mpil_pastry::{build_converged_states, PastryConfig, PastrySim};
use mpil_sim::{
    AlwaysOn, Flapping, FlappingConfig, SimDuration, SimTime, TraceChurn, TransitStubLatency,
};
use mpil_workload::Table;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::cli::Args;
use crate::dhts::mean_out_degree;
use crate::perturb::{PerturbRun, System};

/// Extension: the Figure 11 comparison widened to three DHT baselines.
///
/// Figure 11 compares MPIL against MSPastry only. This adds Chord (with
/// full stabilization) and Kademlia in two configurations —
/// single-copy/single-path (`k = 1, α = 1`, the apples-to-apples peer of
/// MSPastry's one-root storage) and stock (`k = 8, α = 3`) — all under
/// the same 30:30 flapping sweep, against MPIL over each baseline's own
/// frozen overlay.
///
/// Expected shape: every *single-copy* maintained DHT collapses as p
/// grows; replicated Kademlia holds (the literature's churn-resistance
/// result); MPIL over any frozen graph stays at the top without any
/// maintenance at all.
pub fn ext_dht_comparison(args: &Args) -> Report {
    let (full, _csv, seed) = args.standard();
    let (nodes, ops) = if full { (1000, 500) } else { (250, 50) };
    let nodes = args.value_or("nodes", nodes);
    let ops = args.value_or("ops", ops);
    let probabilities = [0.2, 0.5, 0.9];

    let specs: Vec<EngineSpec> = vec![
        EngineSpec::Pastry {
            replication_on_route: false,
        },
        EngineSpec::Chord,
        EngineSpec::Kademlia { k: 1, alpha: 1 },
        EngineSpec::Kademlia { k: 8, alpha: 3 },
        EngineSpec::MpilOver(OverlaySource::Pastry),
        EngineSpec::MpilOver(OverlaySource::Chord),
        EngineSpec::MpilOver(OverlaySource::Kademlia),
    ];
    let mut points = Vec::new();
    for &spec in &specs {
        for &p in &probabilities {
            let mut run = PerturbRun::new(30, 30, p);
            run.nodes = nodes;
            run.operations = ops;
            run.seed = seed;
            points.push(Scenario::new(spec, run));
        }
    }
    let results = ExperimentRunner::default().run_scenarios(&points);

    let mut header: Vec<String> = vec!["system".into()];
    header.extend(probabilities.iter().map(|p| format!("p={p} %")));
    let mut table = Table::new(header);
    for (si, spec) in specs.iter().enumerate() {
        let mut cells = vec![spec.label()];
        for (pi, &p) in probabilities.iter().enumerate() {
            let rate = results[si * probabilities.len() + pi].success_rate;
            cells.push(format!("{rate:.1}"));
            eprintln!("{} p={p}: {rate:.1}%", spec.label());
        }
        table.row(cells);
    }
    let mut report = Report::new();
    report.table(
        format!(
            "Extension: maintained DHTs vs maintenance-free MPIL under flapping \
             ({nodes} nodes, {ops} lookups, idle:offline=30:30)"
        ),
        table,
    );
    report
}

/// Extension: overlay-independence across five overlay families.
///
/// The paper demonstrates overlay-independence on random and power-law
/// graphs (Section 6.1) and on the MSPastry overlay (Section 6.2). This
/// runs the *same* MPIL configuration (max_flows = 10, per-flow
/// replicas = 5, no DS, no maintenance) over the frozen neighbor graphs
/// of all five families — Pastry, Chord, Kademlia, random-regular,
/// power-law — both unperturbed and under 30:30 flapping at p = 0.5 and
/// p = 0.9.
///
/// Expected shape: success stays high and hops/traffic stay in the same
/// band on *every* family; the structured overlays' sparser graphs
/// (Chord's ≈ log N out-degree) cost a few points at heavy flapping but
/// do not change the story.
pub fn ext_overlay_independence(args: &Args) -> Report {
    let (full, _csv, seed) = args.standard();
    let (nodes, ops) = if full { (1000, 500) } else { (300, 60) };
    let nodes = args.value_or("nodes", nodes);
    let ops = args.value_or("ops", ops);

    let sources = [
        OverlaySource::Pastry,
        OverlaySource::Chord,
        OverlaySource::Kademlia,
        OverlaySource::RandomRegular(16),
        OverlaySource::PowerLaw,
    ];
    let probabilities = [0.0, 0.5, 0.9];
    let mut points = Vec::new();
    for &src in &sources {
        for &p in &probabilities {
            let mut run = PerturbRun::new(30, 30, p);
            run.nodes = nodes;
            run.operations = ops;
            run.seed = seed;
            points.push(Scenario::new(EngineSpec::MpilOver(src), run));
        }
    }
    let results = ExperimentRunner::default().run_scenarios(&points);

    let mut table = Table::new(vec![
        "overlay".into(),
        "out-degree".into(),
        "p=0 %".into(),
        "p=0.5 %".into(),
        "p=0.9 %".into(),
        "hops (p=0)".into(),
        "msgs/lookup (p=0)".into(),
    ]);
    for (si, src) in sources.iter().enumerate() {
        let (_, nbrs) = src.build(nodes, seed);
        let degree = mean_out_degree(&nbrs);
        let mut cells = vec![src.label(), format!("{degree:.1}")];
        let mut calm_hops = String::new();
        let mut calm_msgs = String::new();
        for (pi, &p) in probabilities.iter().enumerate() {
            let r = &results[si * probabilities.len() + pi];
            cells.push(format!("{:.1}", r.success_rate));
            if p == 0.0 {
                calm_hops = format!("{:.2}", r.mean_reply_hops);
                calm_msgs = format!("{:.1}", r.lookup_messages as f64 / ops as f64);
            }
            eprintln!("{} p={p}: {:.1}%", src.label(), r.success_rate);
        }
        cells.push(calm_hops);
        cells.push(calm_msgs);
        table.row(cells);
    }
    let mut report = Report::new();
    report.table(
        format!(
            "Extension: MPIL overlay-independence across overlay families \
             ({nodes} nodes, {ops} lookups, max_flows=10, r=5, idle:offline=30:30)"
        ),
        table,
    );
    report
}

/// Extension: link loss instead of (and combined with) node flapping.
///
/// Castro et al.'s dependability study (cited in Section 2 as the source
/// of MSPastry's maintenance techniques) evaluates Pastry under *network
/// message loss* as well as churn. The MPIL paper only perturbs nodes;
/// this closes that gap: an independent per-message loss probability is
/// injected during the lookup stage, alone and on top of moderate
/// flapping.
///
/// Expected shape: per-hop retransmission lets MSPastry absorb small
/// loss rates; MPIL absorbs them through flow redundancy without any
/// retransmission. Under combined loss + flapping the ordering of
/// Figure 11 (MPIL on top) must persist.
pub fn ext_link_loss(args: &Args) -> Report {
    let (full, _csv, seed) = args.standard();
    let (nodes, ops) = if full { (1000, 1000) } else { (300, 60) };
    let nodes = args.value_or("nodes", nodes);
    let ops = args.value_or("ops", ops);

    let losses = [0.0, 0.05, 0.1, 0.2, 0.4];
    let flaps = [0.0, 0.5];
    let mut points = Vec::new();
    for &flap in &flaps {
        for &loss in &losses {
            let mut run = PerturbRun::new(30, 30, flap).with_loss(loss);
            run.nodes = nodes;
            run.operations = ops;
            run.seed = seed;
            points.push(Scenario::new(System::Pastry.spec(), run));
            points.push(Scenario::new(System::MpilNoDs.spec(), run));
        }
    }
    let results = ExperimentRunner::default().run_scenarios(&points);

    let mut table = Table::new(vec![
        "loss".into(),
        "flap p".into(),
        "MSPastry %".into(),
        "MPIL w/o DS %".into(),
        "MSPastry msgs/lookup".into(),
        "MPIL msgs/lookup".into(),
    ]);
    for (cell, (&flap, &loss)) in flaps
        .iter()
        .flat_map(|f| losses.iter().map(move |l| (f, l)))
        .enumerate()
    {
        let pastry = &results[2 * cell];
        let mpil = &results[2 * cell + 1];
        table.row(vec![
            format!("{loss:.2}"),
            format!("{flap:.1}"),
            format!("{:.1}", pastry.success_rate),
            format!("{:.1}", mpil.success_rate),
            format!("{:.1}", pastry.lookup_messages as f64 / ops as f64),
            format!("{:.1}", mpil.lookup_messages as f64 / ops as f64),
        ]);
        eprintln!(
            "loss {loss:.2} flap {flap:.1}: pastry {:.1}%, mpil {:.1}%",
            pastry.success_rate, mpil.success_rate
        );
    }
    let mut report = Report::new();
    report.table(
        format!(
            "Extension: success under link loss ({nodes} nodes, {ops} lookups, idle:offline=30:30)"
        ),
        table,
    );
    report
}

/// Extension: epidemic gossip vs maintained DHTs vs maintenance-free
/// MPIL under flapping.
///
/// The paper's overlay-independence claim implicitly covers the
/// unstructured/epidemic regime, but every substrate evaluated so far
/// is structured. This puts the `mpil-gossip` engine — push-pull
/// partial-view membership with suspicion, plus both of its lookup
/// strategies (k-random-walk per Lv et al./Ferretti, expanding-ring
/// flooding) — through the exact two-stage perturbation methodology the
/// DHT baselines run, and also routes MPIL *over* the gossip-built
/// view graph.
///
/// Expected shape: random walks degrade gracefully under flapping
/// (replicas are plentiful and walks need only one live path) at a
/// modest message cost; expanding-ring holds success highest but pays
/// flood-scale traffic; the maintained single-copy DHT collapses as p
/// grows; and MPIL over the frozen gossip views matches its behavior on
/// every other overlay family, extending overlay-independence to the
/// epidemic regime.
pub fn ext_gossip_discovery(args: &Args) -> Report {
    let (full, _csv, seed) = args.standard();
    let (nodes, ops) = if full { (1000, 500) } else { (250, 50) };
    let nodes = args.value_or("nodes", nodes);
    let ops = args.value_or("ops", ops);
    if args.flag("dissemination") {
        // A separate mode (not extra rows) so the default table's RNG
        // streams and bytes stay exactly as previous releases printed.
        return ext_dissemination(nodes, ops, seed);
    }
    let probabilities = [0.0, 0.5, 0.9];

    let specs: Vec<EngineSpec> = vec![
        EngineSpec::Gossip {
            view: 8,
            walkers: 8,
            ttl: 16,
            strategy: LookupStrategy::KRandomWalk,
        },
        EngineSpec::Gossip {
            view: 8,
            walkers: 8,
            ttl: 8,
            strategy: LookupStrategy::ExpandingRing,
        },
        EngineSpec::Chord,
        EngineSpec::Kademlia { k: 8, alpha: 3 },
        EngineSpec::MpilOver(OverlaySource::Gossip { view: 8 }),
        EngineSpec::MpilOver(OverlaySource::RandomRegular(8)),
    ];
    let mut points = Vec::new();
    for &spec in &specs {
        for &p in &probabilities {
            let mut run = PerturbRun::new(30, 30, p);
            run.nodes = nodes;
            run.operations = ops;
            run.seed = seed;
            points.push(Scenario::new(spec, run));
        }
    }
    let results = ExperimentRunner::default().run_scenarios(&points);

    let mut header: Vec<String> = vec!["system".into()];
    header.extend(probabilities.iter().map(|p| format!("p={p} %")));
    header.push("msgs/lookup (p=0)".into());
    header.push("msgs/lookup (p=0.9)".into());
    header.push("hops (p=0)".into());
    let mut table = Table::new(header);
    for (si, spec) in specs.iter().enumerate() {
        let mut cells = vec![spec.label()];
        for (pi, &p) in probabilities.iter().enumerate() {
            let rate = results[si * probabilities.len() + pi].success_rate;
            cells.push(format!("{rate:.1}"));
            eprintln!("{} p={p}: {rate:.1}%", spec.label());
        }
        let calm = &results[si * probabilities.len()];
        let stormy = &results[si * probabilities.len() + probabilities.len() - 1];
        cells.push(format!("{:.1}", calm.lookup_messages as f64 / ops as f64));
        cells.push(format!("{:.1}", stormy.lookup_messages as f64 / ops as f64));
        cells.push(format!("{:.2}", calm.mean_reply_hops));
        table.row(cells);
    }
    let mut report = Report::new();
    report.table(
        format!(
            "Extension: epidemic gossip discovery vs DHTs vs MPIL under flapping \
             ({nodes} nodes, {ops} lookups, idle:offline=30:30, seed={seed})"
        ),
        table,
    );
    report.note(format!(
        "engines = [{}]; seed range = {seed}..={seed}",
        specs
            .iter()
            .map(EngineSpec::label)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    report
}

/// One dissemination-comparison point: the standard two-stage
/// methodology, plus a recovery stage — the flapping model is replaced
/// by full availability, the membership layer gets two calm periods to
/// heal, and the whole workload is looked up again. The recovery
/// success rate is the "convergence after flap" column: it separates
/// engines whose view graph healed (HyParView's reactive replacement)
/// from engines that merely got lucky during the storm.
fn dissemination_point(scenario: &Scenario) -> (PerturbResult, f64) {
    let run = scenario.run;
    let PreparedRun {
        mut engine,
        origin,
        objects,
        mut rng,
        maintenance,
        warmup_secs,
    } = scenario.build();

    for &object in &objects {
        engine.insert(origin, object);
    }
    engine.run_to_quiescence();
    let mean_replicas = objects
        .iter()
        .map(|&o| engine.replica_count(o) as f64)
        .sum::<f64>()
        / objects.len().max(1) as f64;

    if maintenance {
        engine.start_maintenance();
    }
    if warmup_secs > 0 {
        engine.advance(SimDuration::from_secs(warmup_secs));
    }
    let flap_cfg = FlappingConfig {
        idle: SimDuration::from_secs(run.idle_secs),
        offline: SimDuration::from_secs(run.offline_secs),
        probability: run.probability,
        start: engine.now(),
    };
    let mut flap = Flapping::new(flap_cfg, run.nodes, run.seed ^ 0xf1a9, &mut rng);
    flap.exempt(origin);
    engine.set_availability(Box::new(flap));
    let flap_start = engine.now();
    let period = run.period();
    let window = run.deadline_window();

    let before = engine.counters();
    let mut handles = Vec::with_capacity(objects.len());
    for (i, &object) in objects.iter().enumerate() {
        let issue_at = flap_start + period * (i as u64 + 1);
        engine.run_until(issue_at);
        handles.push(engine.issue_lookup(origin, object, issue_at + window));
    }
    engine.run_until(engine.now() + window + SimDuration::from_secs(30));
    let mut hops = Vec::new();
    let mut ok = 0u64;
    for &handle in &handles {
        if let mpil_sim::LookupOutcome::Succeeded { hops: h, .. } = engine.lookup_outcome(handle) {
            ok += 1;
            hops.push(f64::from(h));
        }
    }
    let after = engine.counters();
    let stormy = PerturbResult {
        success_rate: 100.0 * ok as f64 / handles.len().max(1) as f64,
        lookup_messages: after.lookup_messages - before.lookup_messages,
        total_messages: after.total_messages - before.total_messages,
        mean_reply_hops: hops.iter().sum::<f64>() / hops.len().max(1) as f64,
        mean_replicas,
    };

    // Recovery: the storm ends, the overlay heals, the workload repeats.
    engine.set_availability(Box::new(AlwaysOn));
    engine.run_until(engine.now() + period * 2);
    let deadline = engine.now() + window;
    let recovered: Vec<_> = objects
        .iter()
        .map(|&o| engine.issue_lookup(origin, o, deadline))
        .collect();
    engine.run_until(deadline + SimDuration::from_secs(30));
    let rec_ok = recovered
        .iter()
        .filter(|&&h| engine.lookup_outcome(h).is_success())
        .count();
    let convergence = 100.0 * rec_ok as f64 / recovered.len().max(1) as f64;
    (stormy, convergence)
}

/// The `--dissemination` mode of [`ext_gossip_discovery`]: Plumtree and
/// FOAF lookups on the HyParView/Plumtree epidemic engine against the
/// expanding-ring flood they replace, plus MPIL routed over the frozen
/// HyParView active graph (overlay-independence on the new view graph).
/// Adds the two columns the flat table lacks: msgs/lookup at both ends
/// of the flapping sweep, and convergence after the flap ends.
fn ext_dissemination(nodes: usize, ops: usize, seed: u64) -> Report {
    let probabilities = [0.0, 0.5, 0.9];
    let specs: Vec<EngineSpec> = vec![
        EngineSpec::Gossip {
            view: 8,
            walkers: 8,
            ttl: 8,
            strategy: LookupStrategy::ExpandingRing,
        },
        EngineSpec::Epidemic {
            active: 5,
            passive: 24,
            strategy: LookupStrategy::Plumtree,
        },
        EngineSpec::Epidemic {
            active: 5,
            passive: 24,
            strategy: LookupStrategy::Foaf,
        },
        EngineSpec::MpilOver(OverlaySource::HyParView { active: 8 }),
    ];
    let mut points = Vec::new();
    for &spec in &specs {
        for &p in &probabilities {
            let mut run = PerturbRun::new(30, 30, p);
            run.nodes = nodes;
            run.operations = ops;
            run.seed = seed;
            points.push(Scenario::new(spec, run));
        }
    }
    let results = ExperimentRunner::default().map(&points, dissemination_point);

    let mut header: Vec<String> = vec!["system".into()];
    header.extend(probabilities.iter().map(|p| format!("p={p} %")));
    header.push("msgs/lookup (p=0)".into());
    header.push("msgs/lookup (p=0.9)".into());
    header.push("converged % (post-flap)".into());
    let mut table = Table::new(header);
    for (si, spec) in specs.iter().enumerate() {
        let mut cells = vec![spec.label()];
        for (pi, &p) in probabilities.iter().enumerate() {
            let rate = results[si * probabilities.len() + pi].0.success_rate;
            cells.push(format!("{rate:.1}"));
            eprintln!("{} p={p}: {rate:.1}%", spec.label());
        }
        let calm = &results[si * probabilities.len()].0;
        let stormy = &results[si * probabilities.len() + probabilities.len() - 1];
        cells.push(format!("{:.1}", calm.lookup_messages as f64 / ops as f64));
        cells.push(format!(
            "{:.1}",
            stormy.0.lookup_messages as f64 / ops as f64
        ));
        cells.push(format!("{:.1}", stormy.1));
        table.row(cells);
    }
    let mut report = Report::new();
    report.table(
        format!(
            "Extension: dissemination layer — Plumtree/FOAF vs expanding-ring flood \
             ({nodes} nodes, {ops} lookups, idle:offline=30:30, seed={seed})"
        ),
        table,
    );
    report.note(format!(
        "engines = [{}]; convergence measured two calm periods after the flapping stops",
        specs
            .iter()
            .map(EngineSpec::label)
            .collect::<Vec<_>>()
            .join(", "),
    ));
    report
}

// --- trace-driven churn ------------------------------------------------------

/// Session scales bracketing the measurement studies (Bhagwan et al.'s
/// Overnet crawl, Saroiu et al.'s Napster/Gnutella study).
struct SessionScale {
    label: &'static str,
    mean_online_s: u64,
    mean_offline_s: u64,
}

/// Extension: trace-driven churn instead of periodic flapping.
///
/// The paper motivates perturbation with the measured availability of
/// real deployments but evaluates only the synthetic flapping model.
/// This replays synthetic session traces with exponential on/off times
/// calibrated to those studies' headline numbers (median session lengths
/// of tens of minutes, mean availability well below 1) and compares MPIL
/// against Pastry-with-maintenance on the same frozen overlay — both
/// engines behind [`DiscoveryEngine`], driven by one loop.
pub fn ext_churn_traces(args: &Args) -> Report {
    let (_full, _csv, seed) = args.standard();
    let nodes = args.value_or("nodes", 400usize);
    let ops = args.value_or("ops", 80usize);

    // Gnutella-like (short sessions, ~50% availability), Overnet-like
    // (longer sessions, ~70%), and a stable fleet (~90%).
    let scenarios = [
        SessionScale {
            label: "gnutella-like (50% up)",
            mean_online_s: 600,
            mean_offline_s: 600,
        },
        SessionScale {
            label: "overnet-like (70% up)",
            mean_online_s: 1400,
            mean_offline_s: 600,
        },
        SessionScale {
            label: "stable fleet (90% up)",
            mean_online_s: 5400,
            mean_offline_s: 600,
        },
    ];

    // (scenario index, mpil?) points, fanned out on the runner.
    let points: Vec<(usize, bool)> = (0..scenarios.len())
        .flat_map(|i| [(i, false), (i, true)])
        .collect();
    let rates = ExperimentRunner::default().map(&points, |&(i, mpil)| {
        let sc = &scenarios[i];
        let (engine, objects) = if mpil {
            build_mpil_over_pastry(nodes, ops, seed)
        } else {
            build_maintained_pastry(nodes, ops, seed)
        };
        run_trace(engine, &objects, sc, nodes, seed)
    });

    let mut table = Table::new(vec![
        "scenario".into(),
        "MSPastry %".into(),
        "MPIL w/o DS %".into(),
    ]);
    for (i, sc) in scenarios.iter().enumerate() {
        let pastry = rates[2 * i];
        let mpil = rates[2 * i + 1];
        table.row(vec![
            sc.label.into(),
            format!("{pastry:.1}"),
            format!("{mpil:.1}"),
        ]);
        eprintln!("{}: pastry {pastry:.1}%, mpil {mpil:.1}%", sc.label);
    }
    let mut report = Report::new();
    report.table(
        format!("Extension: success under trace-driven churn ({nodes} nodes, {ops} lookups)"),
        table,
    );
    report
}

/// MSPastry with maintenance on a transit-stub topology (trace-churn
/// build; RNG order unchanged since the seed state).
fn build_maintained_pastry(
    nodes: usize,
    ops: usize,
    seed: u64,
) -> (Box<dyn DiscoveryEngine>, Vec<Id>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let config = PastryConfig::default();
    let ids = mpil_pastry::bootstrap::random_ids(nodes, &mut rng);
    let states = build_converged_states(&ids, &config, &mut rng);
    let ts = transit_stub::generate(nodes, TransitStubConfig::default(), &mut rng).expect("ts");
    let sim = PastrySim::new(
        ids,
        states,
        config,
        Box::new(AlwaysOn),
        Box::new(TransitStubLatency::new(ts, 0.1)),
        seed ^ 0x77,
    );
    let objects = (0..ops).map(|_| Id::random(&mut rng)).collect();
    (Box::new(sim), objects)
}

/// MPIL (no DS, no maintenance) over the same frozen Pastry overlay.
fn build_mpil_over_pastry(
    nodes: usize,
    ops: usize,
    seed: u64,
) -> (Box<dyn DiscoveryEngine>, Vec<Id>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let config = PastryConfig::default();
    let ids = mpil_pastry::bootstrap::random_ids(nodes, &mut rng);
    let states = build_converged_states(&ids, &config, &mut rng);
    let neighbors: Vec<Vec<NodeIdx>> = states.iter().map(|s| s.neighbor_list()).collect();
    let ts = transit_stub::generate(nodes, TransitStubConfig::default(), &mut rng).expect("ts");
    let net = DynamicNetwork::new(
        ids,
        neighbors,
        DynamicConfig {
            mpil: MpilConfig::default().with_duplicate_suppression(false),
            heartbeat_period: None,
        },
        Box::new(AlwaysOn),
        Box::new(TransitStubLatency::new(ts, 0.1)),
        seed ^ 0x77,
    );
    let objects = (0..ops).map(|_| Id::random(&mut rng)).collect();
    (Box::new(net), objects)
}

/// The one trace-churn drive loop: insert, settle, start whatever
/// maintenance the engine has (a no-op for MPIL), replay the session
/// trace, and issue one lookup per 120 s tick.
fn run_trace(
    mut engine: Box<dyn DiscoveryEngine>,
    objects: &[Id],
    sc: &SessionScale,
    nodes: usize,
    seed: u64,
) -> f64 {
    let origin = NodeIdx::new(0);
    for &o in objects {
        engine.insert(origin, o);
    }
    engine.run_to_quiescence();
    engine.start_maintenance();

    let period = SimDuration::from_secs(120);
    let horizon = engine.now() + period * (objects.len() as u64 + 2);
    engine.set_availability(Box::new(trace(sc, nodes, horizon, origin, seed)));

    let mut lookups = Vec::new();
    for &o in objects {
        engine.churn_tick(period);
        let deadline = engine.now() + SimDuration::from_secs(60);
        lookups.push(engine.issue_lookup(origin, o, deadline));
    }
    engine.advance(SimDuration::from_secs(90));
    let ok = lookups
        .iter()
        .filter(|&&l| engine.lookup_outcome(l).is_success())
        .count();
    100.0 * ok as f64 / lookups.len() as f64
}

/// Synthetic session traces with exponential on/off times; the
/// measurement origin is always up.
fn trace(
    sc: &SessionScale,
    nodes: usize,
    horizon: SimTime,
    origin: NodeIdx,
    seed: u64,
) -> TraceChurn {
    use rand::Rng;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0ffee);
    let exp = |rng: &mut SmallRng, mean_us: f64| -> u64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (-mean_us * u.ln()).max(1.0) as u64
    };
    let on_us = sc.mean_online_s as f64 * 1e6;
    let off_us = sc.mean_offline_s as f64 * 1e6;
    let mut all: Vec<Vec<(SimTime, SimTime)>> = Vec::with_capacity(nodes);
    for i in 0..nodes {
        if i == origin.index() {
            all.push(vec![(
                SimTime::ZERO,
                horizon + SimDuration::from_secs(3600),
            )]);
            continue;
        }
        let mut list = Vec::new();
        let mut t = if rng.gen_bool(0.5) {
            0
        } else {
            exp(&mut rng, off_us)
        };
        while t < horizon.as_micros() {
            let end = (t + exp(&mut rng, on_us)).min(horizon.as_micros());
            list.push((SimTime::from_micros(t), SimTime::from_micros(end)));
            t = end + exp(&mut rng, off_us);
        }
        all.push(list);
    }
    TraceChurn::from_sessions(all)
}
