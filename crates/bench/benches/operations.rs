//! Whole-operation benchmarks: MPIL insert/lookup over the paper's
//! overlay families, Pastry routing, and topology generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mpil::{MpilConfig, StaticEngine};
use mpil_id::Id;
use mpil_overlay::{generators, NodeIdx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_static_insert(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let mut group = c.benchmark_group("static_insert");
    group.sample_size(20);
    let configs = [
        (
            "power_law",
            generators::power_law(2000, Default::default(), &mut rng).unwrap(),
        ),
        (
            "random_100",
            generators::random_regular(2000, 100, &mut rng).unwrap(),
        ),
    ];
    for (name, topo) in &configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |bench, _| {
            let cfg = MpilConfig::default()
                .with_max_flows(30)
                .with_num_replicas(5);
            let mut engine = StaticEngine::new(topo, cfg, 7);
            let mut k = 0u64;
            bench.iter(|| {
                k += 1;
                let object = Id::from_low_u64(k);
                let origin = NodeIdx::new((k % 2000) as u32);
                black_box(engine.insert(origin, object))
            })
        });
    }
    group.finish();
}

fn bench_static_lookup(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let mut group = c.benchmark_group("static_lookup");
    group.sample_size(20);
    let topo = generators::power_law(2000, Default::default(), &mut rng).unwrap();
    let cfg = MpilConfig::default()
        .with_max_flows(30)
        .with_num_replicas(5);
    let mut engine = StaticEngine::new(&topo, cfg, 9);
    let objects: Vec<Id> = (0..100).map(|k| Id::from_low_u64(k + 1)).collect();
    for &o in &objects {
        engine.insert(NodeIdx::new(rng.gen_range(0..2000)), o);
    }
    engine.set_config(
        MpilConfig::default()
            .with_max_flows(10)
            .with_num_replicas(5),
    );
    group.bench_function("power_law_2000", |bench| {
        let mut k = 0usize;
        bench.iter(|| {
            k += 1;
            let object = objects[k % objects.len()];
            let origin = NodeIdx::new((k * 37 % 2000) as u32);
            black_box(engine.lookup(origin, object))
        })
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    group.bench_function("power_law_4000", |bench| {
        let mut seed = 0;
        bench.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            black_box(generators::power_law(4000, Default::default(), &mut rng).unwrap())
        })
    });
    group.bench_function("random_regular_4000_d100", |bench| {
        let mut seed = 0;
        bench.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            black_box(generators::random_regular(4000, 100, &mut rng).unwrap())
        })
    });
    group.finish();
}

fn bench_pastry_route(c: &mut Criterion) {
    use mpil_pastry::{build_converged_states, PastryConfig};
    let mut rng = SmallRng::seed_from_u64(3);
    let config = PastryConfig::default();
    let ids = mpil_pastry::bootstrap::random_ids(1000, &mut rng);
    let states = build_converged_states(&ids, &config, &mut rng);
    c.bench_function("pastry_next_hop_1000", |bench| {
        let mut k = 0u64;
        bench.iter(|| {
            k += 1;
            let key = Id::from_low_u64(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            black_box(states[(k % 1000) as usize].next_hop(config.space, key, |_| false))
        })
    });
}

fn bench_analysis(c: &mut Criterion) {
    use mpil_analysis::AnalysisModel;
    c.bench_function("analysis_local_max_probability", |bench| {
        let model = AnalysisModel::base4();
        bench.iter(|| black_box(model.local_max_probability(black_box(100))))
    });
    c.bench_function("analysis_complete_replicas_16000", |bench| {
        let model = AnalysisModel::base4();
        bench.iter(|| black_box(model.expected_replicas_complete(black_box(16000))))
    });
}

criterion_group!(
    benches,
    bench_static_insert,
    bench_static_lookup,
    bench_generators,
    bench_pastry_route,
    bench_analysis
);
criterion_main!(benches);
