//! Figure-regeneration benchmarks: each paper table/figure's runner at a
//! reduced scale, so `cargo bench` exercises the exact code paths the
//! figure binaries use and tracks their cost over time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mpil::MpilConfig;
use mpil_analysis::AnalysisModel;
use mpil_bench::perturb::{run_system, PerturbRun, System};
use mpil_bench::static_exp::{insertion_behavior, lookup_behavior, paper_insert_config, Family};

fn small_perturb(idle: u64, offline: u64, p: f64) -> PerturbRun {
    PerturbRun {
        nodes: 150,
        operations: 15,
        idle_secs: idle,
        offline_secs: offline,
        probability: p,
        deadline_cap_secs: 60,
        loss_probability: 0.0,
        seed: 5,
    }
}

fn bench_fig1_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_pastry_point");
    g.sample_size(10);
    g.bench_function("pastry_30_30_p05", |b| {
        b.iter(|| black_box(run_system(System::Pastry, small_perturb(30, 30, 0.5))))
    });
    g.finish();
}

fn bench_fig7_fig8_analysis(c: &mut Criterion) {
    c.bench_function("fig7_curve", |b| {
        let model = AnalysisModel::base4();
        b.iter(|| {
            let mut acc = 0.0;
            for d in (10..=100).step_by(10) {
                acc += model.expected_local_maxima_regular(16000, d);
            }
            black_box(acc)
        })
    });
    c.bench_function("fig8_curve", |b| {
        let model = AnalysisModel::base4();
        b.iter(|| {
            let mut acc = 0.0;
            for n in (1..=8).map(|k| k * 2000) {
                acc += model.expected_replicas_complete(n);
            }
            black_box(acc)
        })
    });
}

fn bench_fig9_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_insertion_point");
    g.sample_size(10);
    g.bench_function("power_law_500", |b| {
        b.iter(|| {
            black_box(insertion_behavior(
                Family::PowerLaw,
                500,
                1,
                20,
                paper_insert_config(),
                3,
            ))
        })
    });
    g.finish();
}

fn bench_tables_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_lookup_point");
    g.sample_size(10);
    g.bench_function("power_law_500_mf10_r3", |b| {
        let lookup = MpilConfig::default()
            .with_max_flows(10)
            .with_num_replicas(3);
        b.iter(|| {
            black_box(lookup_behavior(
                Family::PowerLaw,
                500,
                1,
                20,
                paper_insert_config(),
                lookup,
                4,
            ))
        })
    });
    g.finish();
}

fn bench_fig11_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_point");
    g.sample_size(10);
    g.bench_function("mpil_no_ds_300_300_p1", |b| {
        b.iter(|| black_box(run_system(System::MpilNoDs, small_perturb(300, 300, 1.0))))
    });
    g.finish();
}

fn bench_ext_gossip_point(c: &mut Criterion) {
    use mpil_harness::{run_scenario, EngineSpec, LookupStrategy, Scenario};
    let mut g = c.benchmark_group("ext_gossip_point");
    g.sample_size(10);
    for (name, strategy) in [
        ("gossip_walk_30_30_p05", LookupStrategy::KRandomWalk),
        ("gossip_ring_30_30_p05", LookupStrategy::ExpandingRing),
    ] {
        g.bench_function(name, |b| {
            let spec = EngineSpec::Gossip {
                view: 8,
                walkers: 8,
                ttl: 8,
                strategy,
            };
            let mut run = small_perturb(30, 30, 0.5);
            run.nodes = 120;
            run.operations = 12;
            let scenario = Scenario::new(spec, run);
            b.iter(|| black_box(run_scenario(&scenario)))
        });
    }
    g.finish();
}

/// Splitmix-style mixer: a deterministic stand-in for an RNG, so the
/// kernel benches need no seed plumbing and never drift between runs.
fn mix(i: u64) -> u64 {
    let mut z = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 27)
}

fn bench_kernel_scheduler(c: &mut Criterion) {
    use mpil_overlay::NodeIdx;
    use mpil_sim::{AlwaysOn, ConstantLatency, Event, Network, SimDuration};
    // Push/pop/drain through the public Network API — the only way
    // protocols reach the timer wheel. Delays span microseconds to two
    // simulated minutes so every wheel level and the overflow heap get
    // exercised, at pending-set sizes from 10³ to 10⁶.
    let mut g = c.benchmark_group("kernel_scheduler");
    g.sample_size(10);
    for &pending in &[1_000u64, 10_000, 100_000, 1_000_000] {
        g.bench_function(format!("push_pop_drain_{pending}"), |b| {
            b.iter(|| {
                let mut net: Network<(), u64> = Network::new(
                    1,
                    Box::new(AlwaysOn),
                    Box::new(ConstantLatency(SimDuration::from_millis(1))),
                    7,
                );
                let node = NodeIdx::new(0);
                for i in 0..pending {
                    let delay = SimDuration::from_micros(mix(i) % 120_000_000);
                    net.schedule(node, delay, i);
                }
                let mut drained = 0u64;
                while let Some(ev) = net.next() {
                    drained += u64::from(matches!(ev, Event::Timer { .. }));
                }
                black_box(drained)
            })
        });
    }
    g.finish();
}

fn bench_arena_map(c: &mut Criterion) {
    use mpil_id::{Id, IdMap};
    // The open-addressed Id→value arena map that replaced std HashMaps
    // in every engine's per-node state: bulk insert and full-table
    // lookup at the sizes the scale curve runs at.
    let mut g = c.benchmark_group("arena_id_map");
    g.sample_size(10);
    for &n in &[1_000u64, 10_000, 100_000] {
        let ids: Vec<Id> = (0..n).map(|i| Id::from_low_u64(mix(i) | 1)).collect();
        g.bench_function(format!("insert_{n}"), |b| {
            b.iter(|| {
                let mut map = IdMap::new();
                for (v, &id) in ids.iter().enumerate() {
                    map.insert(id, v as u32);
                }
                black_box(map.len())
            })
        });
        let mut map = IdMap::new();
        for (v, &id) in ids.iter().enumerate() {
            map.insert(id, v as u32);
        }
        g.bench_function(format!("lookup_{n}"), |b| {
            b.iter(|| {
                let mut hits = 0u64;
                for &id in &ids {
                    hits += u64::from(map.contains_key(&id));
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

fn bench_message_plane(c: &mut Criterion) {
    use mpil_gossip::{build_converged_views, GossipConfig, GossipSim};
    use mpil_id::Id;
    use mpil_overlay::NodeIdx;
    use mpil_sim::{AlwaysOn, SimDuration, UniformLatency};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fresh_sim(seed: u64) -> (GossipSim, GossipConfig) {
        let config = GossipConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let views = build_converged_views(5_000, config.view_size, &mut rng);
        let sim = GossipSim::new(
            views,
            config,
            Box::new(AlwaysOn),
            Box::new(UniformLatency::new(
                SimDuration::from_millis(10),
                SimDuration::from_millis(80),
            )),
            seed,
        );
        (sim, config)
    }

    // The pooled message plane's two hot paths, isolated: one full
    // shuffle round across 5k nodes (divide by 5000 for per-round
    // cost), and one k-random-walk lookup (8 walkers x ttl 16 = ~128
    // message hops; divide for per-hop cost).
    let mut g = c.benchmark_group("message_plane");
    g.sample_size(10);
    g.bench_function("shuffle_round_5k", |b| {
        let (mut sim, config) = fresh_sim(9);
        sim.start_maintenance();
        // Warm the timer wheel, payload pool, and per-node scratch so
        // the measured iterations see the steady state.
        sim.run_until(sim.now() + config.gossip_period * 4);
        b.iter(|| {
            sim.run_until(sim.now() + config.gossip_period);
            black_box(sim.net_stats().delivered)
        })
    });
    g.bench_function("walk_lookup_5k", |b| {
        // No maintenance: the overlay is quiet, so an iteration's cost
        // is the lookup's walk hops and nothing else.
        let (mut sim, _) = fresh_sim(11);
        let origin = NodeIdx::new(0);
        let mut i = 0u64;
        for _ in 0..16 {
            // Warm the wheel and pools with throwaway lookups.
            i += 1;
            let deadline = sim.now() + SimDuration::from_secs(30);
            sim.issue_lookup(origin, Id::from_low_u64(mix(i) | 1), deadline);
            sim.run_until(deadline);
        }
        b.iter(|| {
            // A lookup for an absent object exhausts every walker's hop
            // budget: the iteration cost is ~128 walk hops.
            i += 1;
            let deadline = sim.now() + SimDuration::from_secs(30);
            let handle = sim.issue_lookup(origin, Id::from_low_u64(mix(i) | 1), deadline);
            sim.run_until(deadline);
            black_box(sim.lookup_outcome(handle))
        })
    });
    g.finish();
}

fn bench_epidemic_plane(c: &mut Criterion) {
    use mpil_gossip::{build_converged_membership, EpidemicConfig, EpidemicSim};
    use mpil_id::Id;
    use mpil_overlay::NodeIdx;
    use mpil_sim::{AlwaysOn, SimDuration, UniformLatency};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fresh_sim(seed: u64) -> (EpidemicSim, EpidemicConfig) {
        let config = EpidemicConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let members =
            build_converged_membership(5_000, config.active_size, config.passive_size, &mut rng);
        let sim = EpidemicSim::new(
            members,
            config,
            Box::new(AlwaysOn),
            Box::new(UniformLatency::new(
                SimDuration::from_millis(10),
                SimDuration::from_millis(80),
            )),
            seed,
        );
        (sim, config)
    }

    // The epidemic engine's two hot paths, isolated: one HyParView
    // maintenance round across 5k nodes (a neighbor probe plus a
    // shuffle exchange per node — divide by 5000 for per-node cost),
    // and one Plumtree broadcast (eager Gossip along ~n-1 tree links
    // plus IHAVE digests on the lazy links — divide by 5000 for
    // per-delivery cost).
    let mut g = c.benchmark_group("epidemic_plane");
    g.sample_size(10);
    g.bench_function("hyparview_shuffle_round_5k", |b| {
        let (mut sim, config) = fresh_sim(9);
        sim.start_maintenance();
        // Warm the timer wheel, payload pool, and per-node scratch so
        // the measured iterations see the steady state.
        sim.run_until(sim.now() + config.gossip_period * 4);
        b.iter(|| {
            sim.run_until(sim.now() + config.gossip_period);
            black_box(sim.net_stats().delivered)
        })
    });
    g.bench_function("plumtree_broadcast_5k", |b| {
        // No maintenance: the overlay is quiet, so an iteration's cost
        // is one broadcast wave and its GRAFT/PRUNE repair traffic.
        let (mut sim, _) = fresh_sim(11);
        let origin = NodeIdx::new(0);
        let mut i = 0u64;
        for _ in 0..16 {
            // Warm the wheel, pools, and per-node store tables — and
            // prune the eager graph down to its spanning tree, so the
            // measured broadcasts ride the converged topology.
            i += 1;
            sim.insert(origin, Id::from_low_u64(mix(i) | 1));
            sim.run_to_quiescence();
        }
        b.iter(|| {
            i += 1;
            sim.insert(origin, Id::from_low_u64(mix(i) | 1));
            sim.run_to_quiescence();
            black_box(sim.net_stats().delivered)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig1_point,
    bench_fig7_fig8_analysis,
    bench_fig9_point,
    bench_tables_point,
    bench_fig11_point,
    bench_ext_gossip_point,
    bench_kernel_scheduler,
    bench_arena_map,
    bench_message_plane,
    bench_epidemic_plane
);
criterion_main!(benches);
