//! Microbenchmarks of the routing metric and next-hop selection — the
//! innermost loops of every MPIL experiment.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mpil::routing_decision;
use mpil_id::{common_digits, prefix_match_digits, Id, IdSpace};
use mpil_overlay::{generators, NodeIdx};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_common_digits(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let a = Id::random(&mut rng);
    let b = Id::random(&mut rng);
    let mut group = c.benchmark_group("common_digits");
    for bits in [1u8, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, &bits| {
            bench.iter(|| common_digits(black_box(a), black_box(b), bits))
        });
    }
    group.finish();
}

fn bench_prefix_match(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let a = Id::random(&mut rng);
    let b = Id::random(&mut rng);
    c.bench_function("prefix_match_digits_base16", |bench| {
        bench.iter(|| prefix_match_digits(black_box(a), black_box(b), 4))
    });
}

fn bench_routing_decision(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let mut group = c.benchmark_group("routing_decision");
    for degree in [10usize, 30, 100] {
        let topo = generators::random_regular(500, degree, &mut rng).expect("graph");
        let object = Id::random(&mut rng);
        let node = NodeIdx::new(0);
        group.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |bench, _| {
            bench.iter(|| {
                routing_decision(
                    IdSpace::base4(),
                    black_box(object),
                    node,
                    topo.neighbors(node),
                    topo.ids(),
                    |_| false,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_common_digits,
    bench_prefix_match,
    bench_routing_decision
);
criterion_main!(benches);
