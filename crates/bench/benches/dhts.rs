//! Micro/meso benchmarks of the DHT substrates and the live wire codec:
//! converged bootstrap, end-to-end DHT operations, and frame
//! encode/decode throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mpil_chord::{ChordConfig, ChordSim};
use mpil_id::Id;
use mpil_kademlia::{KademliaConfig, KademliaSim};
use mpil_overlay::NodeIdx;
use mpil_sim::{AlwaysOn, ConstantLatency, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht_bootstrap");
    group.sample_size(10);
    for &n in &[1000usize, 4000] {
        let mut rng = SmallRng::seed_from_u64(1);
        let ids = mpil_chord::random_ids(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("chord", n), &ids, |b, ids| {
            let config = ChordConfig::default();
            b.iter(|| black_box(mpil_chord::build_converged_states(ids, &config)))
        });
        group.bench_with_input(BenchmarkId::new("kademlia", n), &ids, |b, ids| {
            let config = KademliaConfig::default();
            b.iter(|| black_box(mpil_kademlia::build_converged_tables(ids, &config)))
        });
    }
    group.finish();
}

fn bench_chord_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht_lookup_sim");
    group.sample_size(10);
    let n = 1000;
    let mut rng = SmallRng::seed_from_u64(2);
    let config = ChordConfig::default();
    let ids = mpil_chord::random_ids(n, &mut rng);
    let states = mpil_chord::build_converged_states(&ids, &config);
    let mut sim = ChordSim::new(
        ids,
        states,
        config,
        Box::new(AlwaysOn),
        Box::new(ConstantLatency(SimDuration::from_millis(10))),
        2,
    );
    let object = Id::from_low_u64(77);
    sim.insert(NodeIdx::new(0), object);
    sim.run_to_quiescence();
    let mut k = 0u32;
    group.bench_function("chord_1000", |b| {
        b.iter(|| {
            k = (k + 1) % 1000;
            let h = sim.issue_lookup(NodeIdx::new(k), object, SimTime::from_micros(u64::MAX / 2));
            sim.run_to_quiescence();
            black_box(sim.lookup_outcome(h))
        })
    });
    group.finish();
}

fn bench_kademlia_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht_lookup_sim");
    group.sample_size(10);
    let n = 1000;
    let mut rng = SmallRng::seed_from_u64(3);
    let config = KademliaConfig::default();
    let ids = mpil_chord::random_ids(n, &mut rng);
    let tables = mpil_kademlia::build_converged_tables(&ids, &config);
    let mut sim = KademliaSim::new(
        ids,
        tables,
        config,
        Box::new(AlwaysOn),
        Box::new(ConstantLatency(SimDuration::from_millis(10))),
        3,
    );
    let object = Id::from_low_u64(99);
    sim.insert(NodeIdx::new(0), object);
    sim.run_to_quiescence();
    let mut k = 0u32;
    group.bench_function("kademlia_1000", |b| {
        b.iter(|| {
            k = (k + 1) % 1000;
            let h = sim.issue_lookup(NodeIdx::new(k), object, SimTime::from_micros(u64::MAX / 2));
            sim.run_to_quiescence();
            black_box(sim.lookup_outcome(h))
        })
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    use mpil::{Message, MessageId, MessageKind};
    use mpil_net::WireMessage;
    let mut group = c.benchmark_group("wire_codec");
    let mut msg = Message::initial(
        MessageId(123),
        MessageKind::Lookup,
        Id::from_low_u64(0xfeed_f00d),
        NodeIdx::new(7),
        10,
        5,
    );
    for i in 0..12u32 {
        msg = msg.forwarded(NodeIdx::new(i), 3);
    }
    let wire = WireMessage::Forward(msg);
    group.bench_function("encode_forward_12hop", |b| {
        b.iter(|| black_box(wire.encode()))
    });
    let encoded = wire.encode().expect("encode");
    group.bench_function("decode_forward_12hop", |b| {
        b.iter(|| black_box(WireMessage::decode(&encoded).expect("valid")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bootstrap,
    bench_chord_lookup,
    bench_kademlia_lookup,
    bench_codec
);
criterion_main!(benches);
