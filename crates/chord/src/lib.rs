//! # mpil-chord
//!
//! A Chord DHT (Stoica et al., SIGCOMM 2001) built on the [`mpil_sim`]
//! kernel, serving two roles in the MPIL reproduction:
//!
//! * a **second structured baseline** next to
//!   [`mpil_pastry`](https://docs.rs/mpil-pastry): the paper's related
//!   work (Li et al., "Comparing the performance of distributed hash
//!   tables under churn") compares Chord-family DHTs under churn, and
//!   Chord's maintenance (stabilize / fix-fingers / check-predecessor)
//!   is the canonical alternative to Pastry's probing;
//! * a **third frozen overlay for MPIL** in the overlay-independence
//!   experiments: [`ChordSim::neighbor_lists`] exposes each node's
//!   successors ∪ fingers ∪ predecessor as a static graph that
//!   [`mpil::DynamicNetwork`](https://docs.rs/mpil) routes on with no
//!   maintenance at all — extending the paper's Section 6.2 result
//!   (MPIL over the MSPastry overlay) to a second structured topology.
//!
//! The engine implements greedy finger routing with successor-interval
//! delivery, successor-list failover, per-hop acks with retransmission,
//! probe-based failure declaration, a join protocol, and optional
//! DHash-style successor replication.
//!
//! ```
//! use mpil_chord::{build_converged_states, random_ids, ChordConfig, ChordSim, LookupOutcome};
//! use mpil_overlay::NodeIdx;
//! use mpil_sim::{AlwaysOn, ConstantLatency, SimDuration, SimTime};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let config = ChordConfig::default();
//! let ids = random_ids(50, &mut rng);
//! let states = build_converged_states(&ids, &config);
//! let mut sim = ChordSim::new(
//!     ids,
//!     states,
//!     config,
//!     Box::new(AlwaysOn),
//!     Box::new(ConstantLatency(SimDuration::from_millis(10))),
//!     42,
//! );
//!
//! let object = mpil_id::Id::from_low_u64(0xcafe);
//! sim.insert(NodeIdx::new(0), object);
//! sim.run_to_quiescence();
//!
//! let h = sim.issue_lookup(NodeIdx::new(7), object, SimTime::from_secs(60));
//! sim.run_until(SimTime::from_secs(60));
//! assert!(matches!(sim.lookup_outcome(h), LookupOutcome::Succeeded { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod config;
pub mod engine;
pub mod ring;
pub mod state;

pub use bootstrap::{build_converged_states, random_ids};
pub use config::ChordConfig;
pub use engine::{ChordSim, ChordStats, LookupOutcome};
pub use state::ChordState;
