//! The event-driven Chord simulation.
//!
//! Implements the full protocol of Stoica et al. (SIGCOMM 2001) on the
//! [`mpil_sim`] kernel: greedy finger routing with successor-interval
//! delivery, the stabilize / fix-fingers / check-predecessor maintenance
//! trio, per-hop acks with retransmission, probe-based failure
//! declaration, successor-list failover, a join protocol, and optional
//! DHash-style successor replication.
//!
//! The engine mirrors the Pastry baseline's (`mpil_pastry::PastrySim`)
//! shape and counters so the two can be compared message-for-message
//! under the paper's perturbation model.

use fxhash::{FxHashMap, FxHashSet};
use mpil_id::{Id, IdSet};
use mpil_overlay::NodeIdx;
use mpil_sim::{Availability, Event, LatencyModel, Network, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::ChordConfig;
use crate::state::ChordState;

/// Application payload of a routed message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Payload {
    /// Store the object pointer at the key's root.
    Insert { object: Id },
    /// Find the object pointer; reply to `origin`.
    Lookup {
        object: Id,
        lookup_id: u64,
        origin: NodeIdx,
    },
    /// Resolve the root of a finger start; reply to `origin`.
    FingerFix { index: u16, origin: NodeIdx },
    /// Find `joiner`'s successor; the root welcomes the joiner.
    JoinFind { joiner: NodeIdx },
}

#[derive(Debug, Clone)]
enum Msg {
    /// A routed message (one per-hop transmission).
    Route {
        key: Id,
        payload: Payload,
        hops: u32,
        uid: u64,
    },
    /// Per-hop acknowledgment of a `Route` transmission.
    RouteAck { uid: u64 },
    /// Liveness probe (check-predecessor and join announcements).
    Probe { token: u64 },
    /// Probe response.
    ProbeReply { token: u64 },
    /// Stabilize request: asks the successor for its predecessor and
    /// successor list.
    StabRequest { token: u64 },
    /// Stabilize reply.
    StabReply {
        token: u64,
        predecessor: Option<NodeIdx>,
        successors: Vec<NodeIdx>,
    },
    /// Chord's `notify`: the sender believes it is the receiver's
    /// predecessor.
    Notify,
    /// Successor replication of an object pointer (DHash-style).
    Replicate { object: Id },
    /// Answer to a routed `FingerFix`.
    FingerReply { index: u16, node: NodeIdx },
    /// The join root's successor-list transfer; ends the join.
    JoinWelcome { successors: Vec<NodeIdx> },
    /// Lookup result sent directly to the origin.
    LookupReply {
        lookup_id: u64,
        found: bool,
        hops: u32,
    },
}

#[derive(Debug, Clone, Copy)]
enum Timer {
    /// Periodic successor-pointer repair.
    Stabilize,
    /// Periodic finger refresh (one random finger per firing).
    FixFingers,
    /// Periodic predecessor liveness check.
    CheckPredecessor,
    /// A probe went unanswered.
    ProbeTimeout { token: u64 },
    /// A stabilize request went unanswered.
    StabTimeout { token: u64 },
    /// A routed transmission went unacknowledged.
    RouteRetry { uid: u64 },
}

#[derive(Debug, Clone)]
struct PendingRoute {
    from: NodeIdx,
    to: NodeIdx,
    key: Id,
    payload: Payload,
    hops: u32,
    attempts: u32,
}

#[derive(Debug, Clone, Copy)]
struct PendingProbe {
    prober: NodeIdx,
    target: NodeIdx,
    attempts: u32,
}

/// Counters split by traffic class (field-for-field comparable to the
/// Pastry baseline's `PastryStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChordStats {
    /// Route transmissions carrying lookups (incl. retransmissions).
    pub lookup_messages: u64,
    /// Route transmissions carrying inserts, plus replication pushes.
    pub insert_messages: u64,
    /// Acks for routed messages.
    pub ack_messages: u64,
    /// Probes, stabilize exchanges, notifies, finger fixes, joins.
    pub maintenance_messages: u64,
    /// Direct lookup replies.
    pub reply_messages: u64,
    /// Nodes declared failed (table removals triggered by timeouts).
    pub failure_declarations: u64,
    /// Routed messages dropped by the hop limit.
    pub hop_limit_drops: u64,
    /// Lookups delivered at a root that held no object.
    pub misdeliveries: u64,
}

impl ChordStats {
    /// Everything the overlay sent.
    pub fn total_messages(&self) -> u64 {
        self.lookup_messages
            + self.insert_messages
            + self.ack_messages
            + self.maintenance_messages
            + self.reply_messages
    }
}

/// Outcome of one lookup (the shared engine-agnostic enum).
pub use mpil_sim::LookupOutcome;

#[derive(Debug)]
struct LookupState {
    issued_at: SimTime,
    deadline: SimTime,
    outcome: LookupOutcome,
}

/// The Chord overlay simulation.
///
/// Drive it like the paper's experiments: build a converged ring
/// ([`crate::bootstrap::build_converged_states`]), insert on the static
/// overlay, swap in a flapping availability model, start maintenance,
/// then issue lookups and run the clock.
pub struct ChordSim {
    config: ChordConfig,
    ids: Vec<Id>,
    states: Vec<ChordState>,
    stores: Vec<IdSet>,
    net: Network<Msg, Timer>,
    /// Reusable same-tick delivery batch (see [`Network::next_batch_before`]).
    event_batch: Vec<mpil_sim::Event<Msg, Timer>>,
    pending_routes: FxHashMap<u64, PendingRoute>,
    pending_probes: FxHashMap<u64, PendingProbe>,
    pending_stabs: FxHashMap<u64, PendingProbe>,
    probing_pairs: FxHashSet<(NodeIdx, NodeIdx)>,
    seen_uids: Vec<FxHashSet<u64>>,
    lookups: FxHashMap<u64, LookupState>,
    next_uid: u64,
    next_token: u64,
    next_lookup: u64,
    maintenance_started: bool,
    stats: ChordStats,
}

impl ChordSim {
    /// Builds the simulation from pre-built per-node states (see
    /// [`crate::bootstrap::build_converged_states`]).
    ///
    /// # Panics
    ///
    /// Panics if `ids` and `states` disagree in length or the
    /// configuration is invalid.
    pub fn new(
        ids: Vec<Id>,
        states: Vec<ChordState>,
        config: ChordConfig,
        availability: Box<dyn Availability>,
        latency: Box<dyn LatencyModel>,
        seed: u64,
    ) -> Self {
        assert_eq!(ids.len(), states.len(), "ids/states length mismatch");
        config.assert_valid();
        let n = ids.len();
        ChordSim {
            config,
            states,
            stores: vec![IdSet::new(); n],
            net: Network::new(n, availability, latency, seed),
            pending_routes: FxHashMap::default(),
            pending_probes: FxHashMap::default(),
            pending_stabs: FxHashMap::default(),
            probing_pairs: FxHashSet::default(),
            seen_uids: vec![FxHashSet::default(); n],
            lookups: FxHashMap::default(),
            event_batch: Vec::new(),
            next_uid: 0,
            next_token: 0,
            next_lookup: 0,
            maintenance_started: false,
            ids,
            stats: ChordStats::default(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Protocol counters.
    pub fn stats(&self) -> ChordStats {
        self.stats
    }

    /// Kernel counters.
    pub fn net_stats(&self) -> mpil_sim::NetStats {
        self.net.stats()
    }

    /// Swaps the availability model (static stage → flapping stage).
    pub fn set_availability(&mut self, availability: Box<dyn Availability>) {
        self.net.set_availability(availability);
    }

    /// Sets the independent per-message link-loss probability (failure
    /// injection; see [`mpil_sim::Network::set_loss_probability`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_loss_probability(&mut self, p: f64) {
        self.net.set_loss_probability(p);
    }

    /// Nodes currently storing the pointer for `object`.
    pub fn replica_holders(&self, object: Id) -> Vec<NodeIdx> {
        (0..self.ids.len() as u32)
            .map(NodeIdx::new)
            .filter(|n| self.stores[n.index()].contains(&object))
            .collect()
    }

    /// Number of nodes storing the pointer for `object`, without
    /// materialising the holder list.
    pub fn replica_count(&self, object: Id) -> usize {
        self.stores.iter().filter(|s| s.contains(&object)).count()
    }

    /// Each node's frozen neighbor list (successors ∪ fingers ∪
    /// predecessor) — the overlay MPIL routes on in the
    /// overlay-independence experiments.
    pub fn neighbor_lists(&self) -> Vec<Vec<NodeIdx>> {
        self.states.iter().map(|s| s.neighbor_list()).collect()
    }

    /// The global ID table.
    pub fn ids(&self) -> &[Id] {
        &self.ids
    }

    /// Read access to a node's routing state (tests, diagnostics).
    pub fn state(&self, node: NodeIdx) -> &ChordState {
        &self.states[node.index()]
    }

    /// Starts the periodic maintenance timers on every node, staggered
    /// uniformly over one period to avoid lockstep rounds.
    pub fn start_maintenance(&mut self) {
        assert!(!self.maintenance_started, "maintenance already started");
        self.maintenance_started = true;
        let n = self.ids.len();
        for i in 0..n as u32 {
            let node = NodeIdx::new(i);
            let st = {
                let p = self.config.stabilize_period.as_micros();
                SimDuration::from_micros(self.net.rng().gen_range(0..p))
            };
            self.net.schedule(node, st, Timer::Stabilize);
            let ff = {
                let p = self.config.fix_fingers_period.as_micros();
                SimDuration::from_micros(self.net.rng().gen_range(0..p))
            };
            self.net.schedule(node, ff, Timer::FixFingers);
            let cp = {
                let p = self.config.check_predecessor_period.as_micros();
                SimDuration::from_micros(self.net.rng().gen_range(0..p))
            };
            self.net.schedule(node, cp, Timer::CheckPredecessor);
        }
    }

    /// Starts routing an insertion of `object` from `origin`.
    pub fn insert(&mut self, origin: NodeIdx, object: Id) {
        let payload = Payload::Insert { object };
        self.route_step(origin, object, payload, 0);
    }

    /// Issues a lookup of `object` from `origin` with the given deadline.
    pub fn issue_lookup(&mut self, origin: NodeIdx, object: Id, deadline: SimTime) -> u64 {
        let lookup_id = self.next_lookup;
        self.next_lookup += 1;
        self.lookups.insert(
            lookup_id,
            LookupState {
                issued_at: self.net.now(),
                deadline,
                outcome: LookupOutcome::Pending,
            },
        );
        let payload = Payload::Lookup {
            object,
            lookup_id,
            origin,
        };
        self.route_step(origin, object, payload, 0);
        lookup_id
    }

    /// Outcome of a lookup; `Pending` past its deadline reads as
    /// `Failed`.
    pub fn lookup_outcome(&self, lookup_id: u64) -> LookupOutcome {
        match self.lookups.get(&lookup_id) {
            None => LookupOutcome::Failed,
            Some(s) => match s.outcome {
                LookupOutcome::Pending if self.net.now() >= s.deadline => LookupOutcome::Failed,
                o => o,
            },
        }
    }

    /// Starts the Chord join protocol: `joiner` (a node constructed with
    /// empty state) locates its successor through `bootstrap`; the root
    /// transfers its successor list, and stabilization integrates the
    /// joiner into predecessor pointers and fingers over time.
    ///
    /// # Panics
    ///
    /// Panics if `joiner == bootstrap`.
    pub fn join(&mut self, joiner: NodeIdx, bootstrap: NodeIdx) {
        assert_ne!(joiner, bootstrap, "cannot bootstrap from self");
        let key = self.ids[joiner.index()];
        self.stats.maintenance_messages += 1;
        let uid = self.fresh_uid();
        self.transmit(joiner, bootstrap, key, Payload::JoinFind { joiner }, 0, uid);
    }

    /// Runs the event loop until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        let mut batch = std::mem::take(&mut self.event_batch);
        while self.net.next_batch_before(deadline, &mut batch) {
            for ev in batch.drain(..) {
                self.dispatch(ev);
            }
        }
        self.event_batch = batch;
    }

    /// Runs until no events remain (only terminates before maintenance
    /// starts).
    pub fn run_to_quiescence(&mut self) {
        assert!(
            !self.maintenance_started,
            "periodic maintenance never quiesces; use run_until"
        );
        self.run_until(SimTime::from_micros(u64::MAX));
    }

    // --- routing ----------------------------------------------------------

    fn fresh_uid(&mut self) -> u64 {
        let uid = self.next_uid;
        self.next_uid += 1;
        uid
    }

    fn count_route(&mut self, payload: &Payload) {
        match payload {
            Payload::Insert { .. } => self.stats.insert_messages += 1,
            Payload::Lookup { .. } => self.stats.lookup_messages += 1,
            Payload::FingerFix { .. } | Payload::JoinFind { .. } => {
                self.stats.maintenance_messages += 1
            }
        }
    }

    /// One routing decision at `at`: deliver locally if `at` is the root
    /// (or has no better hop), otherwise forward with per-hop reliability.
    fn route_step(&mut self, at: NodeIdx, key: Id, payload: Payload, hops: u32) {
        // A lookup can be satisfied by any replica holder on the path.
        if let Payload::Lookup {
            object,
            lookup_id,
            origin,
        } = payload
        {
            if self.stores[at.index()].contains(&object) {
                self.reply_lookup(at, origin, lookup_id, true, hops);
                return;
            }
        }
        if self.states[at.index()].owns(key, &self.ids) {
            self.deliver(at, payload, hops);
            return;
        }
        if hops >= self.config.max_hops {
            self.stats.hop_limit_drops += 1;
            return;
        }
        let Some(next) = self.states[at.index()].next_hop(key, &self.ids) else {
            // No known peers at all: act as root.
            self.deliver(at, payload, hops);
            return;
        };
        let uid = self.fresh_uid();
        self.count_route(&payload);
        self.transmit(at, next, key, payload, hops + 1, uid);
    }

    fn transmit(
        &mut self,
        from: NodeIdx,
        to: NodeIdx,
        key: Id,
        payload: Payload,
        hops: u32,
        uid: u64,
    ) {
        self.pending_routes.insert(
            uid,
            PendingRoute {
                from,
                to,
                key,
                payload,
                hops,
                attempts: 0,
            },
        );
        self.net.send(
            from,
            to,
            Msg::Route {
                key,
                payload,
                hops,
                uid,
            },
        );
        self.net
            .schedule(from, self.config.probe_timeout, Timer::RouteRetry { uid });
    }

    /// The message has reached its root.
    fn deliver(&mut self, at: NodeIdx, payload: Payload, hops: u32) {
        match payload {
            Payload::Insert { object } => {
                self.stores[at.index()].insert(object);
                if self.config.replication > 1 {
                    let copies: Vec<NodeIdx> = self.states[at.index()]
                        .successors()
                        .iter()
                        .copied()
                        .take(self.config.replication - 1)
                        .collect();
                    for s in copies {
                        self.stats.insert_messages += 1;
                        self.net.send(at, s, Msg::Replicate { object });
                    }
                }
            }
            Payload::Lookup {
                object,
                lookup_id,
                origin,
            } => {
                let found = self.stores[at.index()].contains(&object);
                if !found {
                    self.stats.misdeliveries += 1;
                }
                self.reply_lookup(at, origin, lookup_id, found, hops);
            }
            Payload::FingerFix { index, origin } => {
                if origin == at {
                    self.states[at.index()].set_finger(usize::from(index), at);
                } else {
                    self.stats.maintenance_messages += 1;
                    self.net
                        .send(at, origin, Msg::FingerReply { index, node: at });
                }
            }
            Payload::JoinFind { joiner } => {
                if joiner == at {
                    return; // degenerate: the joiner routed to itself
                }
                let mut successors = vec![at];
                successors.extend(self.states[at.index()].successors().iter().copied());
                self.stats.maintenance_messages += 1;
                self.net.send(at, joiner, Msg::JoinWelcome { successors });
            }
        }
    }

    fn reply_lookup(
        &mut self,
        at: NodeIdx,
        origin: NodeIdx,
        lookup_id: u64,
        found: bool,
        hops: u32,
    ) {
        if at == origin {
            self.complete_lookup(lookup_id, found, hops);
        } else {
            self.stats.reply_messages += 1;
            self.net.send(
                at,
                origin,
                Msg::LookupReply {
                    lookup_id,
                    found,
                    hops,
                },
            );
        }
    }

    fn complete_lookup(&mut self, lookup_id: u64, found: bool, hops: u32) {
        let now = self.net.now();
        if let Some(state) = self.lookups.get_mut(&lookup_id) {
            if matches!(state.outcome, LookupOutcome::Pending) {
                state.outcome = if found && now <= state.deadline {
                    LookupOutcome::Succeeded {
                        hops,
                        latency: now.duration_since(state.issued_at),
                    }
                } else {
                    LookupOutcome::Failed
                };
            }
        }
    }

    // --- failure handling ---------------------------------------------------

    fn start_probe(&mut self, prober: NodeIdx, target: NodeIdx) {
        if prober == target || !self.probing_pairs.insert((prober, target)) {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        self.pending_probes.insert(
            token,
            PendingProbe {
                prober,
                target,
                attempts: 0,
            },
        );
        self.stats.maintenance_messages += 1;
        self.net.send(prober, target, Msg::Probe { token });
        self.net.schedule(
            prober,
            self.config.probe_timeout,
            Timer::ProbeTimeout { token },
        );
    }

    fn declare_failed(&mut self, at: NodeIdx, dead: NodeIdx) {
        if self.states[at.index()].remove_node(dead) {
            self.stats.failure_declarations += 1;
        }
    }

    // --- event dispatch ------------------------------------------------------

    fn dispatch(&mut self, ev: Event<Msg, Timer>) {
        match ev {
            Event::Message { from, to, msg } => self.on_message(from, to, msg),
            Event::Timer { node, timer } => self.on_timer(node, timer),
        }
    }

    fn on_message(&mut self, from: NodeIdx, to: NodeIdx, msg: Msg) {
        // Any message from a peer is evidence it is alive: re-admit it to
        // the successor list if it improves it (passive re-integration).
        if from != to {
            self.states[to.index()].offer_successor(from, &self.ids);
        }
        match msg {
            Msg::Route {
                key,
                payload,
                hops,
                uid,
            } => {
                self.stats.ack_messages += 1;
                self.net.send(to, from, Msg::RouteAck { uid });
                if !self.seen_uids[to.index()].insert(uid) {
                    return;
                }
                self.route_step(to, key, payload, hops);
            }
            Msg::RouteAck { uid } => {
                self.pending_routes.remove(&uid);
            }
            Msg::Probe { token } => {
                self.stats.maintenance_messages += 1;
                self.net.send(to, from, Msg::ProbeReply { token });
            }
            Msg::ProbeReply { token } => {
                if let Some(p) = self.pending_probes.remove(&token) {
                    self.probing_pairs.remove(&(p.prober, p.target));
                }
            }
            Msg::StabRequest { token } => {
                let st = &self.states[to.index()];
                let reply = Msg::StabReply {
                    token,
                    predecessor: st.predecessor(),
                    successors: st.successors().to_vec(),
                };
                self.stats.maintenance_messages += 1;
                self.net.send(to, from, reply);
            }
            Msg::StabReply {
                token,
                predecessor,
                successors,
            } => {
                let Some(p) = self.pending_stabs.remove(&token) else {
                    return;
                };
                self.finish_stabilize(p.prober, p.target, predecessor, &successors);
            }
            Msg::Notify => {
                let fid = self.ids[from.index()];
                self.states[to.index()].offer_predecessor(from, fid, &self.ids);
            }
            Msg::Replicate { object } => {
                self.stores[to.index()].insert(object);
            }
            Msg::FingerReply { index, node } => {
                self.states[to.index()].set_finger(usize::from(index), node);
            }
            Msg::JoinWelcome { successors } => {
                if let Some((&head, rest)) = successors.split_first() {
                    self.states[to.index()].adopt_successor_list(head, rest, &self.ids);
                    self.stats.maintenance_messages += 1;
                    self.net.send(to, head, Msg::Notify);
                }
            }
            Msg::LookupReply {
                lookup_id,
                found,
                hops,
            } => {
                self.complete_lookup(lookup_id, found, hops);
            }
        }
    }

    fn on_timer(&mut self, node: NodeIdx, timer: Timer) {
        match timer {
            Timer::Stabilize => {
                if self.net.is_online(node) {
                    if let Some(succ) = self.states[node.index()].successor() {
                        let token = self.next_token;
                        self.next_token += 1;
                        self.pending_stabs.insert(
                            token,
                            PendingProbe {
                                prober: node,
                                target: succ,
                                attempts: 0,
                            },
                        );
                        self.stats.maintenance_messages += 1;
                        self.net.send(node, succ, Msg::StabRequest { token });
                        self.net.schedule(
                            node,
                            self.config.probe_timeout,
                            Timer::StabTimeout { token },
                        );
                    }
                }
                self.net
                    .schedule(node, self.config.stabilize_period, Timer::Stabilize);
            }
            Timer::FixFingers => {
                if self.net.is_online(node) {
                    let index = self.net.rng().gen_range(0..mpil_id::ID_BITS) as u16;
                    let key = crate::ring::finger_start(self.ids[node.index()], usize::from(index));
                    self.route_step(
                        node,
                        key,
                        Payload::FingerFix {
                            index,
                            origin: node,
                        },
                        0,
                    );
                }
                self.net
                    .schedule(node, self.config.fix_fingers_period, Timer::FixFingers);
            }
            Timer::CheckPredecessor => {
                if self.net.is_online(node) {
                    if let Some(p) = self.states[node.index()].predecessor() {
                        self.start_probe(node, p);
                    }
                }
                self.net.schedule(
                    node,
                    self.config.check_predecessor_period,
                    Timer::CheckPredecessor,
                );
            }
            Timer::ProbeTimeout { token } => {
                let Some(pending) = self.pending_probes.get(&token).copied() else {
                    return;
                };
                if !self.net.is_online(pending.prober) {
                    self.pending_probes.remove(&token);
                    self.probing_pairs.remove(&(pending.prober, pending.target));
                    return;
                }
                if pending.attempts < self.config.probe_retries {
                    self.pending_probes
                        .get_mut(&token)
                        .expect("checked above")
                        .attempts += 1;
                    self.stats.maintenance_messages += 1;
                    self.net
                        .send(pending.prober, pending.target, Msg::Probe { token });
                    self.net.schedule(
                        pending.prober,
                        self.config.probe_timeout,
                        Timer::ProbeTimeout { token },
                    );
                } else {
                    self.pending_probes.remove(&token);
                    self.probing_pairs.remove(&(pending.prober, pending.target));
                    self.declare_failed(pending.prober, pending.target);
                }
            }
            Timer::StabTimeout { token } => {
                let Some(pending) = self.pending_stabs.get(&token).copied() else {
                    return;
                };
                if !self.net.is_online(pending.prober) {
                    self.pending_stabs.remove(&token);
                    return;
                }
                if pending.attempts < self.config.probe_retries {
                    self.pending_stabs
                        .get_mut(&token)
                        .expect("checked above")
                        .attempts += 1;
                    self.stats.maintenance_messages += 1;
                    self.net
                        .send(pending.prober, pending.target, Msg::StabRequest { token });
                    self.net.schedule(
                        pending.prober,
                        self.config.probe_timeout,
                        Timer::StabTimeout { token },
                    );
                } else {
                    self.pending_stabs.remove(&token);
                    // The successor is dead: drop it and fail over to the
                    // next successor at the following stabilize round.
                    self.declare_failed(pending.prober, pending.target);
                }
            }
            Timer::RouteRetry { uid } => {
                let Some(pending) = self.pending_routes.get(&uid).cloned() else {
                    return;
                };
                if !self.net.is_online(pending.from) {
                    self.pending_routes.remove(&uid);
                    return;
                }
                if pending.attempts < self.config.probe_retries {
                    self.pending_routes
                        .get_mut(&uid)
                        .expect("checked above")
                        .attempts += 1;
                    self.count_route(&pending.payload);
                    self.net.send(
                        pending.from,
                        pending.to,
                        Msg::Route {
                            key: pending.key,
                            payload: pending.payload,
                            hops: pending.hops,
                            uid,
                        },
                    );
                    self.net.schedule(
                        pending.from,
                        self.config.probe_timeout,
                        Timer::RouteRetry { uid },
                    );
                } else {
                    self.pending_routes.remove(&uid);
                    self.declare_failed(pending.from, pending.to);
                    self.route_step(pending.from, pending.key, pending.payload, pending.hops);
                }
            }
        }
    }

    /// Applies a stabilize reply at `node` (its successor was `target`).
    fn finish_stabilize(
        &mut self,
        node: NodeIdx,
        target: NodeIdx,
        succ_pred: Option<NodeIdx>,
        succ_list: &[NodeIdx],
    ) {
        let my_id = self.ids[node.index()];
        let target_id = self.ids[target.index()];
        let better = succ_pred
            .filter(|&p| p != node && crate::ring::in_open(my_id, self.ids[p.index()], target_id));
        match better {
            Some(p) => {
                // The successor's predecessor slots between us: adopt it
                // as our new first successor, keeping the old one next.
                let mut rest = vec![target];
                rest.extend_from_slice(succ_list);
                self.states[node.index()].adopt_successor_list(p, &rest, &self.ids);
            }
            None => {
                self.states[node.index()].adopt_successor_list(target, succ_list, &self.ids);
            }
        }
        if let Some(new_succ) = self.states[node.index()].successor() {
            self.stats.maintenance_messages += 1;
            self.net.send(node, new_succ, Msg::Notify);
        }
    }
}

impl std::fmt::Debug for ChordSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChordSim")
            .field("nodes", &self.ids.len())
            .field("now", &self.net.now())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{build_converged_states, random_ids};
    use mpil_sim::{AlwaysOn, ConstantLatency};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build(n: usize, config: ChordConfig, seed: u64) -> ChordSim {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ids = random_ids(n, &mut rng);
        let states = build_converged_states(&ids, &config);
        ChordSim::new(
            ids,
            states,
            config,
            Box::new(AlwaysOn),
            Box::new(ConstantLatency(SimDuration::from_millis(10))),
            seed,
        )
    }

    #[test]
    fn insert_places_exactly_one_replica_without_replication() {
        let mut sim = build(50, ChordConfig::default(), 1);
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..20 {
            let object = Id::random(&mut rng);
            sim.insert(NodeIdx::new(0), object);
            sim.run_to_quiescence();
            assert_eq!(sim.replica_holders(object).len(), 1);
        }
    }

    #[test]
    fn replica_lands_on_the_ring_successor() {
        let mut sim = build(64, ChordConfig::default(), 2);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sorted: Vec<Id> = sim.ids().to_vec();
        sorted.sort();
        for _ in 0..10 {
            let object = Id::random(&mut rng);
            sim.insert(NodeIdx::new(3), object);
            sim.run_to_quiescence();
            let holders = sim.replica_holders(object);
            assert_eq!(holders.len(), 1);
            let expect = *sorted
                .iter()
                .find(|&&id| id >= object)
                .unwrap_or(&sorted[0]);
            assert_eq!(sim.ids()[holders[0].index()], expect);
        }
    }

    #[test]
    fn replication_factor_spreads_to_successors() {
        let config = ChordConfig::default().with_replication(3);
        let mut sim = build(40, config, 3);
        let object = Id::from_low_u64(0xabcd);
        sim.insert(NodeIdx::new(1), object);
        sim.run_to_quiescence();
        assert_eq!(sim.replica_holders(object).len(), 3);
    }

    #[test]
    fn lookups_succeed_on_a_stable_ring() {
        let mut sim = build(100, ChordConfig::default(), 4);
        let mut rng = SmallRng::seed_from_u64(11);
        let objects: Vec<Id> = (0..30).map(|_| Id::random(&mut rng)).collect();
        for &o in &objects {
            sim.insert(NodeIdx::new(5), o);
        }
        sim.run_to_quiescence();
        let deadline = SimTime::from_secs(1_000);
        let handles: Vec<u64> = objects
            .iter()
            .map(|&o| sim.issue_lookup(NodeIdx::new(42), o, deadline))
            .collect();
        sim.run_until(deadline);
        for h in handles {
            assert!(
                matches!(sim.lookup_outcome(h), LookupOutcome::Succeeded { .. }),
                "lookup {h} failed on a stable ring"
            );
        }
    }

    #[test]
    fn lookup_hops_are_logarithmic() {
        let mut sim = build(256, ChordConfig::default(), 5);
        let mut rng = SmallRng::seed_from_u64(21);
        let objects: Vec<Id> = (0..50).map(|_| Id::random(&mut rng)).collect();
        for &o in &objects {
            sim.insert(NodeIdx::new(0), o);
        }
        sim.run_to_quiescence();
        let deadline = SimTime::from_secs(10_000);
        let handles: Vec<u64> = objects
            .iter()
            .map(|&o| sim.issue_lookup(NodeIdx::new(9), o, deadline))
            .collect();
        sim.run_until(deadline);
        let mut total = 0u32;
        for h in handles {
            match sim.lookup_outcome(h) {
                LookupOutcome::Succeeded { hops, .. } => {
                    assert!(hops <= 16, "hop count {hops} not O(log n) for n=256");
                    total += hops;
                }
                o => panic!("lookup failed: {o:?}"),
            }
        }
        // Average must be around (1/2) log2(256) = 4, generously bounded.
        assert!(total / 50 <= 8);
    }

    #[test]
    fn missing_object_reports_failure_not_hang() {
        let mut sim = build(30, ChordConfig::default(), 6);
        let deadline = SimTime::from_secs(100);
        let h = sim.issue_lookup(NodeIdx::new(2), Id::from_low_u64(42), deadline);
        sim.run_until(deadline);
        assert_eq!(sim.lookup_outcome(h), LookupOutcome::Failed);
        assert!(sim.stats().misdeliveries >= 1);
    }

    #[test]
    fn maintenance_preserves_a_stable_ring() {
        let mut sim = build(40, ChordConfig::default(), 7);
        let before = sim.neighbor_lists();
        sim.start_maintenance();
        sim.run_until(SimTime::from_secs(300));
        // Ten stabilize rounds on a fully-converged static ring must not
        // perturb the successor structure.
        for (i, st) in (0..40u32).map(|i| (i, sim.state(NodeIdx::new(i)))) {
            assert_eq!(
                st.successor(),
                before[i as usize].first().copied(),
                "successor changed on a static ring"
            );
        }
        assert!(sim.stats().failure_declarations == 0);
    }

    #[test]
    fn join_integrates_a_new_node() {
        let config = ChordConfig::default();
        let mut rng = SmallRng::seed_from_u64(12);
        let mut ids = random_ids(33, &mut rng);
        let joiner_id = ids.pop().expect("33 ids");
        let mut states = build_converged_states(&ids, &config);
        // The joiner starts empty.
        ids.push(joiner_id);
        states.push(ChordState::new(
            NodeIdx::new(32),
            joiner_id,
            config.successor_list_len,
        ));
        let mut sim = ChordSim::new(
            ids,
            states,
            config,
            Box::new(AlwaysOn),
            Box::new(ConstantLatency(SimDuration::from_millis(10))),
            12,
        );
        sim.join(NodeIdx::new(32), NodeIdx::new(0));
        sim.run_to_quiescence();
        // The joiner knows its true successor.
        let mut sorted: Vec<Id> = sim.ids()[..32].to_vec();
        sorted.sort();
        let expect = *sorted
            .iter()
            .find(|&&id| id >= joiner_id)
            .unwrap_or(&sorted[0]);
        let succ = sim.state(NodeIdx::new(32)).successor().expect("joined");
        assert_eq!(sim.ids()[succ.index()], expect);
        // After stabilization rounds the successor's predecessor is the joiner.
        sim.start_maintenance();
        sim.run_until(SimTime::from_secs(120));
        assert_eq!(sim.state(succ).predecessor(), Some(NodeIdx::new(32)));
    }

    #[test]
    fn stats_classify_traffic() {
        let mut sim = build(50, ChordConfig::default(), 8);
        let object = Id::from_low_u64(77);
        sim.insert(NodeIdx::new(0), object);
        sim.run_to_quiescence();
        let s = sim.stats();
        assert!(s.insert_messages >= 1);
        assert_eq!(s.lookup_messages, 0);
        assert!(s.ack_messages >= s.insert_messages);
        let h = sim.issue_lookup(NodeIdx::new(1), object, SimTime::from_secs(500));
        sim.run_until(SimTime::from_secs(500));
        assert!(matches!(
            sim.lookup_outcome(h),
            LookupOutcome::Succeeded { .. }
        ));
        let s = sim.stats();
        assert!(s.lookup_messages >= 1);
        assert!(s.total_messages() >= s.lookup_messages + s.insert_messages);
    }

    #[test]
    fn neighbor_lists_are_nonempty_and_self_free() {
        let sim = build(64, ChordConfig::default(), 9);
        for (i, nl) in sim.neighbor_lists().into_iter().enumerate() {
            assert!(!nl.is_empty());
            assert!(!nl.contains(&NodeIdx::new(i as u32)));
        }
    }

    #[test]
    fn deadline_expiry_fails_pending_lookups() {
        let mut sim = build(20, ChordConfig::default(), 10);
        let object = Id::from_low_u64(5);
        sim.insert(NodeIdx::new(0), object);
        sim.run_to_quiescence();
        // Deadline in the past relative to message latency.
        let h = sim.issue_lookup(NodeIdx::new(3), object, sim.now());
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.lookup_outcome(h), LookupOutcome::Failed);
    }
}
