//! Converged-ring construction.
//!
//! The paper's experiments start from a *converged* overlay (stage 1 of
//! Section 3 runs on a static network). Rather than simulating thousands
//! of joins, we compute the exact fixed point of Chord's maintenance
//! protocol directly: successor lists from the sorted ring, predecessors,
//! and every finger `i` as the true successor of `id + 2^i`.

use mpil_id::Id;
use mpil_overlay::NodeIdx;

use crate::config::ChordConfig;
use crate::ring::finger_start;
use crate::state::ChordState;

/// Builds the converged state of every node.
///
/// # Panics
///
/// Panics if `ids` is empty or contains duplicates (a 160-bit space makes
/// random collisions vanishingly unlikely; duplicates indicate a bug in
/// the caller's ID assignment).
pub fn build_converged_states(ids: &[Id], config: &ChordConfig) -> Vec<ChordState> {
    assert!(!ids.is_empty(), "cannot build an empty ring");
    config.assert_valid();
    let n = ids.len();

    // Ring order: node indices sorted by identifier.
    let mut ring: Vec<usize> = (0..n).collect();
    ring.sort_by_key(|&i| ids[i]);
    for w in ring.windows(2) {
        assert!(ids[w[0]] != ids[w[1]], "duplicate identifiers in the ring");
    }
    // rank[i] = position of node i on the sorted ring.
    let mut rank = vec![0usize; n];
    for (pos, &i) in ring.iter().enumerate() {
        rank[i] = pos;
    }
    let sorted_ids: Vec<Id> = ring.iter().map(|&i| ids[i]).collect();

    // successor_of(key) = first node clockwise whose id >= key, wrapping.
    let successor_of = |key: Id| -> usize {
        let pos = sorted_ids.partition_point(|&id| id < key);
        ring[pos % n]
    };

    (0..n)
        .map(|i| {
            let node = NodeIdx::new(i as u32);
            let mut st = ChordState::new(node, ids[i], config.successor_list_len);
            let me = rank[i];
            for k in 1..=config.successor_list_len.min(n - 1) {
                let succ = ring[(me + k) % n];
                st.offer_successor(NodeIdx::new(succ as u32), ids);
            }
            if n > 1 {
                let pred = ring[(me + n - 1) % n];
                st.set_predecessor(Some(NodeIdx::new(pred as u32)));
            }
            for f in 0..mpil_id::ID_BITS {
                let target = successor_of(finger_start(ids[i], f));
                st.set_finger(f, NodeIdx::new(target as u32));
            }
            st
        })
        .collect()
}

/// Draws `n` distinct random identifiers (convenience for tests and
/// benchmarks).
pub fn random_ids<R: rand::Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<Id> {
    let mut seen = fxhash::FxHashSet::with_capacity_and_hasher(n, Default::default());
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let id = Id::random(rng);
        if seen.insert(id) {
            out.push(id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::in_half_open;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ids(vals: &[u64]) -> Vec<Id> {
        vals.iter().copied().map(Id::from_low_u64).collect()
    }

    #[test]
    fn successors_follow_sorted_ring() {
        let table = ids(&[30, 10, 20, 40]);
        let states = build_converged_states(&table, &ChordConfig::default());
        // Node 1 (id 10) → successor node 2 (id 20), then 0 (30), 3 (40).
        assert_eq!(
            states[1].successors(),
            &[NodeIdx::new(2), NodeIdx::new(0), NodeIdx::new(3)]
        );
        // Node 3 (id 40) wraps to node 1 (id 10).
        assert_eq!(states[3].successor(), Some(NodeIdx::new(1)));
        // Predecessors are the ring inverse of successors.
        assert_eq!(states[1].predecessor(), Some(NodeIdx::new(3)));
        assert_eq!(states[2].predecessor(), Some(NodeIdx::new(1)));
    }

    #[test]
    fn every_finger_is_the_true_successor_of_its_start() {
        let mut rng = SmallRng::seed_from_u64(11);
        let table = random_ids(64, &mut rng);
        let states = build_converged_states(&table, &ChordConfig::default());
        let mut sorted: Vec<Id> = table.clone();
        sorted.sort();
        for st in &states {
            for f in 0..mpil_id::ID_BITS {
                let start = finger_start(st.id(), f);
                // The true successor of `start` on the sorted ring.
                let expect = *sorted.iter().find(|&&id| id >= start).unwrap_or(&sorted[0]);
                match st.finger(f) {
                    Some(node) => assert_eq!(table[node.index()], expect),
                    None => assert_eq!(expect, st.id(), "cleared finger must mean self"),
                }
            }
        }
    }

    #[test]
    fn ownership_partitions_the_key_space() {
        let mut rng = SmallRng::seed_from_u64(5);
        let table = random_ids(32, &mut rng);
        let states = build_converged_states(&table, &ChordConfig::default());
        for _ in 0..200 {
            let key = Id::random(&mut rng);
            let owners: Vec<_> = states.iter().filter(|s| s.owns(key, &table)).collect();
            assert_eq!(owners.len(), 1, "exactly one owner per key");
            // And the owner is the interval-correct one.
            let o = owners[0];
            let p = o.predecessor().unwrap();
            assert!(in_half_open(table[p.index()], key, o.id()));
        }
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let table = ids(&[7]);
        let states = build_converged_states(&table, &ChordConfig::default());
        assert_eq!(states[0].successor(), None);
        assert_eq!(states[0].predecessor(), None);
        assert!(states[0].owns(Id::from_low_u64(123), &table));
        assert!(states[0].owns(Id::MAX, &table));
    }

    #[test]
    fn two_node_ring_is_mutual() {
        let table = ids(&[100, 200]);
        let states = build_converged_states(&table, &ChordConfig::default());
        assert_eq!(states[0].successor(), Some(NodeIdx::new(1)));
        assert_eq!(states[1].successor(), Some(NodeIdx::new(0)));
        assert_eq!(states[0].predecessor(), Some(NodeIdx::new(1)));
        assert_eq!(states[1].predecessor(), Some(NodeIdx::new(0)));
    }

    #[test]
    fn random_ids_are_distinct() {
        let mut rng = SmallRng::seed_from_u64(3);
        let table = random_ids(500, &mut rng);
        let set: fxhash::FxHashSet<_> = table.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn empty_ring_rejected() {
        build_converged_states(&[], &ChordConfig::default());
    }

    #[test]
    #[should_panic(expected = "duplicate identifiers")]
    fn duplicate_ids_rejected() {
        build_converged_states(&ids(&[5, 5]), &ChordConfig::default());
    }
}
