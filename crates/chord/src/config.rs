//! Chord configuration.

use mpil_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Chord parameters.
///
/// Defaults mirror the maintenance cadence of the paper's MSPastry
/// configuration (Section 6.2) so the two baselines spend comparable
/// effort on upkeep: stabilization every 30 s (like leaf-set probing),
/// finger repair every 90 s (like routing-table probing), a 3 s probe
/// timeout and 2 retries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChordConfig {
    /// Successor-list length `r` (Stoica et al. recommend `Ω(log N)`;
    /// 8 matches Pastry's leaf-set half-size budget).
    pub successor_list_len: usize,
    /// Period of the stabilize protocol (successor-pointer repair).
    pub stabilize_period: SimDuration,
    /// Period of finger repair; one finger is refreshed per firing,
    /// round-robin.
    pub fix_fingers_period: SimDuration,
    /// Period of predecessor liveness checking.
    pub check_predecessor_period: SimDuration,
    /// Probe/ack timeout.
    pub probe_timeout: SimDuration,
    /// Retries before a peer is declared failed.
    pub probe_retries: u32,
    /// Hop limit on routed messages (loop guard; lookups on a converged
    /// ring take `O(log N)` hops).
    pub max_hops: u32,
    /// Number of replicas: the root stores the pointer and pushes copies
    /// to its `replication - 1` immediate successors (DHash-style). The
    /// paper's single-copy DHT behavior is `replication = 1`.
    pub replication: usize,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            successor_list_len: 8,
            stabilize_period: SimDuration::from_secs(30),
            fix_fingers_period: SimDuration::from_secs(90),
            check_predecessor_period: SimDuration::from_secs(30),
            probe_timeout: SimDuration::from_secs(3),
            probe_retries: 2,
            max_hops: 64,
            replication: 1,
        }
    }
}

impl ChordConfig {
    /// Sets the replication factor.
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication;
        self
    }

    /// Sets the successor-list length.
    pub fn with_successor_list_len(mut self, len: usize) -> Self {
        self.successor_list_len = len;
        self
    }

    /// Validates parameter consistency.
    ///
    /// # Panics
    ///
    /// Panics if the successor list or replication factor is zero, or any
    /// period is zero.
    pub fn assert_valid(&self) {
        assert!(
            self.successor_list_len >= 1,
            "successor list must be non-empty"
        );
        assert!(self.replication >= 1, "replication factor must be >= 1");
        assert!(
            self.replication <= self.successor_list_len,
            "replication cannot exceed the successor list length"
        );
        assert!(!self.stabilize_period.is_zero());
        assert!(!self.fix_fingers_period.is_zero());
        assert!(!self.check_predecessor_period.is_zero());
        assert!(!self.probe_timeout.is_zero());
        assert!(self.max_hops > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_pastry_cadence() {
        let c = ChordConfig::default();
        c.assert_valid();
        assert_eq!(c.stabilize_period, SimDuration::from_secs(30));
        assert_eq!(c.fix_fingers_period, SimDuration::from_secs(90));
        assert_eq!(c.probe_timeout, SimDuration::from_secs(3));
        assert_eq!(c.probe_retries, 2);
        assert_eq!(c.replication, 1);
    }

    #[test]
    fn builders_set_fields() {
        let c = ChordConfig::default()
            .with_replication(4)
            .with_successor_list_len(12);
        assert_eq!(c.replication, 4);
        assert_eq!(c.successor_list_len, 12);
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "replication cannot exceed")]
    fn replication_beyond_successors_rejected() {
        ChordConfig::default().with_replication(9).assert_valid();
    }
}
