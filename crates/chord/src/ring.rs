//! Interval predicates on the 160-bit identifier ring.
//!
//! Chord's correctness hinges on careful open/half-open interval tests
//! modulo 2^160 (Stoica et al., Section 4). We express every test through
//! the clockwise distance `dist_cw(a, x) = (x - a) mod 2^160`, which turns
//! cyclic interval membership into plain integer comparison and makes the
//! wrap-around cases explicit.

use mpil_id::{wrapping_sub, Id};

/// Clockwise distance from `a` to `x` on the ring: `(x - a) mod 2^160`.
///
/// `dist_cw(a, a) == 0`; the distance is asymmetric by design (the ring is
/// directed).
///
/// ```
/// use mpil_chord::ring::dist_cw;
/// use mpil_id::Id;
/// assert_eq!(dist_cw(Id::from_low_u64(10), Id::from_low_u64(13)), Id::from_low_u64(3));
/// // Going clockwise from MAX wraps through ZERO.
/// assert_eq!(dist_cw(Id::MAX, Id::ZERO), Id::from_low_u64(1));
/// ```
pub fn dist_cw(a: Id, x: Id) -> Id {
    wrapping_sub(x, a)
}

/// Is `x` in the open interval `(a, b)` walking clockwise from `a`?
///
/// When `a == b` the interval covers the whole ring except `a` itself
/// (Chord's single-node degenerate case: everything is "between" a node
/// and itself).
pub fn in_open(a: Id, x: Id, b: Id) -> bool {
    let dx = dist_cw(a, x);
    if dx.is_zero() {
        return false;
    }
    let db = dist_cw(a, b);
    if db.is_zero() {
        // Full circle: every x != a lies strictly between.
        return true;
    }
    dx < db
}

/// Is `x` in the half-open interval `(a, b]` walking clockwise from `a`?
///
/// This is the ownership test: key `k` belongs to node `s` iff
/// `k ∈ (predecessor(s), s]`. When `a == b` the interval is the full ring
/// (a single node owns every key, including its own ID).
pub fn in_half_open(a: Id, x: Id, b: Id) -> bool {
    let db = dist_cw(a, b);
    if db.is_zero() {
        // Full circle: a single node owns everything.
        return true;
    }
    let dx = dist_cw(a, x);
    !dx.is_zero() && dx <= db
}

/// The finger start `a + 2^i mod 2^160` (Stoica et al., Table 1:
/// `finger[i].start = (n + 2^(i-1)) mod 2^m`, zero-indexed here).
///
/// # Panics
///
/// Panics if `i >= 160`.
pub fn finger_start(a: Id, i: usize) -> Id {
    assert!(i < mpil_id::ID_BITS, "finger index {i} out of range");
    let mut bytes = [0u8; mpil_id::ID_BYTES];
    // Bit i counting from the least significant end.
    let byte = mpil_id::ID_BYTES - 1 - i / 8;
    bytes[byte] = 1u8 << (i % 8);
    mpil_id::wrapping_add(a, Id::from_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u64) -> Id {
        Id::from_low_u64(v)
    }

    #[test]
    fn dist_cw_basics() {
        assert_eq!(dist_cw(id(5), id(5)), Id::ZERO);
        assert_eq!(dist_cw(id(5), id(8)), id(3));
        // Counter-clockwise neighbors are far away clockwise.
        assert_eq!(dist_cw(id(8), id(5)), wrapping_sub(Id::ZERO, id(3)));
    }

    #[test]
    fn open_interval_no_wrap() {
        assert!(in_open(id(10), id(15), id(20)));
        assert!(!in_open(id(10), id(10), id(20)));
        assert!(!in_open(id(10), id(20), id(20)));
        assert!(!in_open(id(10), id(25), id(20)));
        assert!(!in_open(id(10), id(5), id(20)));
    }

    #[test]
    fn open_interval_wraps() {
        // (MAX-1, 5): contains MAX, 0, 4, not 5 or MAX-1.
        let a = wrapping_sub(Id::MAX, id(1));
        assert!(in_open(a, Id::MAX, id(5)));
        assert!(in_open(a, Id::ZERO, id(5)));
        assert!(in_open(a, id(4), id(5)));
        assert!(!in_open(a, id(5), id(5)));
        assert!(!in_open(a, a, id(5)));
        assert!(!in_open(a, id(100), id(5)));
    }

    #[test]
    fn degenerate_full_circle() {
        // (a, a) = everything except a; (a, a] = everything.
        assert!(in_open(id(7), id(8), id(7)));
        assert!(in_open(id(7), Id::MAX, id(7)));
        assert!(!in_open(id(7), id(7), id(7)));
        assert!(in_half_open(id(7), id(7), id(7)));
        assert!(in_half_open(id(7), id(1234), id(7)));
    }

    #[test]
    fn half_open_includes_right_end() {
        assert!(in_half_open(id(10), id(20), id(20)));
        assert!(!in_half_open(id(10), id(10), id(20)));
        assert!(in_half_open(id(10), id(11), id(20)));
        assert!(!in_half_open(id(10), id(21), id(20)));
    }

    #[test]
    fn finger_start_doubles() {
        let n = id(100);
        assert_eq!(finger_start(n, 0), id(101));
        assert_eq!(finger_start(n, 1), id(102));
        assert_eq!(finger_start(n, 10), id(100 + 1024));
        // The top finger reaches half-way around the ring.
        let half = finger_start(Id::ZERO, 159);
        assert_eq!(half.to_bytes()[0], 0x80);
    }

    #[test]
    fn finger_start_wraps_modulo() {
        let start = finger_start(Id::MAX, 0);
        assert_eq!(start, Id::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn finger_start_rejects_large_index() {
        finger_start(Id::ZERO, 160);
    }
}
