//! Per-node Chord state: successor list, predecessor, finger table.

use mpil_id::{Id, ID_BITS};
use mpil_overlay::NodeIdx;

use crate::ring::{in_half_open, in_open};

/// One node's routing state.
///
/// Invariants maintained by every mutator:
///
/// * the successor list is ordered by clockwise distance from this node,
///   holds no duplicates, and never contains the node itself;
/// * `fingers[i]`, when present, is never the node itself;
/// * the predecessor, when present, is not the node itself.
#[derive(Debug, Clone)]
pub struct ChordState {
    node: NodeIdx,
    id: Id,
    max_successors: usize,
    successors: Vec<NodeIdx>,
    predecessor: Option<NodeIdx>,
    fingers: Vec<Option<NodeIdx>>,
}

impl ChordState {
    /// Creates an empty state for `node` with identifier `id`.
    pub fn new(node: NodeIdx, id: Id, max_successors: usize) -> Self {
        assert!(max_successors >= 1, "successor list must hold >= 1 entry");
        ChordState {
            node,
            id,
            max_successors,
            successors: Vec::new(),
            predecessor: None,
            fingers: vec![None; ID_BITS],
        }
    }

    /// This node's index.
    pub fn node(&self) -> NodeIdx {
        self.node
    }

    /// This node's identifier.
    pub fn id(&self) -> Id {
        self.id
    }

    /// The first (closest clockwise) successor, if any.
    pub fn successor(&self) -> Option<NodeIdx> {
        self.successors.first().copied()
    }

    /// The full successor list, closest first.
    pub fn successors(&self) -> &[NodeIdx] {
        &self.successors
    }

    /// The predecessor pointer.
    pub fn predecessor(&self) -> Option<NodeIdx> {
        self.predecessor
    }

    /// Clears the predecessor pointer (failed liveness check).
    pub fn clear_predecessor(&mut self) {
        self.predecessor = None;
    }

    /// Finger `i` (the cached successor of `id + 2^i`), if known.
    pub fn finger(&self, i: usize) -> Option<NodeIdx> {
        self.fingers[i]
    }

    /// Installs finger `i`. Pointing a finger at the node itself clears
    /// the slot instead (routing to self is never useful).
    pub fn set_finger(&mut self, i: usize, target: NodeIdx) {
        self.fingers[i] = (target != self.node).then_some(target);
    }

    /// Offers `candidate` (with identifier `cand_id`) as a predecessor,
    /// per Chord's `notify`: adopted iff there is no predecessor or the
    /// candidate lies in `(predecessor, self)`.
    pub fn offer_predecessor(&mut self, candidate: NodeIdx, cand_id: Id, ids: &[Id]) {
        if candidate == self.node {
            return;
        }
        match self.predecessor {
            None => self.predecessor = Some(candidate),
            Some(p) => {
                if in_open(ids[p.index()], cand_id, self.id) {
                    self.predecessor = Some(candidate);
                }
            }
        }
    }

    /// Offers `candidate` as a successor; it is inserted at its clockwise
    /// rank if it improves the list. Returns `true` if the list changed.
    pub fn offer_successor(&mut self, candidate: NodeIdx, ids: &[Id]) -> bool {
        if candidate == self.node || self.successors.contains(&candidate) {
            return false;
        }
        let cand_id = ids[candidate.index()];
        let pos = self
            .successors
            .iter()
            .position(|&s| in_open(self.id, cand_id, ids[s.index()]))
            .unwrap_or(self.successors.len());
        if pos == self.max_successors {
            return false;
        }
        self.successors.insert(pos, candidate);
        self.successors.truncate(self.max_successors);
        true
    }

    /// Replaces the successor list wholesale with `head` followed by
    /// `rest` (the reply of a stabilize round), restoring the clockwise
    /// ordering and de-duplication invariants.
    pub fn adopt_successor_list(&mut self, head: NodeIdx, rest: &[NodeIdx], ids: &[Id]) {
        let mut merged: Vec<NodeIdx> = Vec::with_capacity(rest.len() + 1);
        for &cand in std::iter::once(&head).chain(rest) {
            if cand != self.node && !merged.contains(&cand) {
                merged.push(cand);
            }
        }
        // A stale reply can interleave ring positions; re-sort by
        // clockwise distance so successors[0] is always the closest.
        merged.sort_by_key(|&c| crate::ring::dist_cw(self.id, ids[c.index()]));
        merged.truncate(self.max_successors);
        self.successors = merged;
    }

    /// Removes every pointer to `dead` (failure declaration). Returns
    /// `true` if anything was removed.
    pub fn remove_node(&mut self, dead: NodeIdx) -> bool {
        let mut removed = false;
        let before = self.successors.len();
        self.successors.retain(|&s| s != dead);
        removed |= self.successors.len() != before;
        if self.predecessor == Some(dead) {
            self.predecessor = None;
            removed = true;
        }
        for f in &mut self.fingers {
            if *f == Some(dead) {
                *f = None;
                removed = true;
            }
        }
        removed
    }

    /// Does `key` belong to this node?
    ///
    /// True iff `key ∈ (predecessor, self]`; with no predecessor the test
    /// falls back to "no known peer is a better next hop", which keeps
    /// routing terminating while the ring heals.
    pub fn owns(&self, key: Id, ids: &[Id]) -> bool {
        match self.predecessor {
            Some(p) => in_half_open(ids[p.index()], key, self.id),
            None => {
                self.closest_preceding(key, ids).is_none() && {
                    match self.successor() {
                        // If the key belongs to our successor, it is not ours.
                        Some(s) => !in_half_open(self.id, key, ids[s.index()]),
                        None => true,
                    }
                }
            }
        }
    }

    /// The known peer that most closely precedes `key` clockwise —
    /// Chord's `closest_preceding_node`, searching the finger table and
    /// the successor list. Returns `None` when no known peer lies in
    /// `(self, key)`.
    pub fn closest_preceding(&self, key: Id, ids: &[Id]) -> Option<NodeIdx> {
        let mut best: Option<NodeIdx> = None;
        let mut consider = |cand: NodeIdx| {
            let cid = ids[cand.index()];
            if !in_open(self.id, cid, key) {
                return;
            }
            match best {
                None => best = Some(cand),
                Some(b) => {
                    // Closest preceding = furthest clockwise before key.
                    if in_open(ids[b.index()], cid, key) {
                        best = Some(cand);
                    }
                }
            }
        };
        for f in self.fingers.iter().rev().flatten() {
            consider(*f);
        }
        for &s in &self.successors {
            consider(s);
        }
        best
    }

    /// The next routing hop for `key`: the successor if the key lands in
    /// `(self, successor]`, otherwise the closest preceding peer, else
    /// the first successor as a last resort.
    pub fn next_hop(&self, key: Id, ids: &[Id]) -> Option<NodeIdx> {
        let succ = self.successor()?;
        if in_half_open(self.id, key, ids[succ.index()]) {
            return Some(succ);
        }
        self.closest_preceding(key, ids).or(Some(succ))
    }

    /// Every distinct peer this node points at (successors ∪ fingers ∪
    /// predecessor) — the frozen neighbor list MPIL routes on in the
    /// overlay-independence experiments.
    pub fn neighbor_list(&self) -> Vec<NodeIdx> {
        let mut out: Vec<NodeIdx> = Vec::new();
        let mut push = |n: NodeIdx| {
            if n != self.node && !out.contains(&n) {
                out.push(n);
            }
        };
        for &s in &self.successors {
            push(s);
        }
        for f in self.fingers.iter().flatten() {
            push(*f);
        }
        if let Some(p) = self.predecessor {
            push(p);
        }
        out
    }

    /// Sets the predecessor directly (bootstrap only).
    pub(crate) fn set_predecessor(&mut self, p: Option<NodeIdx>) {
        debug_assert!(p != Some(self.node));
        self.predecessor = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(vals: &[u64]) -> Vec<Id> {
        vals.iter().copied().map(Id::from_low_u64).collect()
    }

    fn n(i: u32) -> NodeIdx {
        NodeIdx::new(i)
    }

    /// Nodes at 10, 20, 30, 40; state belongs to node 0 (id 10).
    fn four_node_state() -> (ChordState, Vec<Id>) {
        let table = ids(&[10, 20, 30, 40]);
        let mut st = ChordState::new(n(0), table[0], 3);
        st.offer_successor(n(1), &table);
        st.offer_successor(n(2), &table);
        st.set_predecessor(Some(n(3)));
        (st, table)
    }

    #[test]
    fn successors_keep_clockwise_order() {
        let table = ids(&[10, 20, 30, 40]);
        let mut st = ChordState::new(n(0), table[0], 4);
        // Offer out of order; the list must sort itself clockwise.
        assert!(st.offer_successor(n(3), &table));
        assert!(st.offer_successor(n(1), &table));
        assert!(st.offer_successor(n(2), &table));
        assert_eq!(st.successors(), &[n(1), n(2), n(3)]);
        // Duplicates and self are rejected.
        assert!(!st.offer_successor(n(1), &table));
        assert!(!st.offer_successor(n(0), &table));
    }

    #[test]
    fn successor_list_truncates_at_capacity() {
        let table = ids(&[10, 20, 30, 40]);
        let mut st = ChordState::new(n(0), table[0], 2);
        st.offer_successor(n(3), &table);
        st.offer_successor(n(2), &table);
        st.offer_successor(n(1), &table);
        assert_eq!(st.successors(), &[n(1), n(2)]);
        // A candidate worse than the whole full list is rejected.
        assert!(!st.offer_successor(n(3), &table));
    }

    #[test]
    fn ownership_uses_predecessor_interval() {
        let (st, table) = four_node_state();
        // Node 10 with predecessor 40 owns (40, 10]: keys 41.. and ..10.
        assert!(st.owns(Id::from_low_u64(5), &table));
        assert!(st.owns(Id::from_low_u64(10), &table));
        assert!(st.owns(Id::from_low_u64(45), &table));
        assert!(!st.owns(Id::from_low_u64(15), &table));
        assert!(!st.owns(Id::from_low_u64(40), &table));
    }

    #[test]
    fn next_hop_prefers_final_successor_delivery() {
        let (st, table) = four_node_state();
        // Key 15 ∈ (10, 20] → deliver to successor n(1).
        assert_eq!(st.next_hop(Id::from_low_u64(15), &table), Some(n(1)));
        // Key 35 → closest preceding known peer is n(2) (id 30).
        assert_eq!(st.next_hop(Id::from_low_u64(35), &table), Some(n(2)));
    }

    #[test]
    fn closest_preceding_scans_fingers_and_successors() {
        let table = ids(&[10, 20, 30, 40, 50]);
        let mut st = ChordState::new(n(0), table[0], 2);
        st.offer_successor(n(1), &table);
        st.set_finger(5, n(3)); // id 40
                                // Key 45: finger n(3) (40) precedes it more closely than n(1) (20).
        assert_eq!(
            st.closest_preceding(Id::from_low_u64(45), &table),
            Some(n(3))
        );
        // Key 15: only n(1)'s id 20 is NOT in (10, 15); nothing qualifies.
        assert_eq!(st.closest_preceding(Id::from_low_u64(15), &table), None);
    }

    #[test]
    fn notify_adopts_closer_predecessor() {
        let table = ids(&[10, 20, 30, 40]);
        let mut st = ChordState::new(n(0), table[0], 2);
        st.offer_predecessor(n(2), table[2], &table); // 30
        assert_eq!(st.predecessor(), Some(n(2)));
        // 40 ∈ (30, 10) → closer.
        st.offer_predecessor(n(3), table[3], &table);
        assert_eq!(st.predecessor(), Some(n(3)));
        // 20 ∉ (40, 10) → rejected.
        st.offer_predecessor(n(1), table[1], &table);
        assert_eq!(st.predecessor(), Some(n(3)));
    }

    #[test]
    fn remove_node_purges_all_pointers() {
        let (mut st, _table) = four_node_state();
        st.set_finger(7, n(1));
        assert!(st.remove_node(n(1)));
        assert!(!st.successors().contains(&n(1)));
        assert_eq!(st.finger(7), None);
        assert!(st.remove_node(n(3))); // predecessor
        assert_eq!(st.predecessor(), None);
        assert!(!st.remove_node(n(3))); // already gone
    }

    #[test]
    fn neighbor_list_dedups_and_excludes_self() {
        let (mut st, _table) = four_node_state();
        st.set_finger(3, n(1)); // duplicate of successor
        st.set_finger(9, n(0)); // self → cleared
        let nl = st.neighbor_list();
        assert_eq!(nl.len(), 3); // n1, n2, n3
        assert!(!nl.contains(&n(0)));
    }

    #[test]
    fn set_finger_to_self_clears_slot() {
        let (mut st, _table) = four_node_state();
        st.set_finger(4, n(2));
        assert_eq!(st.finger(4), Some(n(2)));
        st.set_finger(4, n(0));
        assert_eq!(st.finger(4), None);
    }

    #[test]
    fn adopt_successor_list_truncates_and_dedups() {
        let table = ids(&[10, 20, 30, 40, 50]);
        let mut st = ChordState::new(n(0), table[0], 3);
        st.adopt_successor_list(n(1), &[n(1), n(0), n(2), n(3), n(4)], &table);
        assert_eq!(st.successors(), &[n(1), n(2), n(3)]);
    }
}
