//! Chord under the paper's flapping perturbation, and MPIL routing over
//! the frozen Chord overlay — extending Section 6.2's experiment to a
//! second structured topology.

use mpil_chord::{build_converged_states, random_ids, ChordConfig, ChordSim, LookupOutcome};
use mpil_id::Id;
use mpil_overlay::NodeIdx;
use mpil_sim::{AlwaysOn, ConstantLatency, Flapping, FlappingConfig, SimDuration};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: usize = 200;
const OBJECTS: usize = 40;

fn build_sim(seed: u64, config: ChordConfig) -> (ChordSim, Vec<Id>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let ids = random_ids(N, &mut rng);
    let states = build_converged_states(&ids, &config);
    let sim = ChordSim::new(
        ids.clone(),
        states,
        config,
        Box::new(AlwaysOn),
        Box::new(ConstantLatency(SimDuration::from_millis(20))),
        seed,
    );
    (sim, ids)
}

/// Runs stage 1 (static inserts) then stage 2 (flapping lookups),
/// returning the success rate in percent.
fn chord_success_under_flapping(probability: f64, seed: u64) -> f64 {
    let config = ChordConfig::default();
    let (mut sim, _ids) = build_sim(seed, config);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xbeef);
    let origin = NodeIdx::new(0);
    let objects: Vec<Id> = (0..OBJECTS).map(|_| Id::random(&mut rng)).collect();
    for &o in &objects {
        sim.insert(origin, o);
    }
    sim.run_to_quiescence();

    // Stage 2: flapping (origin exempt), maintenance on, one lookup per
    // period as in Section 3.
    let flap = FlappingConfig::idle_offline_secs(30, 30, probability);
    let period = flap.period();
    let mut model = Flapping::new(flap, N, seed ^ 0x5a5a, &mut rng);
    model.exempt(origin);
    sim.set_availability(Box::new(model));
    sim.start_maintenance();
    // Let every node enter its flapping regime first.
    sim.run_until(sim.now() + period);

    let mut ok = 0usize;
    let mut handles = Vec::new();
    for &o in &objects {
        let deadline = sim.now() + SimDuration::from_secs(60).min(period);
        handles.push((sim.issue_lookup(origin, o, deadline), deadline));
        let next = sim.now() + period;
        sim.run_until(next);
    }
    for (h, _) in handles {
        if matches!(sim.lookup_outcome(h), LookupOutcome::Succeeded { .. }) {
            ok += 1;
        }
    }
    100.0 * ok as f64 / OBJECTS as f64
}

#[test]
fn chord_is_near_perfect_without_perturbation() {
    let rate = chord_success_under_flapping(0.0, 42);
    assert!(rate >= 97.5, "static ring must succeed, got {rate}%");
}

#[test]
fn chord_degrades_with_perturbation() {
    let low = chord_success_under_flapping(0.2, 42);
    let high = chord_success_under_flapping(0.9, 42);
    assert!(
        high <= low,
        "success must not improve with perturbation (p=0.2 {low}% vs p=0.9 {high}%)"
    );
    assert!(
        high < 80.0,
        "heavy flapping must visibly hurt a single-copy DHT, got {high}%"
    );
}

#[test]
fn replication_improves_perturbed_success() {
    // Same scenario, replication 1 vs 4, moderate flapping.
    let run = |replication: usize| -> f64 {
        let config = ChordConfig::default().with_replication(replication);
        let (mut sim, _ids) = build_sim(7, config);
        let mut rng = SmallRng::seed_from_u64(99);
        let origin = NodeIdx::new(0);
        let objects: Vec<Id> = (0..OBJECTS).map(|_| Id::random(&mut rng)).collect();
        for &o in &objects {
            sim.insert(origin, o);
        }
        sim.run_to_quiescence();
        let flap = FlappingConfig::idle_offline_secs(30, 30, 0.6);
        let period = flap.period();
        let mut model = Flapping::new(flap, N, 0x77, &mut rng);
        model.exempt(origin);
        sim.set_availability(Box::new(model));
        sim.start_maintenance();
        sim.run_until(sim.now() + period);
        let mut handles = Vec::new();
        for &o in &objects {
            let deadline = sim.now() + period;
            handles.push(sim.issue_lookup(origin, o, deadline));
            let next = sim.now() + period;
            sim.run_until(next);
        }
        let ok = handles
            .iter()
            .filter(|&&h| matches!(sim.lookup_outcome(h), LookupOutcome::Succeeded { .. }))
            .count();
        100.0 * ok as f64 / OBJECTS as f64
    };
    let single = run(1);
    let replicated = run(4);
    assert!(
        replicated >= single,
        "replication must not hurt ({single}% vs {replicated}%)"
    );
}

/// MPIL routing over the frozen Chord overlay (successors ∪ fingers ∪
/// predecessor as a static graph, no maintenance) must beat plain Chord
/// under heavy perturbation — the paper's Section 6.2 argument ported to
/// a Chord substrate.
#[test]
fn mpil_over_frozen_chord_overlay_beats_chord_under_heavy_flapping() {
    use mpil::{DynamicConfig, DynamicNetwork, LookupStatus, MpilConfig};

    let probability = 0.9;
    let seed = 42;
    let chord_rate = chord_success_under_flapping(probability, seed);

    // Build the same ring, freeze its neighbor lists, run MPIL on top.
    let config = ChordConfig::default();
    let (sim, ids) = build_sim(seed, config);
    let neighbors = sim.neighbor_lists();

    let mut rng = SmallRng::seed_from_u64(seed ^ 0xbeef);
    let origin = NodeIdx::new(0);
    let objects: Vec<Id> = (0..OBJECTS).map(|_| Id::random(&mut rng)).collect();

    let mpil_config = MpilConfig::default()
        .with_max_flows(10)
        .with_num_replicas(5);
    let dyn_config = DynamicConfig {
        mpil: mpil_config,
        ..DynamicConfig::default()
    };
    let mut net = DynamicNetwork::new(
        ids,
        neighbors,
        dyn_config,
        Box::new(AlwaysOn),
        Box::new(ConstantLatency(SimDuration::from_millis(20))),
        seed,
    );
    for &o in &objects {
        net.insert(origin, o);
    }
    net.run_to_quiescence();

    let flap = FlappingConfig::idle_offline_secs(30, 30, probability);
    let period = flap.period();
    let mut model = Flapping::new(flap, N, seed ^ 0x5a5a, &mut rng);
    model.exempt(origin);
    net.set_availability(Box::new(model));
    net.run_until(net.now() + period);

    let mut handles = Vec::new();
    for &o in &objects {
        let deadline = net.now() + SimDuration::from_secs(60).min(period);
        handles.push(net.issue_lookup(origin, o, deadline));
        let next = net.now() + period;
        net.run_until(next);
    }
    let ok = handles
        .iter()
        .filter(|&&h| matches!(net.lookup_status(h), LookupStatus::Succeeded { .. }))
        .count();
    let mpil_rate = 100.0 * ok as f64 / OBJECTS as f64;

    assert!(
        mpil_rate > chord_rate,
        "MPIL over the frozen Chord graph ({mpil_rate}%) must beat \
         maintained Chord ({chord_rate}%) at p={probability}"
    );
}

/// Determinism: identical seeds give identical success rates.
#[test]
fn perturbation_runs_are_deterministic() {
    let a = chord_success_under_flapping(0.5, 1234);
    let b = chord_success_under_flapping(0.5, 1234);
    assert_eq!(a, b);
}

/// Random sanity: the flapping model's period arithmetic lines up with
/// lookup cadence (no panics, monotone time) across seeds.
#[test]
fn flapping_cadence_never_panics_across_seeds() {
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..3 {
        let seed = rng.gen();
        let _ = chord_success_under_flapping(0.4, seed);
    }
}
