//! Property-based tests for the ring algebra and converged bootstrap.

use mpil_chord::ring::{dist_cw, finger_start, in_half_open, in_open};
use mpil_chord::{build_converged_states, ChordConfig};
use mpil_id::{wrapping_add, wrapping_sub, Id};
use proptest::prelude::*;

fn arb_id() -> impl Strategy<Value = Id> {
    proptest::array::uniform20(any::<u8>()).prop_map(Id::from_bytes)
}

proptest! {
    /// dist_cw(a, x) + dist_cw(x, a) = 0 (mod 2^160) unless a == x.
    #[test]
    fn clockwise_distances_are_complementary(a in arb_id(), x in arb_id()) {
        let sum = wrapping_add(dist_cw(a, x), dist_cw(x, a));
        if a == x {
            prop_assert_eq!(sum, Id::ZERO);
        } else {
            prop_assert_eq!(sum, Id::ZERO);
            prop_assert!(!dist_cw(a, x).is_zero());
        }
    }

    /// Exactly one of x ∈ (a, b], x ∈ (b, a], x ∈ {a} ∩ {b} partitions
    /// the ring: for distinct a, b every x is in exactly one half.
    #[test]
    fn half_open_intervals_partition_the_ring(a in arb_id(), b in arb_id(), x in arb_id()) {
        prop_assume!(a != b);
        let in_ab = in_half_open(a, x, b);
        let in_ba = in_half_open(b, x, a);
        prop_assert!(in_ab ^ in_ba, "every key is in exactly one arc");
    }

    /// Open intervals are contained in their half-open closures.
    #[test]
    fn open_subset_of_half_open(a in arb_id(), b in arb_id(), x in arb_id()) {
        if in_open(a, x, b) {
            prop_assert!(in_half_open(a, x, b));
        }
    }

    /// The endpoint is in (a, b] but never in (a, b).
    #[test]
    fn interval_endpoints(a in arb_id(), b in arb_id()) {
        prop_assume!(a != b);
        prop_assert!(in_half_open(a, b, b));
        prop_assert!(!in_open(a, b, b));
        prop_assert!(!in_half_open(a, a, b));
    }

    /// finger_start advances by exactly 2^i.
    #[test]
    fn finger_start_offset(a in arb_id(), i in 0usize..160) {
        let s = finger_start(a, i);
        let back = wrapping_sub(s, a);
        // back must be the single bit 2^i.
        let bytes = back.to_bytes();
        let byte = mpil_id::ID_BYTES - 1 - i / 8;
        for (j, &v) in bytes.iter().enumerate() {
            if j == byte {
                prop_assert_eq!(v, 1u8 << (i % 8));
            } else {
                prop_assert_eq!(v, 0);
            }
        }
    }

    /// Transitivity along the clockwise arc: if x ∈ (a, b) and
    /// y ∈ (x, b) then y ∈ (a, b).
    #[test]
    fn open_interval_transitivity(a in arb_id(), b in arb_id(), x in arb_id(), y in arb_id()) {
        if in_open(a, x, b) && in_open(x, y, b) {
            prop_assert!(in_open(a, y, b));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On any converged ring, each node's first successor is the ring
    /// successor and ownership covers each key exactly once.
    #[test]
    fn converged_rings_are_well_formed(seed in 0u64..1000, n in 2usize..40) {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let ids = mpil_chord::random_ids(n, &mut rng);
        let states = build_converged_states(&ids, &ChordConfig::default());

        let mut ring: Vec<usize> = (0..n).collect();
        ring.sort_by_key(|&i| ids[i]);
        for (pos, &i) in ring.iter().enumerate() {
            let succ = ring[(pos + 1) % n];
            prop_assert_eq!(
                states[i].successor().map(|s| s.index()),
                Some(succ),
                "first successor must be the ring successor"
            );
            let pred = ring[(pos + n - 1) % n];
            prop_assert_eq!(states[i].predecessor().map(|p| p.index()), Some(pred));
        }

        let key = Id::random(&mut rng);
        let owners = states.iter().filter(|s| s.owns(key, &ids)).count();
        prop_assert_eq!(owners, 1);
    }

    /// next_hop either hands the message to the key's owner (final
    /// delivery: the owner's ID lies just *past* the key) or makes
    /// strict clockwise progress toward the key.
    #[test]
    fn next_hop_progresses_or_delivers(seed in 0u64..500, n in 3usize..32) {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let ids = mpil_chord::random_ids(n, &mut rng);
        let states = build_converged_states(&ids, &ChordConfig::default());
        let key = Id::random(&mut rng);
        for st in &states {
            if st.owns(key, &ids) {
                continue;
            }
            let next = st.next_hop(key, &ids).expect("connected ring");
            if states[next.index()].owns(key, &ids) {
                continue; // final hop: delivered to the root
            }
            // Otherwise the next hop must be strictly closer (clockwise):
            // dist_cw(self, next) < dist_cw(self, key) and next precedes key.
            let before = dist_cw(st.id(), key);
            let after = dist_cw(ids[next.index()], key);
            prop_assert!(after < before, "routing must progress clockwise");
        }
    }
}
