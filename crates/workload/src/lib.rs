//! # mpil-workload
//!
//! Experiment support for the MPIL reproduction: workload generators
//! matching the paper's methodology (random object IDs, random
//! origin nodes, insert-then-lookup phases), streaming statistics, and
//! the table/CSV rendering the bench binaries print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod requests;
pub mod stats;
pub mod table;

pub use requests::{InsertLookupWorkload, WorkloadConfig};
pub use stats::{Percentiles, RunningStats};
pub use table::{Align, Table};
