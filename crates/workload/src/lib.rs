//! # mpil-workload
//!
//! Experiment support for the MPIL reproduction: workload generators
//! matching the paper's methodology (random object IDs, random
//! origin nodes, insert-then-lookup phases), streaming statistics, the
//! table/CSV rendering the bench binaries print, and clock-free arrival
//! pacing (open/closed loop) for the live load generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pacing;
pub mod requests;
pub mod stats;
pub mod table;

pub use pacing::{Pacer, PacingMode};
pub use requests::{InsertLookupWorkload, WorkloadConfig};
pub use stats::{Percentiles, RunningStats};
pub use table::{Align, Table};
