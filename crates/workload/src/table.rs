//! Aligned text tables and CSV rendering for the bench binaries.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-justified (labels).
    Left,
    /// Right-justified (numbers).
    Right,
}

/// A simple text table that renders either aligned monospace output (the
/// default, mirroring the paper's tables) or CSV.
///
/// ```
/// use mpil_workload::Table;
/// let mut t = Table::new(vec!["n".into(), "success %".into()]);
/// t.row(vec!["4000".into(), "99.1".into()]);
/// let text = t.render();
/// assert!(text.contains("4000"));
/// assert_eq!(t.render_csv().lines().count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with the given column headers. All columns default
    /// to right alignment except the first.
    pub fn new(headers: Vec<String>) -> Self {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Overrides column alignments.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the header count.
    pub fn set_aligns(&mut self, aligns: Vec<Align>) {
        assert_eq!(aligns.len(), self.headers.len(), "alignment arity");
        self.aligns = aligns;
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when no data rows are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned monospace table with a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                match self.aligns[i] {
                    Align::Left => {
                        let _ = write!(out, "{cell:<width$}", width = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{cell:>width$}", width = widths[i]);
                    }
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') || c.contains('\n') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Formats a float with `digits` fractional digits, trimming to a clean
/// fixed width for table cells.
pub fn fmt_f64(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["alpha".into(), "1.5".into()]);
        t.row(vec!["b".into(), "100".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Numbers are right-aligned under "value".
        assert!(lines[2].ends_with("1.5"));
        assert!(lines[3].ends_with("100"));
        // Left column is left-aligned.
        assert!(lines[2].starts_with("alpha"));
        assert!(lines[3].starts_with("b"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["only".into()]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn fmt_f64_controls_precision() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(2.0, 0), "2");
    }

    #[test]
    fn len_and_empty() {
        let t = Table::new(vec!["h".into()]);
        assert!(t.is_empty());
        assert_eq!(sample().len(), 2);
    }
}
