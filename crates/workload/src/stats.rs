//! Streaming statistics for experiment measurements.

use serde::{Deserialize, Serialize};

/// Welford-style running mean/variance plus min/max.
///
/// ```
/// use mpil_workload::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.std_dev(), 2.0); // population std dev
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// Exact percentiles over a stored sample set (for latency/hop reports).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.samples[rank.saturating_sub(1).min(n - 1)])
    }

    /// The median.
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Merges another sample set into this one (cross-worker / cross-
    /// phase aggregation: the percentile of the merged set is computed
    /// over the union of samples, which no summary-statistic merge can
    /// reproduce).
    pub fn merge(&mut self, other: &Percentiles) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

impl Extend<f64> for Percentiles {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_sane() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let s: RunningStats = (1..=100).map(f64::from).collect();
        assert!((s.mean() - 50.5).abs() < 1e-9);
        // Population variance of 1..=100 = (n^2-1)/12 = 833.25
        assert!((s.variance() - 833.25).abs() < 1e-9);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a: RunningStats = (1..=50).map(f64::from).collect();
        let b: RunningStats = (51..=100).map(f64::from).collect();
        a.merge(&b);
        let all: RunningStats = (1..=100).map(f64::from).collect();
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [3.0, 5.0].into_iter().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        p.extend((1..=10).map(f64::from));
        assert_eq!(p.percentile(50.0), Some(5.0));
        assert_eq!(p.percentile(90.0), Some(9.0));
        assert_eq!(p.percentile(100.0), Some(10.0));
        assert_eq!(p.percentile(0.0), Some(1.0));
        assert_eq!(p.median(), Some(5.0));
    }

    #[test]
    fn percentiles_merge_equals_union() {
        let mut a = Percentiles::new();
        a.extend((1..=50).map(f64::from));
        let mut b = Percentiles::new();
        b.extend((51..=100).map(f64::from));
        // Sorting `a` first must not poison the merge: the union is
        // re-sorted lazily.
        assert_eq!(a.percentile(100.0), Some(50.0));
        a.merge(&b);
        assert_eq!(a.len(), 100);
        let mut union = Percentiles::new();
        union.extend((1..=100).map(f64::from));
        for p in [0.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(a.percentile(p), union.percentile(p), "p{p}");
        }
        // Merging an empty set is the identity.
        let before = a.clone();
        a.merge(&Percentiles::new());
        assert_eq!(a, before);
    }

    #[test]
    fn percentiles_empty_is_none() {
        let mut p = Percentiles::new();
        assert_eq!(p.median(), None);
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        let mut p = Percentiles::new();
        p.push(1.0);
        let _ = p.percentile(101.0);
    }
}
