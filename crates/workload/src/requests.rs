//! Request generators following the paper's methodology.
//!
//! Section 6.1: "For each overlay, random nodes are chosen to insert
//! objects with different IDs 100 times. After that, those 100 objects
//! are queried one by one again by randomly chosen nodes."
//!
//! Section 6.2 / Section 3: one designated origin node generates 1000
//! insertions, then 1000 lookups for the same IDs.

use mpil_id::Id;
use mpil_overlay::NodeIdx;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for an insert-then-lookup workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of objects (insert/lookup pairs).
    pub objects: usize,
    /// Number of overlay nodes (origin indices are drawn below this).
    pub nodes: usize,
    /// If set, all inserts and lookups originate at this node (the
    /// Section 6.2 methodology); otherwise origins are uniformly random
    /// per operation (Section 6.1).
    pub fixed_origin: Option<NodeIdx>,
    /// Master seed.
    pub seed: u64,
}

/// A generated workload: object IDs plus insert/lookup origins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsertLookupWorkload {
    /// Object IDs, unique.
    pub objects: Vec<Id>,
    /// Origin node of each insertion (`objects[i]` inserted from
    /// `insert_origins[i]`).
    pub insert_origins: Vec<NodeIdx>,
    /// Origin node of each lookup.
    pub lookup_origins: Vec<NodeIdx>,
}

impl InsertLookupWorkload {
    /// Generates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `config.nodes == 0`, `config.objects == 0`, or the fixed
    /// origin is out of range.
    pub fn generate(config: WorkloadConfig) -> Self {
        assert!(config.nodes > 0, "need at least one node");
        assert!(config.objects > 0, "need at least one object");
        if let Some(o) = config.fixed_origin {
            assert!(o.index() < config.nodes, "fixed origin out of range");
        }
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut objects = Vec::with_capacity(config.objects);
        let mut seen =
            fxhash::FxHashSet::with_capacity_and_hasher(config.objects, Default::default());
        while objects.len() < config.objects {
            let id = Id::random(&mut rng);
            if seen.insert(id) {
                objects.push(id);
            }
        }
        let origin = |rng: &mut SmallRng| match config.fixed_origin {
            Some(o) => o,
            None => NodeIdx::new(rng.gen_range(0..config.nodes as u32)),
        };
        let insert_origins = (0..config.objects).map(|_| origin(&mut rng)).collect();
        let lookup_origins = (0..config.objects).map(|_| origin(&mut rng)).collect();
        InsertLookupWorkload {
            objects,
            insert_origins,
            lookup_origins,
        }
    }

    /// Number of insert/lookup pairs.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` for an empty workload (never produced by
    /// [`InsertLookupWorkload::generate`]).
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates `(object, insert_origin)` pairs.
    pub fn inserts(&self) -> impl Iterator<Item = (Id, NodeIdx)> + '_ {
        self.objects
            .iter()
            .copied()
            .zip(self.insert_origins.iter().copied())
    }

    /// Iterates `(object, lookup_origin)` pairs.
    pub fn lookups(&self) -> impl Iterator<Item = (Id, NodeIdx)> + '_ {
        self.objects
            .iter()
            .copied()
            .zip(self.lookup_origins.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(objects: usize, nodes: usize, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            objects,
            nodes,
            fixed_origin: None,
            seed,
        }
    }

    #[test]
    fn objects_are_unique_and_counted() {
        let w = InsertLookupWorkload::generate(cfg(500, 100, 1));
        assert_eq!(w.len(), 500);
        let set: fxhash::FxHashSet<_> = w.objects.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn origins_are_in_range() {
        let w = InsertLookupWorkload::generate(cfg(200, 37, 2));
        for (_, o) in w.inserts().chain(w.lookups()) {
            assert!(o.index() < 37);
        }
    }

    #[test]
    fn fixed_origin_pins_everything() {
        let mut c = cfg(50, 10, 3);
        c.fixed_origin = Some(NodeIdx::new(4));
        let w = InsertLookupWorkload::generate(c);
        assert!(w.inserts().all(|(_, o)| o == NodeIdx::new(4)));
        assert!(w.lookups().all(|(_, o)| o == NodeIdx::new(4)));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = InsertLookupWorkload::generate(cfg(100, 20, 7));
        let b = InsertLookupWorkload::generate(cfg(100, 20, 7));
        assert_eq!(a, b);
        let c = InsertLookupWorkload::generate(cfg(100, 20, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn origins_vary_when_not_fixed() {
        let w = InsertLookupWorkload::generate(cfg(100, 50, 9));
        let distinct: fxhash::FxHashSet<_> = w.insert_origins.iter().collect();
        assert!(distinct.len() > 10, "origins should be spread out");
    }

    #[test]
    #[should_panic(expected = "fixed origin out of range")]
    fn rejects_out_of_range_origin() {
        let mut c = cfg(10, 5, 0);
        c.fixed_origin = Some(NodeIdx::new(5));
        let _ = InsertLookupWorkload::generate(c);
    }
}
