//! Arrival pacing for the live load generator (`mpil-load`).
//!
//! Two classic load-generation disciplines over one bookkeeping core:
//!
//! * **Open loop** — requests become due on a fixed schedule (`rate`
//!   requests per second from time zero), independent of how fast the
//!   system answers. This is the honest way to measure latency under an
//!   *offered* rate: a slow server does not slow the arrival process
//!   down, it just piles up in-flight requests. A bounded in-flight
//!   window keeps a melted-down server from accumulating unbounded
//!   client state (requests due beyond the window are deferred, and the
//!   achieved-vs-offered gap is visible in the report).
//! * **Closed loop** — a fixed number of virtual workers, each issuing
//!   its next request the moment the previous one completes. Throughput
//!   is whatever the system sustains; the window *is* the worker count.
//!
//! The pacer is deliberately clock-free: callers feed it `now` as a
//! [`Duration`] since their own epoch (the daemon's [`WallClock`] in
//! production, a plain constant in tests), so every schedule decision is
//! a pure function of its inputs — this crate sits in the deterministic
//! zone of the `mpil-lint` contract and must not read wall time itself.
//!
//! [`WallClock`]: https://docs.rs/ — see `mpil_harness::WallClock`, the
//! workspace's sanctioned wall-clock touchpoint.

use std::time::Duration;

/// The arrival discipline of a [`Pacer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacingMode {
    /// Fixed-schedule arrivals: request `i` (0-based) is due at
    /// `i / rate_per_s` seconds after time zero.
    Open {
        /// Target offered rate, requests per second. Must be positive.
        rate_per_s: f64,
    },
    /// Worker-style arrivals: a request is due whenever the in-flight
    /// count is below the window.
    Closed,
}

/// Schedules request issue times against a bounded in-flight window.
///
/// ```
/// use std::time::Duration;
/// use mpil_workload::Pacer;
///
/// // 100 req/s, at most 4 outstanding, 10 requests total.
/// let mut p = Pacer::open_loop(100.0, 4, 10);
/// // At t = 25 ms, arrivals 0..=2 are due (0, 10, 20 ms).
/// assert_eq!(p.due(Duration::from_millis(25)), 3);
/// p.record_issued(3);
/// assert_eq!(p.in_flight(), 3);
/// p.record_completed(1);
/// assert_eq!(p.completed(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pacer {
    mode: PacingMode,
    window: usize,
    total: u64,
    issued: u64,
    completed: u64,
}

impl Pacer {
    /// An open-loop pacer: `rate_per_s` arrivals per second, at most
    /// `window` in flight, `total` requests overall.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_s` is not positive or `window` is zero.
    pub fn open_loop(rate_per_s: f64, window: usize, total: u64) -> Self {
        assert!(
            rate_per_s > 0.0 && rate_per_s.is_finite(),
            "open-loop rate must be positive"
        );
        assert!(window > 0, "in-flight window must be positive");
        Pacer {
            mode: PacingMode::Open { rate_per_s },
            window,
            total,
            issued: 0,
            completed: 0,
        }
    }

    /// A closed-loop pacer: `workers` virtual workers (the in-flight
    /// window), `total` requests overall.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn closed_loop(workers: usize, total: u64) -> Self {
        assert!(workers > 0, "need at least one worker");
        Pacer {
            mode: PacingMode::Closed,
            window: workers,
            total,
            issued: 0,
            completed: 0,
        }
    }

    /// The arrival discipline.
    pub fn mode(&self) -> PacingMode {
        self.mode
    }

    /// The in-flight window (worker count in closed-loop mode).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Requests the pacer will issue over its lifetime.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Requests completed (or failed) so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests currently outstanding.
    pub fn in_flight(&self) -> usize {
        (self.issued - self.completed) as usize
    }

    /// `true` once every request has been issued *and* resolved.
    pub fn finished(&self) -> bool {
        self.issued == self.total && self.completed == self.issued
    }

    /// How many requests should be issued at time `now`: the arrivals
    /// the schedule has made due, capped by the free window slots and
    /// the remaining total.
    pub fn due(&self, now: Duration) -> u64 {
        let remaining = self.total - self.issued;
        let room = (self.window - self.in_flight()) as u64;
        let scheduled = match self.mode {
            PacingMode::Open { rate_per_s } => {
                // Arrival i is due at i / rate; by `now`, floor(now·rate) + 1
                // arrivals have passed their due time (arrival 0 at t = 0).
                let due_by_now = (now.as_secs_f64() * rate_per_s).floor() as u64 + 1;
                due_by_now.saturating_sub(self.issued)
            }
            PacingMode::Closed => room,
        };
        scheduled.min(room).min(remaining)
    }

    /// The schedule time of the next arrival not yet issued: when
    /// [`Pacer::due`] turns positive, assuming a free window slot.
    /// `None` when everything has been issued, or in closed-loop mode
    /// (where issue times are completion-driven, not scheduled).
    pub fn next_due_at(&self) -> Option<Duration> {
        if self.issued >= self.total {
            return None;
        }
        match self.mode {
            PacingMode::Open { rate_per_s } => {
                Some(Duration::from_secs_f64(self.issued as f64 / rate_per_s))
            }
            PacingMode::Closed => None,
        }
    }

    /// Records `n` requests issued.
    ///
    /// # Panics
    ///
    /// Panics if this would exceed the total or the window.
    pub fn record_issued(&mut self, n: u64) {
        assert!(self.issued + n <= self.total, "issued past the total");
        self.issued += n;
        assert!(
            self.in_flight() <= self.window,
            "issued past the in-flight window"
        );
    }

    /// Records `n` requests resolved (completed or failed).
    ///
    /// # Panics
    ///
    /// Panics if more requests resolve than were issued.
    pub fn record_completed(&mut self, n: u64) {
        assert!(self.completed + n <= self.issued, "completed past issued");
        self.completed += n;
    }

    /// The rate actually offered so far: issued requests per second of
    /// elapsed time. Zero at `now == 0`.
    pub fn offered_rate(&self, now: Duration) -> f64 {
        let s = now.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.issued as f64 / s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn open_loop_schedule_is_rate_times_time() {
        // 200 req/s: arrivals at 0, 5, 10, 15, ... ms.
        let mut p = Pacer::open_loop(200.0, 1000, 1000);
        assert_eq!(p.due(Duration::ZERO), 1, "arrival 0 is due at t = 0");
        assert_eq!(p.due(4 * MS), 1);
        assert_eq!(p.due(5 * MS), 2);
        assert_eq!(p.due(99 * MS), 20);
        p.record_issued(20);
        assert_eq!(p.due(99 * MS), 0, "schedule caught up");
        assert_eq!(p.due(100 * MS), 1);
        // Offered-rate accounting: 20 issued over 100 ms = 200/s.
        assert!((p.offered_rate(100 * MS) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn open_loop_window_bounds_in_flight() {
        let mut p = Pacer::open_loop(1000.0, 4, 100);
        // At t = 1 s the schedule wants all 100, but only 4 fit.
        assert_eq!(p.due(Duration::from_secs(1)), 4);
        p.record_issued(4);
        assert_eq!(p.in_flight(), 4);
        assert_eq!(p.due(Duration::from_secs(1)), 0, "window full");
        p.record_completed(3);
        assert_eq!(p.due(Duration::from_secs(1)), 3, "slots freed");
        assert_eq!(p.in_flight(), 1);
    }

    #[test]
    fn open_loop_total_caps_the_schedule() {
        let mut p = Pacer::open_loop(100.0, 64, 5);
        assert_eq!(p.due(Duration::from_secs(10)), 5);
        p.record_issued(5);
        assert_eq!(p.due(Duration::from_secs(20)), 0);
        assert!(!p.finished(), "issued but not resolved");
        p.record_completed(5);
        assert!(p.finished());
    }

    #[test]
    fn next_due_at_names_the_schedule_slot() {
        let mut p = Pacer::open_loop(100.0, 16, 10);
        assert_eq!(p.next_due_at(), Some(Duration::ZERO));
        p.record_issued(3);
        // Arrival 3 is due at 3/100 s = 30 ms.
        assert_eq!(p.next_due_at(), Some(30 * MS));
        p.record_issued(7);
        p.record_completed(10);
        assert_eq!(p.next_due_at(), None, "everything issued");
    }

    #[test]
    fn closed_loop_is_completion_driven() {
        let mut p = Pacer::closed_loop(3, 10);
        // Time is irrelevant: workers fill the window immediately.
        assert_eq!(p.due(Duration::ZERO), 3);
        assert_eq!(p.due(Duration::from_secs(999)), 3);
        p.record_issued(3);
        assert_eq!(p.due(Duration::ZERO), 0);
        assert_eq!(p.next_due_at(), None);
        p.record_completed(2);
        assert_eq!(p.due(Duration::ZERO), 2, "one new request per completion");
        p.record_issued(2);
        p.record_completed(3);
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    fn closed_loop_tail_respects_the_total() {
        let mut p = Pacer::closed_loop(4, 5);
        p.record_issued(4);
        p.record_completed(4);
        assert_eq!(p.due(Duration::ZERO), 1, "only one request left");
        p.record_issued(1);
        assert_eq!(p.due(Duration::ZERO), 0);
        p.record_completed(1);
        assert!(p.finished());
    }

    #[test]
    fn offered_rate_is_zero_at_time_zero() {
        let p = Pacer::open_loop(50.0, 4, 10);
        assert_eq!(p.offered_rate(Duration::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "in-flight window")]
    fn issuing_past_the_window_panics() {
        let mut p = Pacer::open_loop(1000.0, 2, 10);
        p.record_issued(3);
    }

    #[test]
    #[should_panic(expected = "past the total")]
    fn issuing_past_the_total_panics() {
        let mut p = Pacer::closed_loop(8, 2);
        p.record_issued(3);
    }

    #[test]
    #[should_panic(expected = "completed past issued")]
    fn completing_more_than_issued_panics() {
        let mut p = Pacer::closed_loop(8, 5);
        p.record_issued(1);
        p.record_completed(2);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_is_rejected() {
        let _ = Pacer::open_loop(0.0, 1, 1);
    }
}
