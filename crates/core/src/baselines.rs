//! Unstructured-search baselines: TTL-limited flooding and k random
//! walks.
//!
//! Section 1 of the paper positions MPIL against Gnutella-style flooding
//! ("perturbation-resistant and overlay-independent, \[but\] neither
//! efficient nor scalable") and Section 2 against the random-walk search
//! of Lv et al. These baselines make that comparison measurable: all
//! three run on the same static overlays and store model, so the
//! `ablation_baselines` bench can put success rate against traffic for
//! each.

use std::collections::VecDeque;

use fxhash::FxHashSet;
use mpil_id::{Id, IdMap};
use mpil_overlay::{NodeIdx, Topology};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

use crate::report::LookupReport;

/// A Gnutella-style flooding/random-walk search engine over a static
/// overlay, sharing MPIL's object-pointer store model.
///
/// Objects are stored only at their owner (unstructured systems do not
/// place pointers); queries must find the owner.
pub struct UnstructuredEngine<'a> {
    topo: &'a Topology,
    stores: Vec<IdMap<NodeIdx>>,
    rng: SmallRng,
}

impl<'a> UnstructuredEngine<'a> {
    /// Creates an engine over `topo`.
    pub fn new(topo: &'a Topology, seed: u64) -> Self {
        UnstructuredEngine {
            topo,
            stores: vec![IdMap::new(); topo.len()],
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Stores `object` at `owner` (and optionally at `extra_replicas`
    /// uniformly random nodes, modeling the replication of Lv et al.).
    pub fn store(&mut self, owner: NodeIdx, object: Id, extra_replicas: usize) {
        self.stores[owner.index()].insert(object, owner);
        for _ in 0..extra_replicas {
            let n = self.rng.gen_range(0..self.topo.len() as u32);
            self.stores[n as usize].insert(object, owner);
        }
    }

    /// Does `node` hold `object`?
    pub fn has(&self, node: NodeIdx, object: Id) -> bool {
        self.stores[node.index()].contains_key(&object)
    }

    /// TTL-limited flooding from `origin`: every node forwards the query
    /// to all neighbors until the TTL expires. Returns the standard
    /// lookup report (traffic counts every edge transmission).
    pub fn flood(&mut self, origin: NodeIdx, object: Id, ttl: u32) -> LookupReport {
        let mut report = LookupReport::default();
        let mut seen: FxHashSet<NodeIdx> = FxHashSet::default();
        let mut queue: VecDeque<(NodeIdx, u32, u32)> = VecDeque::new();
        seen.insert(origin);
        queue.push_back((origin, ttl, 0));
        while let Some((at, ttl_left, hops)) = queue.pop_front() {
            if self.stores[at.index()].contains_key(&object) {
                if !report.success {
                    report.success = true;
                    report.first_reply_hops = Some(hops);
                    report.messages_until_first_reply = report.messages;
                }
                continue;
            }
            if ttl_left == 0 {
                continue;
            }
            for &nbr in self.topo.neighbors(at) {
                report.messages += 1;
                if !seen.insert(nbr) {
                    report.duplicates += 1;
                    continue;
                }
                queue.push_back((nbr, ttl_left - 1, hops + 1));
            }
        }
        report
    }

    /// `k` independent random walks of at most `max_steps` steps each
    /// (walkers check every node they visit; they do not revisit their
    /// immediate predecessor when avoidable).
    pub fn random_walk(
        &mut self,
        origin: NodeIdx,
        object: Id,
        walkers: usize,
        max_steps: u32,
    ) -> LookupReport {
        let mut report = LookupReport {
            flows_created: walkers as u32,
            ..LookupReport::default()
        };
        for _ in 0..walkers {
            let mut at = origin;
            let mut prev: Option<NodeIdx> = None;
            for step in 0..=max_steps {
                if self.stores[at.index()].contains_key(&object) {
                    if !report.success || report.first_reply_hops > Some(step) {
                        report.success = true;
                        report.first_reply_hops = Some(step);
                    }
                    break;
                }
                if step == max_steps {
                    break;
                }
                let nbrs = self.topo.neighbors(at);
                if nbrs.is_empty() {
                    break;
                }
                let next = if nbrs.len() == 1 {
                    nbrs[0]
                } else {
                    // Avoid bouncing straight back when possible.
                    loop {
                        let cand = nbrs[self.rng.gen_range(0..nbrs.len())];
                        if Some(cand) != prev {
                            break cand;
                        }
                    }
                };
                report.messages += 1;
                prev = Some(at);
                at = next;
            }
        }
        // Walk traffic until the first reply is not tracked separately;
        // report the total.
        report.messages_until_first_reply = report.messages;
        report
    }
}

impl std::fmt::Debug for UnstructuredEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnstructuredEngine")
            .field("nodes", &self.topo.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpil_overlay::generators;

    fn topo(n: usize, d: usize, seed: u64) -> Topology {
        let mut rng = SmallRng::seed_from_u64(seed);
        generators::random_regular(n, d, &mut rng).unwrap()
    }

    #[test]
    fn flooding_with_enough_ttl_always_finds() {
        let t = topo(200, 8, 1);
        let mut e = UnstructuredEngine::new(&t, 2);
        let object = Id::from_low_u64(1);
        e.store(NodeIdx::new(77), object, 0);
        let r = e.flood(NodeIdx::new(3), object, 10);
        assert!(r.success);
        assert!(r.messages > 100, "flooding is expensive: {}", r.messages);
    }

    #[test]
    fn flooding_ttl_zero_only_checks_origin() {
        let t = topo(50, 4, 3);
        let mut e = UnstructuredEngine::new(&t, 4);
        let object = Id::from_low_u64(2);
        e.store(NodeIdx::new(10), object, 0);
        let miss = e.flood(NodeIdx::new(3), object, 0);
        assert!(!miss.success);
        assert_eq!(miss.messages, 0);
        let hit = e.flood(NodeIdx::new(10), object, 0);
        assert!(hit.success);
        assert_eq!(hit.first_reply_hops, Some(0));
    }

    #[test]
    fn flooding_respects_ttl_horizon() {
        // On a ring, TTL t reaches exactly 2t+1 nodes.
        let mut rng = SmallRng::seed_from_u64(5);
        let t = generators::ring(30, &mut rng).unwrap();
        let mut e = UnstructuredEngine::new(&t, 6);
        let object = Id::from_low_u64(3);
        // Store 4 hops away from node 0 (clockwise).
        e.store(NodeIdx::new(4), object, 0);
        assert!(!e.flood(NodeIdx::new(0), object, 3).success);
        assert!(e.flood(NodeIdx::new(0), object, 4).success);
    }

    #[test]
    fn random_walks_find_replicated_objects() {
        let t = topo(200, 8, 7);
        let mut e = UnstructuredEngine::new(&t, 8);
        let object = Id::from_low_u64(4);
        // 10% replication makes short walks effective (Lv et al.'s point).
        e.store(NodeIdx::new(0), object, 20);
        let r = e.random_walk(NodeIdx::new(100), object, 8, 50);
        assert!(r.success);
        assert!(r.messages <= 8 * 50);
        assert_eq!(r.flows_created, 8);
    }

    #[test]
    fn random_walk_miss_costs_full_budget() {
        let t = topo(100, 6, 9);
        let mut e = UnstructuredEngine::new(&t, 10);
        let r = e.random_walk(NodeIdx::new(0), Id::from_low_u64(5), 4, 25);
        assert!(!r.success);
        assert_eq!(r.messages, 4 * 25);
    }

    #[test]
    fn flooding_duplicates_counted() {
        let t = topo(100, 10, 11);
        let mut e = UnstructuredEngine::new(&t, 12);
        let r = e.flood(NodeIdx::new(0), Id::from_low_u64(6), 4);
        assert!(!r.success);
        assert!(r.duplicates > 0, "dense flooding must collide");
    }
}
