//! Event-driven MPIL over the [`mpil_sim`] kernel.
//!
//! This is the engine behind the paper's Section 6.2 experiments: MPIL
//! routing over an arbitrary (possibly Pastry-derived) neighbor graph,
//! with real message latencies and perturbed (flapping) nodes. Messages
//! sent to offline nodes are lost — MPIL never retransmits; its
//! robustness comes entirely from redundant flows and replicas.

use fxhash::{FxHashMap, FxHashSet};
use mpil_id::{Id, IdMap};
use mpil_overlay::{NodeIdx, Topology};
use mpil_sim::{Availability, LatencyModel, Network, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::config::MpilConfig;
use crate::deletion::ReplicaRegistry;
use crate::flow::{plan_forwarding, select_candidates};
use crate::message::{Message, MessageId, MessageKind};
use crate::routing::routing_decision_policy;

/// Configuration of a [`DynamicNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DynamicConfig {
    /// The MPIL algorithm parameters.
    pub mpil: MpilConfig,
    /// Heartbeat period for the deletion protocol; `None` disables
    /// heartbeats (the perturbation experiments run without them).
    pub heartbeat_period: Option<SimDuration>,
}

/// Protocol-level counters (the kernel's [`mpil_sim::NetStats`] counts raw
/// sends/drops; these attribute them to operations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicStats {
    /// Insert messages forwarded.
    pub insert_messages: u64,
    /// Lookup messages forwarded (the left panel of Figure 12).
    pub lookup_messages: u64,
    /// Direct replies sent by replica holders.
    pub replies_sent: u64,
    /// Messages dropped by duplicate suppression.
    pub duplicates_suppressed: u64,
    /// Duplicate receptions observed (suppressed or not).
    pub duplicates_seen: u64,
    /// Heartbeat messages sent.
    pub heartbeats_sent: u64,
    /// Delete messages sent.
    pub deletes_sent: u64,
}

/// Outcome of a lookup issued through [`DynamicNetwork::issue_lookup`].
///
/// The shared engine-agnostic enum ([`mpil_sim::LookupOutcome`]) under
/// its historical MPIL name.
pub type LookupStatus = mpil_sim::LookupOutcome;

#[derive(Debug, Clone)]
enum Wire {
    Forward(Message),
    Reply { msg_id: MessageId, hops: u32 },
    Heartbeat { object: Id, holder: NodeIdx },
    Delete { object: Id },
}

#[derive(Debug, Clone, Copy)]
enum Timer {
    Heartbeat { object: Id },
}

#[derive(Debug)]
struct LookupState {
    issued_at: SimTime,
    deadline: SimTime,
    status: LookupStatus,
}

/// MPIL agents on every node of a (frozen) neighbor graph, driven by the
/// discrete-event kernel.
///
/// The neighbor graph is arbitrary: build it from a [`Topology`]
/// ([`DynamicNetwork::from_topology`]) or hand in explicit per-node
/// neighbor lists ([`DynamicNetwork::new`]) — e.g. the union of a Pastry
/// node's leaf set and routing table, which is how the paper runs "MPIL
/// over the overlay of MSPastry ... without any of the overlay
/// maintenance techniques".
pub struct DynamicNetwork {
    ids: Vec<Id>,
    neighbors: Vec<Vec<NodeIdx>>,
    config: DynamicConfig,
    stores: Vec<IdMap<NodeIdx>>,
    forwarded: Vec<FxHashSet<MessageId>>,
    net: Network<Wire, Timer>,
    next_msg_id: u64,
    lookups: FxHashMap<MessageId, LookupState>,
    registries: Vec<ReplicaRegistry>,
    stats: DynamicStats,
    /// Reusable same-tick delivery batch (see [`Network::next_batch_before`]).
    event_batch: Vec<mpil_sim::Event<Wire, Timer>>,
}

impl DynamicNetwork {
    /// Builds a network whose neighbor lists come from `topo`.
    pub fn from_topology(
        topo: &Topology,
        config: DynamicConfig,
        availability: Box<dyn Availability>,
        latency: Box<dyn LatencyModel>,
        seed: u64,
    ) -> Self {
        let neighbors = topo
            .iter_nodes()
            .map(|n| topo.neighbors(n).to_vec())
            .collect();
        Self::new(
            topo.ids().to_vec(),
            neighbors,
            config,
            availability,
            latency,
            seed,
        )
    }

    /// Builds a network from explicit per-node neighbor lists.
    ///
    /// # Panics
    ///
    /// Panics if `ids` and `neighbors` disagree in length, any neighbor
    /// index is out of range, or the MPIL configuration is invalid.
    pub fn new(
        ids: Vec<Id>,
        neighbors: Vec<Vec<NodeIdx>>,
        config: DynamicConfig,
        availability: Box<dyn Availability>,
        latency: Box<dyn LatencyModel>,
        seed: u64,
    ) -> Self {
        config.mpil.validate().expect("invalid MPIL configuration");
        assert_eq!(ids.len(), neighbors.len(), "ids/neighbors length mismatch");
        let n = ids.len();
        for list in &neighbors {
            for nbr in list {
                assert!(nbr.index() < n, "neighbor {nbr} out of range");
            }
        }
        DynamicNetwork {
            stores: vec![IdMap::new(); n],
            forwarded: vec![FxHashSet::default(); n],
            registries: vec![ReplicaRegistry::new(); n],
            net: Network::new(n, availability, latency, seed),
            ids,
            neighbors,
            config,
            next_msg_id: 0,
            lookups: FxHashMap::default(),
            stats: DynamicStats::default(),
            event_batch: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Protocol counters.
    pub fn stats(&self) -> DynamicStats {
        self.stats
    }

    /// Kernel counters (sends, deliveries, offline drops).
    pub fn net_stats(&self) -> mpil_sim::NetStats {
        self.net.stats()
    }

    /// Replaces the availability model (static stage → flapping stage).
    pub fn set_availability(&mut self, availability: Box<dyn Availability>) {
        self.net.set_availability(availability);
    }

    /// Sets the independent per-message link-loss probability (failure
    /// injection; see [`mpil_sim::Network::set_loss_probability`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_loss_probability(&mut self, p: f64) {
        self.net.set_loss_probability(p);
    }

    /// Nodes currently storing a pointer for `object`.
    pub fn replica_holders(&self, object: Id) -> Vec<NodeIdx> {
        (0..self.ids.len() as u32)
            .map(NodeIdx::new)
            .filter(|n| self.stores[n.index()].contains_key(&object))
            .collect()
    }

    /// Number of nodes storing a pointer for `object`, without
    /// materialising the holder list.
    pub fn replica_count(&self, object: Id) -> usize {
        self.stores
            .iter()
            .filter(|s| s.contains_key(&object))
            .count()
    }

    /// Starts an insertion of `object` (owned by `origin`). Propagation
    /// happens as the caller runs the clock.
    pub fn insert(&mut self, origin: NodeIdx, object: Id) -> MessageId {
        let msg_id = MessageId(self.next_msg_id);
        self.next_msg_id += 1;
        let msg = Message::initial(
            msg_id,
            MessageKind::Insert,
            object,
            origin,
            self.config.mpil.max_flows,
            self.config.mpil.num_replicas,
        );
        self.handle_forward(origin, msg);
        msg_id
    }

    /// Issues a lookup of `object` from `origin`, succeeding only if a
    /// reply arrives by `deadline`.
    pub fn issue_lookup(&mut self, origin: NodeIdx, object: Id, deadline: SimTime) -> MessageId {
        let msg_id = MessageId(self.next_msg_id);
        self.next_msg_id += 1;
        self.lookups.insert(
            msg_id,
            LookupState {
                issued_at: self.net.now(),
                deadline,
                status: LookupStatus::Pending,
            },
        );
        let msg = Message::initial(
            msg_id,
            MessageKind::Lookup,
            object,
            origin,
            self.config.mpil.max_flows,
            self.config.mpil.num_replicas,
        );
        self.handle_forward(origin, msg);
        msg_id
    }

    /// Owner-driven deletion (Section 4.4): `owner` sends explicit delete
    /// messages to every replica holder it knows of from heartbeats —
    /// falling back to its own directly-stored copy.
    pub fn delete(&mut self, owner: NodeIdx, object: Id) {
        let holders = self.registries[owner.index()].forget(object);
        for holder in holders {
            self.stats.deletes_sent += 1;
            self.net.send(owner, holder, Wire::Delete { object });
        }
        self.stores[owner.index()].remove(&object);
    }

    /// Status of a lookup. A lookup still pending at its deadline counts
    /// as failed (a reply arriving exactly at the deadline is processed
    /// before the status query observes `now == deadline`, so it wins).
    pub fn lookup_status(&self, msg_id: MessageId) -> LookupStatus {
        match self.lookups.get(&msg_id) {
            None => LookupStatus::Failed,
            Some(s) => match s.status {
                LookupStatus::Pending if self.net.now() >= s.deadline => LookupStatus::Failed,
                other => other,
            },
        }
    }

    /// Runs the event loop until `deadline` (inclusive); the clock ends at
    /// `deadline` even if the queue drains early.
    pub fn run_until(&mut self, deadline: SimTime) {
        let mut batch = std::mem::take(&mut self.event_batch);
        while self.net.next_batch_before(deadline, &mut batch) {
            for event in batch.drain(..) {
                self.dispatch(event);
            }
        }
        self.event_batch = batch;
    }

    /// Runs until no events remain (only sensible without periodic
    /// timers, i.e. with heartbeats disabled).
    pub fn run_to_quiescence(&mut self) {
        self.run_until(SimTime::from_micros(u64::MAX));
    }

    fn dispatch(&mut self, event: mpil_sim::Event<Wire, Timer>) {
        match event {
            mpil_sim::Event::Message { to, msg, .. } => match msg {
                Wire::Forward(m) => self.handle_forward(to, m),
                Wire::Reply { msg_id, hops } => self.handle_reply(msg_id, hops),
                Wire::Heartbeat { object, holder } => {
                    let now = self.net.now();
                    self.registries[to.index()].heartbeat(object, holder, now);
                }
                Wire::Delete { object } => {
                    self.stores[to.index()].remove(&object);
                }
            },
            mpil_sim::Event::Timer { node, timer } => match timer {
                Timer::Heartbeat { object } => self.handle_heartbeat_timer(node, object),
            },
        }
    }

    fn handle_reply(&mut self, msg_id: MessageId, hops: u32) {
        let now = self.net.now();
        if let Some(state) = self.lookups.get_mut(&msg_id) {
            if matches!(state.status, LookupStatus::Pending) && now <= state.deadline {
                state.status = LookupStatus::Succeeded {
                    hops,
                    latency: now.duration_since(state.issued_at),
                };
            }
        }
    }

    fn handle_heartbeat_timer(&mut self, node: NodeIdx, object: Id) {
        let Some(period) = self.config.heartbeat_period else {
            return;
        };
        let Some(&owner) = self.stores[node.index()].get(&object) else {
            return; // replica deleted; stop the heartbeat chain
        };
        // A perturbed node cannot send; it resumes on its next timer.
        if self.net.is_online(node) {
            self.stats.heartbeats_sent += 1;
            self.net.send(
                node,
                owner,
                Wire::Heartbeat {
                    object,
                    holder: node,
                },
            );
        }
        self.net.schedule(node, period, Timer::Heartbeat { object });
    }

    /// Core MPIL processing of one message copy at `node` (Figure 5).
    fn handle_forward(&mut self, node: NodeIdx, msg: Message) {
        let mut msg = msg;
        // Duplicate suppression ("DS"): drop anything this node has
        // already processed, silently.
        if !self.forwarded[node.index()].insert(msg.msg_id) {
            self.stats.duplicates_seen += 1;
            if self.config.mpil.duplicate_suppression {
                self.stats.duplicates_suppressed += 1;
                return;
            }
        }

        // A lookup stops at any replica holder, which replies directly.
        if msg.kind == MessageKind::Lookup && self.stores[node.index()].contains_key(&msg.object) {
            self.stats.replies_sent += 1;
            let wire = Wire::Reply {
                msg_id: msg.msg_id,
                hops: msg.hops,
            };
            self.net.send(node, msg.origin, wire);
            return;
        }

        let given = if msg.hops == 0 { 0 } else { 1 };
        let decision = routing_decision_policy(
            self.config.mpil.space,
            msg.object,
            node,
            &self.neighbors[node.index()],
            &self.ids,
            |n| msg.visited(n),
            self.config.mpil.split_policy,
            msg.quota + given,
            self.config.mpil.metric,
        );

        if decision.is_local_max {
            if msg.kind == MessageKind::Insert {
                let newly = self.stores[node.index()]
                    .insert(msg.object, msg.origin)
                    .is_none();
                if newly {
                    if let Some(period) = self.config.heartbeat_period {
                        self.net
                            .schedule(node, period, Timer::Heartbeat { object: msg.object });
                    }
                }
            }
            msg.replicas_left -= 1;
            if msg.replicas_left == 0 {
                return;
            }
        }

        if decision.candidates.is_empty() {
            return;
        }
        let plan = plan_forwarding(msg.quota, given, decision.candidates.len());
        if plan.m == 0 {
            return;
        }
        let chosen: Vec<NodeIdx> =
            select_candidates(decision.candidates, plan.m as usize, self.net.rng());
        for (target, &quota) in chosen.iter().zip(plan.child_quotas.iter()) {
            match msg.kind {
                MessageKind::Insert => self.stats.insert_messages += 1,
                MessageKind::Lookup => self.stats.lookup_messages += 1,
            }
            let fwd = msg.forwarded(node, quota);
            self.net.send(node, *target, Wire::Forward(fwd));
        }
    }
}

impl std::fmt::Debug for DynamicNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicNetwork")
            .field("nodes", &self.ids.len())
            .field("now", &self.net.now())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpil_overlay::generators;
    use mpil_sim::{AlwaysOn, ConstantLatency, Flapping, FlappingConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn latency_10ms() -> Box<dyn LatencyModel> {
        Box::new(ConstantLatency(SimDuration::from_millis(10)))
    }

    fn build_static(n: usize, d: usize, seed: u64) -> DynamicNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = generators::random_regular(n, d, &mut rng).unwrap();
        DynamicNetwork::from_topology(
            &topo,
            DynamicConfig::default(),
            Box::new(AlwaysOn),
            latency_10ms(),
            seed,
        )
    }

    #[test]
    fn insert_then_lookup_succeeds_on_a_static_overlay() {
        let mut net = build_static(100, 8, 1);
        let origin = NodeIdx::new(0);
        let object = Id::from_low_u64(0xabcd);
        net.insert(origin, object);
        net.run_to_quiescence();
        assert!(!net.replica_holders(object).is_empty());

        let deadline = net.now() + SimDuration::from_secs(60);
        let lk = net.issue_lookup(NodeIdx::new(50), object, deadline);
        net.run_to_quiescence();
        match net.lookup_status(lk) {
            LookupStatus::Succeeded { hops, latency } => {
                assert!(hops >= 1);
                assert!(!latency.is_zero());
            }
            other => panic!("lookup should succeed, got {other:?}"),
        }
    }

    #[test]
    fn lookup_for_absent_object_fails() {
        let mut net = build_static(50, 6, 2);
        let deadline = net.now() + SimDuration::from_secs(10);
        let lk = net.issue_lookup(NodeIdx::new(3), Id::from_low_u64(1), deadline);
        net.run_until(deadline);
        assert_eq!(net.lookup_status(lk), LookupStatus::Failed);
    }

    #[test]
    fn replies_after_deadline_do_not_count() {
        // Latency 10ms per hop, deadline shorter than one hop.
        let mut net = build_static(50, 6, 3);
        let object = Id::from_low_u64(2);
        net.insert(NodeIdx::new(0), object);
        net.run_to_quiescence();
        let deadline = net.now() + SimDuration::from_millis(1);
        let lk = net.issue_lookup(NodeIdx::new(25), object, deadline);
        net.run_to_quiescence();
        assert_eq!(net.lookup_status(lk), LookupStatus::Failed);
    }

    #[test]
    fn flapping_probability_one_long_offline_blocks_most_lookups() {
        // Seed chosen so the drawn flapping phases leave enough holders
        // dark at lookup time for failures to occur; MPIL's redundancy
        // is strong enough that many seeds ride out p=1 untouched.
        let mut rng = SmallRng::seed_from_u64(0);
        let topo = generators::random_regular(100, 8, &mut rng).unwrap();
        let mut net = DynamicNetwork::from_topology(
            &topo,
            DynamicConfig::default(),
            Box::new(AlwaysOn),
            latency_10ms(),
            4,
        );
        let origin = NodeIdx::new(0);
        let objects: Vec<Id> = (0..20).map(|k| Id::from_low_u64(k + 10)).collect();
        for &o in &objects {
            net.insert(origin, o);
        }
        net.run_to_quiescence();

        // Now perturb everything except the origin: long offline periods,
        // probability 1 — nearly every node offline half the time.
        let flap_cfg = FlappingConfig::idle_offline_secs(300, 300, 1.0).starting_at(net.now());
        let mut flapping = Flapping::new(flap_cfg, 100, 99, &mut rng);
        flapping.exempt(origin);
        net.set_availability(Box::new(flapping));

        let mut ok = 0;
        let mut failed = 0;
        for (i, &o) in objects.iter().enumerate() {
            let t = net.now() + SimDuration::from_secs(600);
            net.run_until(t);
            let deadline = net.now() + SimDuration::from_secs(60);
            let lk = net.issue_lookup(origin, o, deadline);
            net.run_until(deadline);
            match net.lookup_status(lk) {
                LookupStatus::Succeeded { .. } => ok += 1,
                LookupStatus::Failed => failed += 1,
                LookupStatus::Pending => panic!("deadline passed {i}"),
            }
        }
        // Perturbation hurts but multi-path redundancy keeps some
        // lookups alive; both outcomes must occur at p=1.0 with 50%
        // average downtime.
        assert!(failed > 0, "p=1 300:300 should fail some lookups");
        assert!(ok + failed == 20);
    }

    #[test]
    fn duplicate_suppression_counters_track() {
        let mut net = build_static(80, 10, 5);
        let object = Id::from_low_u64(77);
        net.insert(NodeIdx::new(0), object);
        net.run_to_quiescence();
        let s = net.stats();
        assert_eq!(s.duplicates_seen, s.duplicates_suppressed, "DS on");
    }

    #[test]
    fn without_ds_duplicates_are_reprocessed() {
        let mut rng = SmallRng::seed_from_u64(6);
        let topo = generators::random_regular(80, 10, &mut rng).unwrap();
        let config = DynamicConfig {
            mpil: MpilConfig::default().with_duplicate_suppression(false),
            heartbeat_period: None,
        };
        let mut net =
            DynamicNetwork::from_topology(&topo, config, Box::new(AlwaysOn), latency_10ms(), 6);
        let object = Id::from_low_u64(88);
        net.insert(NodeIdx::new(0), object);
        net.run_to_quiescence();
        let s = net.stats();
        assert_eq!(s.duplicates_suppressed, 0);
    }

    #[test]
    fn heartbeats_register_holders_and_delete_works() {
        let mut rng = SmallRng::seed_from_u64(7);
        let topo = generators::random_regular(60, 8, &mut rng).unwrap();
        let config = DynamicConfig {
            mpil: MpilConfig::default(),
            heartbeat_period: Some(SimDuration::from_secs(5)),
        };
        let mut net =
            DynamicNetwork::from_topology(&topo, config, Box::new(AlwaysOn), latency_10ms(), 7);
        let owner = NodeIdx::new(0);
        let object = Id::from_low_u64(99);
        net.insert(owner, object);
        net.run_until(net.now() + SimDuration::from_secs(12));
        let holders = net.replica_holders(object);
        assert!(!holders.is_empty());
        assert!(net.stats().heartbeats_sent > 0);

        net.delete(owner, object);
        net.run_until(net.now() + SimDuration::from_secs(12));
        // All heartbeat-known holders deleted their replicas. (Holders the
        // owner never heard from — none here, two heartbeat rounds ran —
        // would survive.)
        assert!(
            net.replica_holders(object).is_empty(),
            "replicas remain: {:?}",
            net.replica_holders(object)
        );
        assert!(net.stats().deletes_sent > 0);
    }

    #[test]
    fn stats_attribute_messages_to_operations() {
        let mut net = build_static(60, 8, 8);
        let object = Id::from_low_u64(5);
        net.insert(NodeIdx::new(0), object);
        net.run_to_quiescence();
        let after_insert = net.stats();
        assert!(after_insert.insert_messages > 0);
        assert_eq!(after_insert.lookup_messages, 0);

        let deadline = net.now() + SimDuration::from_secs(60);
        net.issue_lookup(NodeIdx::new(30), object, deadline);
        net.run_to_quiescence();
        let after_lookup = net.stats();
        assert!(after_lookup.lookup_messages > 0);
        assert_eq!(after_lookup.insert_messages, after_insert.insert_messages);
        assert!(after_lookup.replies_sent >= 1);
    }
}
