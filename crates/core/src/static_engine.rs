//! The message-level engine over static overlays.
//!
//! This is the Rust equivalent of the paper's Python simulator (Section
//! 6.1): no virtual time, no failures — messages propagate in strict
//! hop order (breadth-first), which makes "first successful reply" well
//! defined and every run a deterministic function of the seed.

use std::collections::VecDeque;

use fxhash::FxHashSet;
use mpil_id::{Id, IdMap};
use mpil_overlay::{NodeIdx, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::config::MpilConfig;
use crate::flow::{plan_forwarding, select_candidates};
use crate::message::{Message, MessageId, MessageKind};
use crate::report::{InsertReport, LookupReport};
use crate::routing::routing_decision_policy;

/// MPIL over a static [`Topology`].
///
/// The engine owns per-node object-pointer stores; run insertions first,
/// then lookups, as the paper's methodology does. See the crate-level
/// example for usage.
pub struct StaticEngine<'a> {
    topo: &'a Topology,
    config: MpilConfig,
    stores: Vec<IdMap<NodeIdx>>,
    rng: SmallRng,
    next_msg_id: u64,
}

impl<'a> StaticEngine<'a> {
    /// Creates an engine over `topo` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero `max_flows` or
    /// `num_replicas`); use [`MpilConfig::validate`] to check first.
    pub fn new(topo: &'a Topology, config: MpilConfig, seed: u64) -> Self {
        config.validate().expect("invalid MPIL configuration");
        StaticEngine {
            topo,
            config,
            stores: vec![IdMap::new(); topo.len()],
            rng: SmallRng::seed_from_u64(seed),
            next_msg_id: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> MpilConfig {
        self.config
    }

    /// Changes the algorithm parameters for subsequent operations
    /// (the paper inserts with one setting and looks up with another).
    ///
    /// # Panics
    ///
    /// Panics if the new configuration is invalid.
    pub fn set_config(&mut self, config: MpilConfig) {
        config.validate().expect("invalid MPIL configuration");
        self.config = config;
    }

    /// Nodes currently storing a pointer for `object`.
    pub fn replica_holders(&self, object: Id) -> Vec<NodeIdx> {
        self.topo
            .iter_nodes()
            .filter(|n| self.stores[n.index()].contains_key(&object))
            .collect()
    }

    /// Number of nodes storing a pointer for `object`, without
    /// materialising the holder list.
    pub fn replica_count(&self, object: Id) -> usize {
        self.stores
            .iter()
            .filter(|s| s.contains_key(&object))
            .count()
    }

    /// Does `node` store a pointer for `object`?
    pub fn has_replica(&self, node: NodeIdx, object: Id) -> bool {
        self.stores[node.index()].contains_key(&object)
    }

    /// Removes every replica of `object` (the owner-driven delete of
    /// Section 4.4); returns how many replicas were removed.
    pub fn delete(&mut self, object: Id) -> usize {
        let mut removed = 0;
        for store in &mut self.stores {
            if store.remove(&object).is_some() {
                removed += 1;
            }
        }
        removed
    }

    /// Inserts a pointer to `object` (owned by `origin`) from `origin`.
    pub fn insert(&mut self, origin: NodeIdx, object: Id) -> InsertReport {
        let (report, _) = self.run_operation(origin, object, MessageKind::Insert);
        report
    }

    /// Looks `object` up from `origin`.
    pub fn lookup(&mut self, origin: NodeIdx, object: Id) -> LookupReport {
        let (_, report) = self.run_operation(origin, object, MessageKind::Lookup);
        report
    }

    /// Shared propagation loop. Exactly one of the two reports is
    /// meaningful, depending on `kind`.
    fn run_operation(
        &mut self,
        origin: NodeIdx,
        object: Id,
        kind: MessageKind,
    ) -> (InsertReport, LookupReport) {
        assert!(origin.index() < self.topo.len(), "origin out of range");
        let msg_id = MessageId(self.next_msg_id);
        self.next_msg_id += 1;

        let mut ins = InsertReport::default();
        let mut look = LookupReport::default();
        let mut seen: FxHashSet<NodeIdx> = FxHashSet::default();
        let mut stored_at: FxHashSet<NodeIdx> = FxHashSet::default();

        let initial = Message::initial(
            msg_id,
            kind,
            object,
            origin,
            self.config.max_flows,
            self.config.num_replicas,
        );

        // FIFO processing = strict hop order (all copies at hop h are
        // handled before any copy at hop h+1).
        let mut queue: VecDeque<(NodeIdx, Message)> = VecDeque::new();
        queue.push_back((origin, initial));
        seen.insert(origin);

        while let Some((at, mut msg)) = queue.pop_front() {
            // Lookup short-circuit: a recipient holding the object replies
            // directly and stops forwarding this flow (Section 4.4).
            if kind == MessageKind::Lookup && self.stores[at.index()].contains_key(&object) {
                if !look.success {
                    look.success = true;
                    look.first_reply_hops = Some(msg.hops);
                    look.messages_until_first_reply = look.messages;
                }
                continue;
            }

            let given = if msg.hops == 0 { 0 } else { 1 };
            let decision = routing_decision_policy(
                self.config.space,
                object,
                at,
                self.topo.neighbors(at),
                self.topo.ids(),
                |n| msg.visited(n),
                self.config.split_policy,
                msg.quota + given,
                self.config.metric,
            );

            if decision.is_local_max {
                if kind == MessageKind::Insert {
                    self.stores[at.index()].insert(object, origin);
                    stored_at.insert(at);
                }
                msg.replicas_left -= 1;
                if msg.replicas_left == 0 {
                    continue; // this flow is done
                }
            }

            if decision.candidates.is_empty() {
                continue;
            }

            let plan = plan_forwarding(msg.quota, given, decision.candidates.len());
            if plan.m == 0 {
                continue;
            }

            // Choose which tied candidates to use when over quota.
            let chosen: Vec<NodeIdx> =
                select_candidates(decision.candidates, plan.m as usize, &mut self.rng);

            match kind {
                MessageKind::Insert => ins.flows_created += plan.flows_created,
                MessageKind::Lookup => look.flows_created += plan.flows_created,
            }

            for (target, &child_quota) in chosen.iter().zip(plan.child_quotas.iter()) {
                let fwd = msg.forwarded(at, child_quota);
                match kind {
                    MessageKind::Insert => {
                        ins.messages += 1;
                        ins.max_hops = ins.max_hops.max(fwd.hops);
                    }
                    MessageKind::Lookup => look.messages += 1,
                }
                // Duplicate accounting happens at reception: a node that
                // has already received this operation's message counts a
                // duplicate, and under DS drops it silently.
                if !seen.insert(*target) {
                    match kind {
                        MessageKind::Insert => ins.duplicates += 1,
                        MessageKind::Lookup => look.duplicates += 1,
                    }
                    if self.config.duplicate_suppression {
                        continue;
                    }
                }
                queue.push_back((*target, fwd));
            }
        }

        ins.replicas = stored_at.len() as u32;
        (ins, look)
    }
}

impl std::fmt::Debug for StaticEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticEngine")
            .field("nodes", &self.topo.len())
            .field("config", &self.config)
            .field("operations_run", &self.next_msg_id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpil_id::IdSpace;
    use mpil_overlay::generators;
    use mpil_overlay::TopologyBuilder;
    use rand::Rng;

    use crate::config::SplitPolicy;

    fn cfg(max_flows: u32, replicas: u32) -> MpilConfig {
        MpilConfig::default()
            .with_max_flows(max_flows)
            .with_num_replicas(replicas)
    }

    /// The Figure 5/6 trace semantics: tie-based splitting.
    fn cfg_ties(max_flows: u32, replicas: u32) -> MpilConfig {
        cfg(max_flows, replicas).with_split_policy(SplitPolicy::MetricTies)
    }

    /// Reconstructs the paper's Figure 6 example: nodes with 4-bit IDs
    /// (embedded in 160-bit space, high bits zero), object 1011 inserted
    /// from 0001 with max_flows=2 and num_replicas=2.
    fn figure6_topology() -> (Topology, Vec<NodeIdx>) {
        let bits = [
            0b0001u64, // 0: origin
            0b1001,    // 1
            0b0000,    // 2
            0b1110,    // 3
            0b1111,    // 4
            0b0011,    // 5
            0b0101,    // 6
            0b0010,    // 7
            0b0100,    // 8
        ];
        let ids: Vec<Id> = bits.iter().map(|&b| Id::from_low_u64(b)).collect();
        let mut builder = TopologyBuilder::new(ids);
        let e = |b: &mut TopologyBuilder, x: usize, y: usize| {
            b.add_edge(NodeIdx::new(x as u32), NodeIdx::new(y as u32));
        };
        // Edges as drawn in Figure 6.
        e(&mut builder, 0, 1); // 0001 - 1001
        e(&mut builder, 0, 2); // 0001 - 0000
        e(&mut builder, 1, 3); // 1001 - 1110
        e(&mut builder, 3, 4); // 1110 - 1111
        e(&mut builder, 3, 5); // 1110 - 0011
        e(&mut builder, 4, 6); // 1111 - 0101
        e(&mut builder, 5, 7); // 0011 - 0010
        e(&mut builder, 5, 8); // 0011 - 0100
        let nodes = (0..9).map(|i| NodeIdx::new(i as u32)).collect();
        (builder.build(), nodes)
    }

    #[test]
    fn figure6_insert_places_replicas_at_1001_1111_0011() {
        let (topo, n) = figure6_topology();
        let config = cfg_ties(2, 2).with_space(IdSpace::base2());
        let mut engine = StaticEngine::new(&topo, config, 1);
        let object = Id::from_low_u64(0b1011);
        let report = engine.insert(n[0], object);
        let mut holders = engine.replica_holders(object);
        holders.sort();
        assert_eq!(holders, vec![n[1], n[4], n[5]], "gray nodes of Figure 6");
        assert_eq!(report.replicas, 3);
        // One additional flow is created (by 1110), plus the initial one.
        assert_eq!(report.flows_created, 2);
    }

    #[test]
    fn figure6_lookup_finds_the_object() {
        let (topo, n) = figure6_topology();
        let config = cfg_ties(2, 2).with_space(IdSpace::base2());
        let mut engine = StaticEngine::new(&topo, config, 1);
        let object = Id::from_low_u64(0b1011);
        engine.insert(n[0], object);
        // Lookup from a different node (0100 = node 8).
        let report = engine.lookup(n[8], object);
        assert!(report.success);
        assert!(report.first_reply_hops.unwrap() >= 1);
    }

    #[test]
    fn lookup_misses_when_nothing_inserted() {
        let (topo, n) = figure6_topology();
        let mut engine = StaticEngine::new(&topo, cfg(2, 2), 1);
        let report = engine.lookup(n[0], Id::from_low_u64(0xabc));
        assert!(!report.success);
        assert_eq!(report.first_reply_hops, None);
    }

    #[test]
    fn replica_bound_holds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let topo = generators::random_regular(200, 12, &mut rng).unwrap();
        for (mf, r) in [(1u32, 1u32), (3, 2), (10, 5), (30, 5)] {
            let mut engine = StaticEngine::new(&topo, cfg(mf, r), 5);
            for k in 0..20u64 {
                let obj = Id::from_low_u64(k * 7919 + 1);
                let report = engine.insert(NodeIdx::new((k % 200) as u32), obj);
                assert!(
                    u64::from(report.replicas) <= u64::from(mf) * u64::from(r),
                    "replicas {} exceed bound {}",
                    report.replicas,
                    mf * r
                );
                assert!(report.flows_created <= mf);
                assert!(report.replicas >= 1, "at least one local max stores");
            }
        }
    }

    #[test]
    fn single_flow_single_replica_is_greedy_routing() {
        // Topology seed chosen so the origin is not itself a local
        // maximum for the object: an immediate deposit would end the
        // flow before any forwarding and flows_created would be 0.
        let mut rng = SmallRng::seed_from_u64(5);
        let topo = generators::random_regular(100, 8, &mut rng).unwrap();
        let mut engine = StaticEngine::new(&topo, cfg(1, 1), 6);
        let obj = Id::from_low_u64(12345);
        let report = engine.insert(NodeIdx::new(0), obj);
        assert_eq!(report.replicas, 1);
        assert_eq!(report.flows_created, 1);
        assert_eq!(report.duplicates, 0, "a single path cannot duplicate");
    }

    #[test]
    fn lookup_succeeds_on_every_topology_family_with_enough_redundancy() {
        // Well-connected overlays (the paper's random & power-law) should
        // be near-perfect; pathological low-degree shapes (ring, grid)
        // still work for a solid majority of lookups, which is the
        // overlay-independence claim — MPIL runs *anywhere*, with success
        // degrading gracefully rather than collapsing.
        let mut rng = SmallRng::seed_from_u64(5);
        let cases = vec![
            (generators::random_regular(150, 10, &mut rng).unwrap(), 21),
            (
                generators::power_law(150, Default::default(), &mut rng).unwrap(),
                21,
            ),
            (generators::ring(60, &mut rng).unwrap(), 5),
            (generators::grid(10, 12, &mut rng).unwrap(), 8),
        ];
        for (topo, floor) in &cases {
            let mut engine = StaticEngine::new(topo, cfg(30, 5), 7);
            let mut hits = 0;
            let total = 25;
            for k in 0..total {
                let obj = Id::from_low_u64(k * 31 + 7);
                let a = NodeIdx::new((k % topo.len() as u64) as u32);
                let b = NodeIdx::new(((k * 13 + 1) % topo.len() as u64) as u32);
                engine.insert(a, obj);
                if engine.lookup(b, obj).success {
                    hits += 1;
                }
            }
            assert!(
                hits >= *floor,
                "overlay-independence: {hits}/{total} (floor {floor}) on {} nodes",
                topo.len()
            );
        }
    }

    #[test]
    fn duplicate_suppression_reduces_traffic() {
        let mut rng = SmallRng::seed_from_u64(8);
        let topo = generators::random_regular(120, 10, &mut rng).unwrap();
        let obj = Id::from_low_u64(555);
        let with_ds = {
            let mut e = StaticEngine::new(&topo, cfg(10, 3).with_duplicate_suppression(true), 9);
            e.insert(NodeIdx::new(0), obj);
            e.lookup(NodeIdx::new(60), obj)
        };
        let without_ds = {
            let mut e = StaticEngine::new(&topo, cfg(10, 3).with_duplicate_suppression(false), 9);
            e.insert(NodeIdx::new(0), obj);
            e.lookup(NodeIdx::new(60), obj)
        };
        assert!(with_ds.messages <= without_ds.messages);
    }

    #[test]
    fn delete_removes_all_replicas() {
        let mut rng = SmallRng::seed_from_u64(10);
        let topo = generators::random_regular(100, 8, &mut rng).unwrap();
        let mut engine = StaticEngine::new(&topo, cfg(10, 3), 11);
        let obj = Id::from_low_u64(777);
        let ins = engine.insert(NodeIdx::new(5), obj);
        assert!(ins.replicas >= 1);
        let removed = engine.delete(obj);
        assert_eq!(removed as u32, ins.replicas);
        assert!(!engine.lookup(NodeIdx::new(50), obj).success);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = SmallRng::seed_from_u64(12);
        let topo = generators::power_law(300, Default::default(), &mut rng).unwrap();
        let run = |seed: u64| {
            let mut e = StaticEngine::new(&topo, cfg(10, 5), seed);
            let mut out = Vec::new();
            for k in 0..10u64 {
                let obj = Id::from_low_u64(k + 1);
                let r = e.insert(NodeIdx::new((k * 17 % 300) as u32), obj);
                out.push((r.replicas, r.messages, r.duplicates, r.flows_created));
            }
            out
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn first_reply_hops_is_minimal_over_flows() {
        // On a star, any lookup reaches the hub in 1 hop; replicas at
        // leaves need 2. If the hub holds the object the first reply must
        // be 1 hop.
        let mut rng = SmallRng::seed_from_u64(13);
        let topo = generators::star(20, &mut rng).unwrap();
        let mut engine = StaticEngine::new(&topo, cfg(5, 2), 14);
        let obj = Id::from_low_u64(4242);
        engine.insert(NodeIdx::new(3), obj);
        if engine.has_replica(NodeIdx::new(0), obj) {
            let report = engine.lookup(NodeIdx::new(7), obj);
            assert_eq!(report.first_reply_hops, Some(1));
        }
    }

    #[test]
    fn larger_lookup_budgets_do_not_reduce_success() {
        let mut rng = SmallRng::seed_from_u64(15);
        let topo = generators::power_law(400, Default::default(), &mut rng).unwrap();
        let mut engine = StaticEngine::new(&topo, cfg(30, 5), 16);
        let mut objects = Vec::new();
        for k in 0..40u64 {
            let obj = Id::from_low_u64((k + 1) * 997);
            engine.insert(NodeIdx::new(rng.gen_range(0..400)), obj);
            objects.push(obj);
        }
        let success_rate = |engine: &mut StaticEngine<'_>, mf: u32, r: u32| {
            engine.set_config(cfg(mf, r));
            let mut ok = 0;
            for (k, obj) in objects.iter().enumerate() {
                let origin = NodeIdx::new(((k * 37 + 11) % 400) as u32);
                if engine.lookup(origin, *obj).success {
                    ok += 1;
                }
            }
            ok
        };
        let weak = success_rate(&mut engine, 5, 1);
        let strong = success_rate(&mut engine, 15, 5);
        assert!(
            strong >= weak,
            "more redundancy can't hurt: {strong} vs {weak}"
        );
        assert!(
            strong >= 38,
            "15 flows x 5 replicas should nearly always hit"
        );
    }
}
