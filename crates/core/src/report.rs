//! Per-operation reports from the MPIL engines.

use serde::{Deserialize, Serialize};

/// What one insertion did (the quantities Figure 9 of the paper plots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InsertReport {
    /// Distinct nodes storing the object pointer after this insertion.
    pub replicas: u32,
    /// Total messages sent (each transmission to one neighbor counts 1).
    pub messages: u64,
    /// Times a node received this insertion's message again after already
    /// having received it once.
    pub duplicates: u64,
    /// Flows actually created (Σ `m − given_flows` over forwarding steps);
    /// bounded by the configured `max_flows`.
    pub flows_created: u32,
    /// Longest hop count any copy reached.
    pub max_hops: u32,
}

/// What one lookup did (Figure 10 / Tables 1–3 quantities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LookupReport {
    /// Did any flow find a node storing the object?
    pub success: bool,
    /// Hop count of the first (fewest-hop) successful reply.
    pub first_reply_hops: Option<u32>,
    /// Total messages sent over the lookup's whole lifetime.
    pub messages: u64,
    /// Messages sent up to the moment the first reply was generated.
    pub messages_until_first_reply: u64,
    /// Duplicate receptions, as for insertions.
    pub duplicates: u64,
    /// Flows actually created.
    pub flows_created: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_empty() {
        let i = InsertReport::default();
        assert_eq!(i.replicas, 0);
        assert_eq!(i.messages, 0);
        let l = LookupReport::default();
        assert!(!l.success);
        assert_eq!(l.first_reply_hops, None);
    }
}
