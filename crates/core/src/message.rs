//! MPIL message types.

use mpil_id::Id;
use mpil_overlay::NodeIdx;
use serde::{Deserialize, Serialize};

/// Unique identifier of one insert or lookup operation.
///
/// The paper notes that when duplicate suppression is used with repeated
/// queries, "a sequence number or a random number should be attached to
/// distinguish the message from old messages with the same message ID" —
/// `MessageId` is that sequence number: every operation gets a fresh one.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MessageId(pub u64);

impl std::fmt::Display for MessageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// What an MPIL message is trying to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Deposit an object pointer at local maxima.
    Insert,
    /// Find a node storing the object pointer.
    Lookup,
}

/// One in-flight copy of an MPIL message (one flow's head).
///
/// Carries the state Figure 5's pseudo-code reads: the object ID being
/// routed on, the remaining flow quota (`max_flows` field), the per-flow
/// replica countdown, and the `route` list of visited nodes that prevents
/// a copy from revisiting nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Operation identity (for duplicate suppression).
    pub msg_id: MessageId,
    /// Insert or lookup.
    pub kind: MessageKind,
    /// The object ID the metric is computed against.
    pub object: Id,
    /// The node that originated the operation (lookup replies go here).
    pub origin: NodeIdx,
    /// Remaining flow budget carried by this copy.
    pub quota: u32,
    /// How many more local maxima this flow may deposit at / pass.
    pub replicas_left: u32,
    /// Overlay hops traveled so far.
    pub hops: u32,
    /// Nodes this copy has visited (most recent last). Forwarding excludes
    /// these.
    pub route: Vec<NodeIdx>,
}

impl Message {
    /// Creates the initial message of an operation, as held by `origin`
    /// before its first forwarding step.
    pub fn initial(
        msg_id: MessageId,
        kind: MessageKind,
        object: Id,
        origin: NodeIdx,
        max_flows: u32,
        num_replicas: u32,
    ) -> Self {
        Message {
            msg_id,
            kind,
            object,
            origin,
            quota: max_flows,
            replicas_left: num_replicas,
            hops: 0,
            route: Vec::new(),
        }
    }

    /// Derives the copy forwarded from `via` with the given child quota.
    pub fn forwarded(&self, via: NodeIdx, child_quota: u32) -> Self {
        let mut route = Vec::with_capacity(self.route.len() + 1);
        route.extend_from_slice(&self.route);
        route.push(via);
        Message {
            msg_id: self.msg_id,
            kind: self.kind,
            object: self.object,
            origin: self.origin,
            quota: child_quota,
            replicas_left: self.replicas_left,
            hops: self.hops + 1,
            route,
        }
    }

    /// Has this copy already visited `node`?
    pub fn visited(&self, node: NodeIdx) -> bool {
        self.route.contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Message {
        Message::initial(
            MessageId(1),
            MessageKind::Lookup,
            Id::from_low_u64(99),
            NodeIdx::new(0),
            10,
            5,
        )
    }

    #[test]
    fn initial_message_state() {
        let m = msg();
        assert_eq!(m.quota, 10);
        assert_eq!(m.replicas_left, 5);
        assert_eq!(m.hops, 0);
        assert!(m.route.is_empty());
    }

    #[test]
    fn forwarding_extends_route_and_hops() {
        let m = msg();
        let f = m.forwarded(NodeIdx::new(0), 4);
        assert_eq!(f.hops, 1);
        assert_eq!(f.quota, 4);
        assert_eq!(f.route, vec![NodeIdx::new(0)]);
        assert!(f.visited(NodeIdx::new(0)));
        assert!(!f.visited(NodeIdx::new(1)));
        let g = f.forwarded(NodeIdx::new(3), 1);
        assert_eq!(g.route, vec![NodeIdx::new(0), NodeIdx::new(3)]);
        assert_eq!(g.hops, 2);
        // replicas_left is inherited, not divided.
        assert_eq!(g.replicas_left, 5);
    }

    #[test]
    fn message_id_displays() {
        assert_eq!(MessageId(42).to_string(), "m42");
    }
}
