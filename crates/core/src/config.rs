//! MPIL configuration.

use std::fmt;

use mpil_id::IdSpace;
use serde::{Deserialize, Serialize};

/// Error returned when an [`MpilConfig`] is inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `max_flows` must be at least 1 — the initial flow itself consumes
    /// one unit of quota at the originator.
    ZeroMaxFlows,
    /// `num_replicas` (per-flow replicas) must be at least 1.
    ZeroReplicas,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroMaxFlows => write!(f, "max_flows must be >= 1"),
            ConfigError::ZeroReplicas => write!(f, "num_replicas must be >= 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// How a node chooses forwarding targets when it may use more than one.
///
/// The paper describes both readings: Figure 5's pseudo-code forwards to
/// the neighbors **tied** at the best metric value, while the Section 4
/// prose says a node "forwards the lookup to the *best few* peers", and
/// Table 3's realized flow counts (~9 of a budget of 10) are only
/// reachable when nodes fan out beyond exact ties. Both are provided;
/// the `split_policy` ablation bench quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplitPolicy {
    /// Forward only to neighbors tied at the single best metric value
    /// (Figure 5's literal pseudo-code).
    MetricTies,
    /// Forward to the best neighbors by metric, up to the remaining flow
    /// budget (the "best few peers" reading; reproduces Table 3's
    /// near-budget flow counts).
    TopK,
}

/// Which per-neighbor closeness metric routing maximizes.
///
/// Section 4.2 argues the common-digit metric "distinguishes neighbors
/// better" than prefix or suffix matching on arbitrary overlays (the
/// probability that two random IDs share *no* common digit position is
/// (3/4)^80 ≈ 10^-10, versus 3/4 for sharing no prefix digit). The
/// `ablation_metric` bench measures what that buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingMetric {
    /// Digits matching at the same positions (MPIL's metric).
    CommonDigits,
    /// Shared-prefix length (Pastry-style).
    PrefixMatch,
    /// Shared-suffix length (Tapestry-style).
    SuffixMatch,
}

/// MPIL algorithm parameters (Sections 4.3–4.4 of the paper).
///
/// * `max_flows` — the total flow budget a message starts with; the
///   maximum number of concurrent paths an operation may use (the first
///   path counts). Table 3 of the paper shows the *realized* number of
///   flows is usually a little below this budget.
/// * `num_replicas` — per-flow replicas: how many local maxima each flow
///   deposits an object pointer at (insertions) or may pass through
///   before giving up (lookups).
/// * `duplicate_suppression` — "DS" in the paper: when enabled, a node
///   silently discards any message (by message ID) it has already
///   processed. The paper enables DS for all static-overlay experiments
///   and evaluates both settings under perturbation (Figure 11), finding
///   *disabling* DS more robust on flapping overlays.
/// * `split_policy` — see [`SplitPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpilConfig {
    /// The digit width of the identifier space (paper default: base-4).
    pub space: IdSpace,
    /// Total flow budget per operation (`max flows`).
    pub max_flows: u32,
    /// Per-flow replicas (`num replicas`).
    pub num_replicas: u32,
    /// Duplicate suppression (DS).
    pub duplicate_suppression: bool,
    /// Forwarding fan-out rule.
    pub split_policy: SplitPolicy,
    /// The closeness metric to maximize (MPIL: common digits).
    pub metric: RoutingMetric,
}

impl Default for MpilConfig {
    /// The configuration of the paper's MSPastry comparison (Section 6.2):
    /// 10 max flows, 5 per-flow replicas, base-4 digits, DS enabled.
    fn default() -> Self {
        MpilConfig {
            space: IdSpace::base4(),
            max_flows: 10,
            num_replicas: 5,
            duplicate_suppression: true,
            split_policy: SplitPolicy::TopK,
            metric: RoutingMetric::CommonDigits,
        }
    }
}

impl MpilConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `max_flows` or `num_replicas` is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_flows == 0 {
            return Err(ConfigError::ZeroMaxFlows);
        }
        if self.num_replicas == 0 {
            return Err(ConfigError::ZeroReplicas);
        }
        Ok(())
    }

    /// Sets the flow budget.
    pub fn with_max_flows(mut self, max_flows: u32) -> Self {
        self.max_flows = max_flows;
        self
    }

    /// Sets the per-flow replica count.
    pub fn with_num_replicas(mut self, num_replicas: u32) -> Self {
        self.num_replicas = num_replicas;
        self
    }

    /// Enables or disables duplicate suppression.
    pub fn with_duplicate_suppression(mut self, ds: bool) -> Self {
        self.duplicate_suppression = ds;
        self
    }

    /// Sets the identifier space.
    pub fn with_space(mut self, space: IdSpace) -> Self {
        self.space = space;
        self
    }

    /// Sets the forwarding fan-out rule.
    pub fn with_split_policy(mut self, split_policy: SplitPolicy) -> Self {
        self.split_policy = split_policy;
        self
    }

    /// Sets the closeness metric (for the Section 4.2 ablation).
    pub fn with_metric(mut self, metric: RoutingMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Upper bound on replicas one insertion can create:
    /// `max_flows × num_replicas` (Section 4.4).
    pub fn replica_bound(&self) -> u64 {
        u64::from(self.max_flows) * u64::from(self.num_replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_section_6_2() {
        let c = MpilConfig::default();
        assert_eq!(c.max_flows, 10);
        assert_eq!(c.num_replicas, 5);
        assert!(c.duplicate_suppression);
        assert_eq!(c.space, IdSpace::base4());
        assert_eq!(c.split_policy, SplitPolicy::TopK);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn split_policy_builder() {
        let c = MpilConfig::default().with_split_policy(SplitPolicy::MetricTies);
        assert_eq!(c.split_policy, SplitPolicy::MetricTies);
    }

    #[test]
    fn metric_builder_and_default() {
        assert_eq!(MpilConfig::default().metric, RoutingMetric::CommonDigits);
        let c = MpilConfig::default().with_metric(RoutingMetric::PrefixMatch);
        assert_eq!(c.metric, RoutingMetric::PrefixMatch);
    }

    #[test]
    fn builders_compose() {
        let c = MpilConfig::default()
            .with_max_flows(30)
            .with_num_replicas(5)
            .with_duplicate_suppression(false)
            .with_space(IdSpace::base16());
        assert_eq!(c.max_flows, 30);
        assert_eq!(c.num_replicas, 5);
        assert!(!c.duplicate_suppression);
        assert_eq!(c.space, IdSpace::base16());
        assert_eq!(c.replica_bound(), 150);
    }

    #[test]
    fn validation_rejects_zeros() {
        assert_eq!(
            MpilConfig::default().with_max_flows(0).validate(),
            Err(ConfigError::ZeroMaxFlows)
        );
        assert_eq!(
            MpilConfig::default().with_num_replicas(0).validate(),
            Err(ConfigError::ZeroReplicas)
        );
    }

    #[test]
    fn errors_display() {
        assert!(ConfigError::ZeroMaxFlows.to_string().contains("max_flows"));
        assert!(ConfigError::ZeroReplicas
            .to_string()
            .contains("num_replicas"));
    }
}
