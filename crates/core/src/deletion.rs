//! The deletion protocol sketched in Section 4.4 of the paper.
//!
//! > "Whenever a replica is placed in a node, the node sends a periodic
//! > heartbeat to the owner of the original object. When the originator
//! > wants to delete a replica, it sends an explicit delete message to
//! > the node."
//!
//! [`ReplicaRegistry`] is the owner-side bookkeeping: which nodes have
//! been heard from (via heartbeats) for each object the owner inserted.
//! The wire protocol itself lives in [`crate::agent`]; this module keeps
//! the registry logic separately testable.

use fxhash::FxHashMap;
use mpil_id::{Id, IdMap};
use mpil_overlay::NodeIdx;
use mpil_sim::SimTime;

/// Owner-side view of where an object's replicas live.
///
/// Heartbeats both register holders and refresh their freshness stamp, so
/// an owner can also expire holders it has not heard from (a holder that
/// was deleted while perturbed, for instance).
#[derive(Debug, Clone, Default)]
pub struct ReplicaRegistry {
    holders: IdMap<FxHashMap<NodeIdx, SimTime>>,
}

impl ReplicaRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a heartbeat for `object` from `holder` at `now`.
    pub fn heartbeat(&mut self, object: Id, holder: NodeIdx, now: SimTime) {
        if let Some(m) = self.holders.get_mut(&object) {
            m.insert(holder, now);
        } else {
            let mut m = FxHashMap::default();
            m.insert(holder, now);
            self.holders.insert(object, m);
        }
    }

    /// Known holders of `object`, in ascending node order (sorted so
    /// downstream message sequences are deterministic).
    pub fn holders(&self, object: Id) -> Vec<NodeIdx> {
        let mut v: Vec<NodeIdx> = self
            .holders
            .get(&object)
            .map(|m| m.keys().copied().collect()) // mpil-lint: allow(D003, sorted below)
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Holders heard from since `cutoff`, in ascending node order.
    pub fn fresh_holders(&self, object: Id, cutoff: SimTime) -> Vec<NodeIdx> {
        let mut v: Vec<NodeIdx> = self
            .holders
            .get(&object)
            .map(|m| {
                m.iter() // mpil-lint: allow(D003, sorted below)
                    .filter(|&(_, &t)| t >= cutoff)
                    .map(|(&n, _)| n)
                    .collect()
            })
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Forgets `object` entirely (after a delete round). Returns the
    /// holders that were known, in ascending node order (so the delete
    /// fan-out is a deterministic message sequence).
    pub fn forget(&mut self, object: Id) -> Vec<NodeIdx> {
        let mut v: Vec<NodeIdx> = self
            .holders
            .remove(&object)
            .map(|m| m.into_keys().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Number of objects tracked.
    pub fn len(&self) -> usize {
        self.holders.len()
    }

    /// Returns `true` if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.holders.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(k: u64) -> Id {
        Id::from_low_u64(k)
    }

    fn node(i: u32) -> NodeIdx {
        NodeIdx::new(i)
    }

    #[test]
    fn heartbeats_register_holders() {
        let mut reg = ReplicaRegistry::new();
        reg.heartbeat(obj(1), node(3), SimTime::from_secs(10));
        reg.heartbeat(obj(1), node(4), SimTime::from_secs(11));
        reg.heartbeat(obj(2), node(3), SimTime::from_secs(12));
        let mut h = reg.holders(obj(1));
        h.sort();
        assert_eq!(h, vec![node(3), node(4)]);
        assert_eq!(reg.holders(obj(2)), vec![node(3)]);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn repeated_heartbeats_refresh_not_duplicate() {
        let mut reg = ReplicaRegistry::new();
        reg.heartbeat(obj(1), node(3), SimTime::from_secs(1));
        reg.heartbeat(obj(1), node(3), SimTime::from_secs(5));
        assert_eq!(reg.holders(obj(1)).len(), 1);
        assert_eq!(
            reg.fresh_holders(obj(1), SimTime::from_secs(3)),
            vec![node(3)]
        );
    }

    #[test]
    fn fresh_holders_filters_stale() {
        let mut reg = ReplicaRegistry::new();
        reg.heartbeat(obj(1), node(1), SimTime::from_secs(1));
        reg.heartbeat(obj(1), node(2), SimTime::from_secs(100));
        let fresh = reg.fresh_holders(obj(1), SimTime::from_secs(50));
        assert_eq!(fresh, vec![node(2)]);
    }

    #[test]
    fn forget_clears_object() {
        let mut reg = ReplicaRegistry::new();
        reg.heartbeat(obj(1), node(1), SimTime::ZERO);
        let gone = reg.forget(obj(1));
        assert!(gone.contains(&node(1)));
        assert!(reg.is_empty());
        assert!(reg.forget(obj(1)).is_empty());
    }

    #[test]
    fn unknown_object_has_no_holders() {
        let reg = ReplicaRegistry::new();
        assert!(reg.holders(obj(9)).is_empty());
        assert!(reg.fresh_holders(obj(9), SimTime::ZERO).is_empty());
    }
}
