//! The paths-limiting algorithm (Section 4.3 of the paper).
//!
//! When a node must forward to several tied candidates, the message's
//! remaining `max_flows` quota bounds how many it may actually use and is
//! subdivided among the forwarded copies:
//!
//! 1. `m = min(#candidates, max_flows + given_flows)`, where
//!    `given_flows` is 0 at the original sender and 1 elsewhere (a relay
//!    already *has* one flow; only extras are charged);
//! 2. forward to `m` candidates;
//! 3. each copy carries `(max_flows − m + given_flows) / m`, with the
//!    residue distributed one-by-one round-robin.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The outcome of the paths-limiting computation at one node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardPlan {
    /// How many candidates to forward to.
    pub m: u32,
    /// Quota assigned to each forwarded copy (`child_quotas.len() == m`).
    pub child_quotas: Vec<u32>,
    /// Flows newly created by this forwarding step (`m - given_flows`);
    /// what Table 3 of the paper sums into the "actual number of flows".
    pub flows_created: u32,
}

/// Picks which `m` of the tied candidates a node actually forwards to:
/// all of them when the plan covers the whole tie set, otherwise a
/// uniformly random subset of `m`.
///
/// Every engine (static, dynamic, live) must select this way; the
/// shared helper exists because `partial_shuffle` places its selection
/// at the **tail** of the slice, which individual call sites have
/// gotten wrong by truncating to the head.
pub fn select_candidates<T, R: Rng + ?Sized>(
    mut candidates: Vec<T>,
    m: usize,
    rng: &mut R,
) -> Vec<T> {
    if m >= candidates.len() {
        return candidates;
    }
    candidates.partial_shuffle(rng, m);
    let boundary = candidates.len() - m;
    candidates.split_off(boundary)
}

/// Computes the forwarding plan for one node.
///
/// * `quota` — the `max_flows` field of the received message;
/// * `given_flows` — 0 at the original sender, 1 at relays;
/// * `candidates` — the number of tied best-metric candidates.
///
/// Returns a plan with `m == 0` when nothing may be forwarded (no
/// candidates, or an originator with zero quota).
///
/// The invariant the algorithm maintains (verified by the property tests):
/// the total number of flows an operation ever creates is at most the
/// originator's `max_flows`, because `flows_created + Σ child_quotas =
/// quota + given_flows − (m − flows_created) = quota` ... i.e. quota is
/// conserved: `Σ child_quotas = quota + given_flows − m`.
///
/// # Panics
///
/// Panics if `given_flows` is not 0 or 1.
pub fn plan_forwarding(quota: u32, given_flows: u32, candidates: usize) -> ForwardPlan {
    assert!(given_flows <= 1, "given_flows is 0 (origin) or 1 (relay)");
    let budget = quota + given_flows;
    let m = (candidates as u64).min(u64::from(budget)) as u32;
    if m == 0 {
        return ForwardPlan {
            m: 0,
            child_quotas: Vec::new(),
            flows_created: 0,
        };
    }
    // Quota left to distribute among the m copies.
    let remaining = budget - m;
    let base = remaining / m;
    let residue = remaining % m;
    let child_quotas = (0..m)
        .map(|i| if i < residue { base + 1 } else { base })
        .collect();
    ForwardPlan {
        m,
        child_quotas,
        flows_created: m - given_flows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_single_candidate_consumes_one_flow() {
        // Paper's Figure 6: origin 0001 with max_flows=2 forwards to one
        // node; max_flows becomes 1.
        let p = plan_forwarding(2, 0, 1);
        assert_eq!(p.m, 1);
        assert_eq!(p.child_quotas, vec![1]);
        assert_eq!(p.flows_created, 1);
    }

    #[test]
    fn relay_single_candidate_preserves_quota() {
        // Figure 6: 1001 (a relay) forwards to one node with max_flows=1;
        // the copy still carries 1.
        let p = plan_forwarding(1, 1, 1);
        assert_eq!(p.m, 1);
        assert_eq!(p.child_quotas, vec![1]);
        assert_eq!(p.flows_created, 0);
    }

    #[test]
    fn relay_split_consumes_quota() {
        // Figure 6: 1110 (a relay, max_flows=1) has two tied candidates;
        // it forwards to both, each copy carrying 0.
        let p = plan_forwarding(1, 1, 2);
        assert_eq!(p.m, 2);
        assert_eq!(p.child_quotas, vec![0, 0]);
        assert_eq!(p.flows_created, 1);
    }

    #[test]
    fn zero_quota_relay_still_forwards_single_path() {
        let p = plan_forwarding(0, 1, 3);
        assert_eq!(p.m, 1);
        assert_eq!(p.child_quotas, vec![0]);
        assert_eq!(p.flows_created, 0);
    }

    #[test]
    fn zero_quota_origin_sends_nothing() {
        let p = plan_forwarding(0, 0, 3);
        assert_eq!(p.m, 0);
        assert!(p.child_quotas.is_empty());
    }

    #[test]
    fn residue_distributed_round_robin() {
        // Origin, quota 10, 3 candidates: m=3, remaining=7, base=2,
        // residue=1 -> quotas [3,2,2].
        let p = plan_forwarding(10, 0, 3);
        assert_eq!(p.m, 3);
        assert_eq!(p.child_quotas, vec![3, 2, 2]);
        assert_eq!(p.flows_created, 3);
    }

    #[test]
    fn relay_with_many_candidates_caps_at_budget() {
        // Relay, quota 2, 10 candidates: budget 3 -> m=3, remaining 0.
        let p = plan_forwarding(2, 1, 10);
        assert_eq!(p.m, 3);
        assert_eq!(p.child_quotas, vec![0, 0, 0]);
        assert_eq!(p.flows_created, 2);
    }

    #[test]
    fn quota_is_conserved() {
        for quota in 0..20u32 {
            for given in 0..=1u32 {
                for cands in 0..25usize {
                    let p = plan_forwarding(quota, given, cands);
                    if p.m == 0 {
                        continue;
                    }
                    let distributed: u32 = p.child_quotas.iter().sum();
                    assert_eq!(
                        distributed + p.m,
                        quota + given,
                        "quota {quota} given {given} cands {cands}"
                    );
                    assert_eq!(p.flows_created, p.m - given);
                }
            }
        }
    }

    #[test]
    fn no_candidates_no_plan() {
        let p = plan_forwarding(10, 1, 0);
        assert_eq!(p.m, 0);
        assert_eq!(p.flows_created, 0);
    }

    #[test]
    #[should_panic(expected = "given_flows")]
    fn rejects_bad_given_flows() {
        let _ = plan_forwarding(1, 2, 1);
    }
}
