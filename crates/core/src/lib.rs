//! # mpil — Multi-Path Insertion/Lookup
//!
//! A faithful implementation of **MPIL**, the resource location and
//! discovery algorithm of *"Perturbation-Resistant and Overlay-Independent
//! Resource Discovery"* (Ko & Gupta, DSN 2005).
//!
//! MPIL inserts and looks up object pointers over **any** overlay graph,
//! using only each node's local neighbor list:
//!
//! * the **routing metric** is the number of digits (base `2^b`) an ID
//!   shares with a node's ID at the same positions — the zero digits of
//!   their XOR (Section 4.1);
//! * a message is forwarded to *every* neighbor tied at the best metric,
//!   subject to a **`max_flows`** quota that is consumed and subdivided as
//!   flows split (Section 4.3);
//! * objects are stored at **local maxima** — nodes none of whose
//!   neighbors score higher — and each flow deposits (or, for lookups,
//!   visits) up to **`num_replicas`** of them (Section 4.4).
//!
//! The redundancy of multiple flows and replicas is what buys
//! perturbation-resistance; the metric's indifference to graph structure
//! is what buys overlay-independence.
//!
//! Two execution engines are provided:
//!
//! * [`StaticEngine`] — a message-level engine over a static
//!   [`Topology`](mpil_overlay::Topology), equivalent to the paper's
//!   Python simulator (Section 6.1: Figures 9–10, Tables 1–3);
//! * [`DynamicNetwork`] — event-driven agents over the
//!   [`mpil_sim`] kernel with latencies and perturbation (Section 6.2:
//!   Figures 11–12), including running MPIL over a frozen Pastry overlay.
//!
//! ```
//! use mpil::{MpilConfig, StaticEngine};
//! use mpil_overlay::generators;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let topo = generators::random_regular(64, 8, &mut rng)?;
//! let config = MpilConfig::default().with_max_flows(10).with_num_replicas(3);
//! let mut engine = StaticEngine::new(&topo, config, 42);
//!
//! let origin = mpil_overlay::NodeIdx::new(0);
//! let object = mpil_id::Id::from_low_u64(0xfeed);
//! let ins = engine.insert(origin, object);
//! assert!(ins.replicas >= 1);
//!
//! let finder = mpil_overlay::NodeIdx::new(33);
//! let look = engine.lookup(finder, object);
//! assert!(look.success);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod baselines;
pub mod config;
pub mod deletion;
pub mod flow;
pub mod message;
pub mod report;
pub mod routing;
pub mod static_engine;

pub use agent::{DynamicConfig, DynamicNetwork, DynamicStats, LookupStatus};
pub use baselines::UnstructuredEngine;
pub use config::{ConfigError, MpilConfig, RoutingMetric, SplitPolicy};
pub use flow::{plan_forwarding, select_candidates, ForwardPlan};
pub use message::{Message, MessageId, MessageKind};
pub use report::{InsertReport, LookupReport};
pub use routing::{metric_value, routing_decision, routing_decision_policy, RoutingDecision};
pub use static_engine::StaticEngine;
