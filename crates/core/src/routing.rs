//! MPIL next-hop selection (Figure 5 of the paper).

use mpil_id::{Id, IdSpace};
use mpil_overlay::NodeIdx;

use crate::config::{RoutingMetric, SplitPolicy};

/// The routing decision at one node for one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingDecision {
    /// The node's own metric value for the object.
    pub self_metric: u32,
    /// Whether the node is a *local maximum*: no neighbor (visited or not)
    /// has a strictly higher metric (Section 4.4).
    pub is_local_max: bool,
    /// Best-metric candidates among unvisited neighbors, in neighbor-list
    /// order. Empty when every neighbor has been visited.
    pub candidates: Vec<NodeIdx>,
    /// The metric value shared by `candidates` (0 when empty).
    pub candidate_metric: u32,
}

/// Evaluates the MPIL routing rule at `node` for `object`.
///
/// * `neighbors` — the node's full neighbor list;
/// * `ids` — the global ID table indexed by [`NodeIdx`];
/// * `visited` — the message's `route` field plus the node itself; a
///   predicate so callers can use whatever representation is cheap.
///
/// Two metric scans are specified by Figure 5: the local-maximum test
/// runs against **all** neighbors, while forwarding candidates exclude
/// visited ones.
pub fn routing_decision(
    space: IdSpace,
    object: Id,
    node: NodeIdx,
    neighbors: &[NodeIdx],
    ids: &[Id],
    visited: impl Fn(NodeIdx) -> bool,
) -> RoutingDecision {
    routing_decision_policy(
        space,
        object,
        node,
        neighbors,
        ids,
        visited,
        SplitPolicy::MetricTies,
        u32::MAX,
        RoutingMetric::CommonDigits,
    )
}

/// Evaluates one neighbor's closeness under the configured metric
/// (higher is closer for all three).
pub fn metric_value(metric: RoutingMetric, space: IdSpace, object: Id, id: Id) -> u32 {
    match metric {
        RoutingMetric::CommonDigits => space.common_digits(object, id),
        RoutingMetric::PrefixMatch => space.prefix_match(object, id),
        RoutingMetric::SuffixMatch => space.suffix_match(object, id),
    }
}

/// Like [`routing_decision`], but parameterized by the forwarding
/// fan-out rule.
///
/// For [`SplitPolicy::MetricTies`] the candidates are the neighbors tied
/// at the best metric (`budget` is ignored). For [`SplitPolicy::TopK`]
/// they are the best `budget` unvisited neighbors by metric, in
/// descending metric order with neighbor-list order breaking ties —
/// `budget` should be the message's remaining quota plus `given_flows`,
/// matching what [`crate::flow::plan_forwarding`] may actually use.
#[allow(clippy::too_many_arguments)]
pub fn routing_decision_policy(
    space: IdSpace,
    object: Id,
    node: NodeIdx,
    neighbors: &[NodeIdx],
    ids: &[Id],
    visited: impl Fn(NodeIdx) -> bool,
    policy: SplitPolicy,
    budget: u32,
    metric: RoutingMetric,
) -> RoutingDecision {
    let self_metric = metric_value(metric, space, object, ids[node.index()]);
    let mut best_any = 0u32;
    let mut best_candidate = 0u32;
    let mut candidates = Vec::new();
    let mut scored: Vec<(u32, NodeIdx)> = Vec::new();
    for &nbr in neighbors {
        let m = metric_value(metric, space, object, ids[nbr.index()]);
        if m > best_any {
            best_any = m;
        }
        if visited(nbr) || nbr == node {
            continue;
        }
        match policy {
            SplitPolicy::MetricTies => {
                use std::cmp::Ordering;
                match m.cmp(&best_candidate) {
                    Ordering::Greater => {
                        best_candidate = m;
                        candidates.clear();
                        candidates.push(nbr);
                    }
                    Ordering::Equal => candidates.push(nbr),
                    Ordering::Less => {}
                }
            }
            SplitPolicy::TopK => {
                best_candidate = best_candidate.max(m);
                scored.push((m, nbr));
            }
        }
    }
    if policy == SplitPolicy::TopK && !scored.is_empty() {
        let take = (budget as usize).min(scored.len()).max(1);
        // Stable by neighbor-list order within equal metrics.
        scored.sort_by_key(|&(m, _)| std::cmp::Reverse(m));
        scored.truncate(take);
        candidates = scored.into_iter().map(|(_, n)| n).collect();
    }
    RoutingDecision {
        self_metric,
        is_local_max: neighbors.is_empty() || self_metric >= best_any,
        candidates,
        candidate_metric: best_candidate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the 4-bit toy IDs from the paper's figures, embedded in the
    /// low bits of 160-bit IDs. All high bits are zero, so they are
    /// common to every pair and only shift metrics by a constant.
    fn id4(bits: u64) -> Id {
        Id::from_low_u64(bits)
    }

    #[test]
    fn paper_figure_4_continuous_forwarding() {
        // Node 1001 holds a lookup for 0110 with neighbors
        // {1011, 1111, 1101}: prefix routing sees no progress anywhere,
        // but MPIL picks 1111 (matches "11" in the middle positions).
        let space = IdSpace::base2();
        let ids = vec![id4(0b1001), id4(0b1011), id4(0b1111), id4(0b1101)];
        let node = NodeIdx::new(0);
        let neighbors = [NodeIdx::new(1), NodeIdx::new(2), NodeIdx::new(3)];
        let d = routing_decision(space, id4(0b0110), node, &neighbors, &ids, |_| false);
        assert_eq!(d.candidates, vec![NodeIdx::new(2)], "1111 is the best");
        assert!(!d.is_local_max);
    }

    #[test]
    fn paper_figure_4_redundancy_ties() {
        // Node 1001 forwards ID 0001; neighbors 1101 and 1011 tie (both
        // share 2 digits with 0001 in 4-bit space), 1111 shares 1.
        let space = IdSpace::base2();
        let ids = vec![id4(0b1001), id4(0b1111), id4(0b1101), id4(0b1011)];
        let node = NodeIdx::new(0);
        let neighbors = [NodeIdx::new(1), NodeIdx::new(2), NodeIdx::new(3)];
        let d = routing_decision(space, id4(0b0001), node, &neighbors, &ids, |_| false);
        assert_eq!(d.candidates, vec![NodeIdx::new(2), NodeIdx::new(3)]);
    }

    #[test]
    fn local_maximum_detected_against_all_neighbors() {
        let space = IdSpace::base2();
        // Object equals node 0's ID: metric 160, strictly above any
        // distinct neighbor.
        let ids = vec![id4(0b1001), id4(0b1000), id4(0b0001)];
        let node = NodeIdx::new(0);
        let neighbors = [NodeIdx::new(1), NodeIdx::new(2)];
        let d = routing_decision(space, id4(0b1001), node, &neighbors, &ids, |_| false);
        assert!(d.is_local_max);
        assert_eq!(d.self_metric, 160);
        // Candidates still computed (a flow may continue past a maximum);
        // both neighbors differ from the object by exactly one bit, so
        // they tie at 159.
        assert_eq!(d.candidates, vec![NodeIdx::new(1), NodeIdx::new(2)]);
        assert_eq!(d.candidate_metric, 159);
    }

    #[test]
    fn visited_neighbors_are_not_candidates_but_count_for_maximum() {
        let space = IdSpace::base2();
        let ids = vec![id4(0b1001), id4(0b1011), id4(0b0000)];
        let node = NodeIdx::new(0);
        let neighbors = [NodeIdx::new(1), NodeIdx::new(2)];
        let object = id4(0b1011);
        // Neighbor 1 (=object, metric 160) is visited: it cannot be a
        // candidate, but it still prevents node 0 from being a local max.
        let d = routing_decision(space, object, node, &neighbors, &ids, |n| {
            n == NodeIdx::new(1)
        });
        assert!(!d.is_local_max);
        assert_eq!(d.candidates, vec![NodeIdx::new(2)]);
    }

    #[test]
    fn all_visited_leaves_no_candidates() {
        let space = IdSpace::base2();
        let ids = vec![id4(1), id4(2), id4(3)];
        let node = NodeIdx::new(0);
        let neighbors = [NodeIdx::new(1), NodeIdx::new(2)];
        let d = routing_decision(space, id4(7), node, &neighbors, &ids, |_| true);
        assert!(d.candidates.is_empty());
        assert_eq!(d.candidate_metric, 0);
    }

    #[test]
    fn isolated_node_is_trivially_local_max() {
        let space = IdSpace::base4();
        let ids = vec![id4(5)];
        let d = routing_decision(space, id4(9), NodeIdx::new(0), &[], &ids, |_| false);
        assert!(d.is_local_max);
        assert!(d.candidates.is_empty());
    }

    #[test]
    fn tie_with_self_is_still_local_max() {
        // "none of its neighbor nodes have a higher value" — equal is OK.
        let space = IdSpace::base2();
        // Node and neighbor have IDs at equal metric to the object.
        let ids = vec![id4(0b0011), id4(0b0101)];
        // object 0001: node 0 shares bits {0,1,3}... compute: 0011 vs 0001
        // differ in bit 2 (value 2): metric 159. 0101 vs 0001 differ in
        // bit... 0101^0001=0100: metric 159. Tie.
        let d = routing_decision(
            space,
            id4(0b0001),
            NodeIdx::new(0),
            &[NodeIdx::new(1)],
            &ids,
            |_| false,
        );
        assert_eq!(d.self_metric, 159);
        assert!(d.is_local_max);
    }
}
