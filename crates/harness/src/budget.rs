//! Wall-clock stopwatches and budgets for scale smokes and benchmark
//! drivers.
//!
//! The harness is a deterministic crate: simulated runs must be a pure
//! function of the seed, so `mpil-lint` rule D002 bans wall-clock reads
//! here. Tripwires ("did the 10k smoke finish inside 150 s?") are the
//! one legitimate exception, and this module is their single home — the
//! two `Instant` touchpoints below carry the workspace's canonical
//! `allow(D002)` annotations, and every deterministic-zone caller (the
//! conformance scale smoke, the `scale_run` CI tripwire, the bench
//! stage timings) routes through [`WallClock`] / [`WallClockBudget`]
//! instead of touching `std::time` itself.

use std::time::Duration;
#[allow(clippy::disallowed_types)] // the sanctioned wall-clock touchpoint
// mpil-lint: allow(D002, wall-clock test budget)
use std::time::Instant;

/// A started stopwatch: measures real elapsed time without imposing a
/// limit. Use for stage timings that end up in benchmark reports.
#[derive(Debug, Clone, Copy)]
#[allow(clippy::disallowed_types)] // the sanctioned wall-clock touchpoint
pub struct WallClock {
    started: Instant,
}

impl WallClock {
    /// Starts the stopwatch.
    #[allow(clippy::disallowed_types)] // the sanctioned wall-clock touchpoint
    pub fn start() -> Self {
        WallClock {
            // mpil-lint: allow(D002, wall-clock test budget)
            started: Instant::now(),
        }
    }

    /// Real time elapsed since [`WallClock::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed time as fractional seconds (benchmark-report friendly).
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// A stopwatch with a wall-clock ceiling: the shared tripwire used by
/// the 10k conformance smoke and the `scale_run --budget-s` CI path.
#[derive(Debug, Clone, Copy)]
pub struct WallClockBudget {
    clock: WallClock,
    budget: Duration,
}

impl WallClockBudget {
    /// Starts the clock against `budget`.
    pub fn start(budget: Duration) -> Self {
        WallClockBudget {
            clock: WallClock::start(),
            budget,
        }
    }

    /// The ceiling this budget enforces.
    pub fn budget(&self) -> Duration {
        self.budget
    }

    /// Real time elapsed so far.
    pub fn elapsed(&self) -> Duration {
        self.clock.elapsed()
    }

    /// `true` while the elapsed time is still under the ceiling.
    pub fn within(&self) -> bool {
        self.clock.elapsed() < self.budget
    }

    /// Returns `Err` with a ready-to-print message if the ceiling has
    /// been crossed; `context` names what was being timed.
    pub fn check(&self, context: &str) -> Result<(), String> {
        let elapsed = self.clock.elapsed();
        if elapsed < self.budget {
            Ok(())
        } else {
            Err(format!(
                "{context} took {elapsed:?} (budget {:?})",
                self.budget
            ))
        }
    }

    /// Panics with the [`WallClockBudget::check`] message if the ceiling
    /// has been crossed (test-assertion flavor).
    pub fn assert_within(&self, context: &str) {
        if let Err(msg) = self.check(context) {
            panic!("{msg}"); // mpil-lint: allow(P001, panicking is this assertion helper's contract)
        }
    }
}

/// Peak resident set size of this process in MiB, from
/// `/proc/self/status` (`VmHWM`). `None` off Linux or if the field is
/// missing.
pub fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// A peak-RSS ceiling: the memory-side sibling of [`WallClockBudget`],
/// used by `scale_run --max-rss-mib` as the CI tripwire for kernel
/// memory regressions (e.g. timer-wheel slots hoarding capacity).
///
/// Unlike the wall-clock budget there is nothing to start: `VmHWM` is
/// the process's high-water mark, so a single reading at check time
/// covers the whole run.
#[derive(Debug, Clone, Copy)]
pub struct RssBudget {
    ceiling_mib: f64,
}

impl RssBudget {
    /// Creates a budget with a peak-RSS ceiling in MiB.
    pub fn new(ceiling_mib: f64) -> Self {
        RssBudget { ceiling_mib }
    }

    /// The ceiling this budget enforces, in MiB.
    pub fn ceiling_mib(&self) -> f64 {
        self.ceiling_mib
    }

    /// Returns `Err` with a ready-to-print message if the process's
    /// peak RSS exceeds the ceiling; `context` names what ran. Where
    /// `/proc` is unavailable the reading is skipped and the check
    /// passes (the gate is a Linux-CI tripwire, not a portability
    /// contract).
    pub fn check(&self, context: &str) -> Result<(), String> {
        match peak_rss_mib() {
            Some(peak) if peak > self.ceiling_mib => Err(format!(
                "{context} peaked at {peak:.1} MiB RSS (ceiling {:.1} MiB)",
                self.ceiling_mib
            )),
            _ => Ok(()),
        }
    }
}

/// A messages-per-lookup ceiling: the traffic-side sibling of
/// [`WallClockBudget`] / [`RssBudget`], used by `scale_run
/// --max-msgs-per-lookup` as the CI tripwire for lookup-traffic
/// regressions (e.g. a Plumtree change quietly degenerating back into
/// expanding-ring flooding).
///
/// Unlike the other budgets this one is fed measurements: callers hand
/// it the lookup-class message count and the number of lookups driven,
/// and it checks the quotient.
#[derive(Debug, Clone, Copy)]
pub struct TrafficBudget {
    ceiling_msgs_per_lookup: f64,
}

impl TrafficBudget {
    /// Creates a budget with a messages-per-lookup ceiling.
    pub fn new(ceiling_msgs_per_lookup: f64) -> Self {
        TrafficBudget {
            ceiling_msgs_per_lookup,
        }
    }

    /// The ceiling this budget enforces, in messages per lookup.
    pub fn ceiling_msgs_per_lookup(&self) -> f64 {
        self.ceiling_msgs_per_lookup
    }

    /// Returns `Err` with a ready-to-print message if `lookup_messages`
    /// averaged over `lookups` exceeds the ceiling; `context` names
    /// what ran. Zero lookups trivially passes (nothing was measured).
    pub fn check(&self, context: &str, lookup_messages: u64, lookups: usize) -> Result<(), String> {
        if lookups == 0 {
            return Ok(());
        }
        let per_lookup = lookup_messages as f64 / lookups as f64;
        if per_lookup > self.ceiling_msgs_per_lookup {
            Err(format!(
                "{context} spent {per_lookup:.1} msgs/lookup ({lookup_messages} over {lookups} \
                 lookups, ceiling {:.1})",
                self.ceiling_msgs_per_lookup
            ))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_generous_budget_is_within() {
        let b = WallClockBudget::start(Duration::from_secs(3600));
        assert!(b.within());
        b.assert_within("trivial work");
        assert!(b.check("trivial work").is_ok());
        assert_eq!(b.budget(), Duration::from_secs(3600));
    }

    #[test]
    fn a_zero_budget_is_exceeded() {
        let b = WallClockBudget::start(Duration::ZERO);
        assert!(!b.within());
        let err = b.check("instant work").unwrap_err();
        assert!(err.contains("instant work"), "{err}");
        assert!(err.contains("budget"), "{err}");
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn assert_within_panics_past_the_ceiling() {
        WallClockBudget::start(Duration::ZERO).assert_within("work");
    }

    #[test]
    fn rss_budget_reads_the_high_water_mark() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_mib().expect("VmHWM") > 0.0);
            let err = RssBudget::new(0.001).check("this test").unwrap_err();
            assert!(err.contains("ceiling"), "{err}");
        }
        assert!(RssBudget::new(1e12).check("this test").is_ok());
    }

    #[test]
    fn traffic_budget_checks_the_quotient() {
        let b = TrafficBudget::new(25.0);
        assert_eq!(b.ceiling_msgs_per_lookup(), 25.0);
        assert!(b.check("cheap lookups", 400, 20).is_ok());
        let err = b.check("flooding lookups", 2356, 20).unwrap_err();
        assert!(err.contains("117.8"), "{err}");
        assert!(err.contains("ceiling"), "{err}");
        // No lookups driven means nothing to judge.
        assert!(b.check("empty run", 0, 0).is_ok());
    }

    #[test]
    fn stopwatch_reports_nonnegative_seconds() {
        let w = WallClock::start();
        assert!(w.elapsed_s() >= 0.0);
        assert!(w.elapsed() >= Duration::ZERO);
    }
}
