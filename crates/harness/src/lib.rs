//! # mpil-harness
//!
//! The paper's central claim is *overlay-independence*: MPIL runs
//! unchanged over any substrate. This crate turns that claim into an
//! API. [`DiscoveryEngine`] is the one lifecycle every engine speaks —
//! MPIL's [`mpil::DynamicNetwork`], [`mpil_chord::ChordSim`],
//! [`mpil_kademlia::KademliaSim`], [`mpil_pastry::PastrySim`], and the
//! epidemic [`mpil_gossip::GossipSim`] all implement it — and
//! [`Scenario`] is the one experiment descriptor
//! every figure driver speaks: which engine, how many nodes, which
//! perturbation schedule, which workload.
//!
//! On top of both sits the [`ExperimentRunner`]: a bounded worker pool
//! (crossbeam scoped threads) that fans scenarios — or one scenario
//! across many seeds — out in parallel, with deterministic per-seed RNG
//! streams and order-preserving result collection, so a parallel run is
//! bit-identical to a sequential one. [`run_scenario`] is the single
//! implementation of the paper's two-stage perturbation methodology
//! (insert on the static overlay, then flap and look up), replacing the
//! per-engine copies the bench crate used to carry.
//!
//! Results merge across seeds via [`mpil_workload::RunningStats`] and
//! emit uniformly as text tables, CSV ([`Report`]), or JSON
//! ([`SeedSweep::to_json`]).
//!
//! Adding a new substrate = implementing [`DiscoveryEngine`] (see the
//! conformance suite in `tests/conformance.rs`) and, if its frozen
//! pointer graph should also serve as an MPIL overlay, an
//! [`OverlaySource`] variant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod engine;
pub mod engines;
pub mod report;
pub mod runner;
pub mod scenario;

pub use budget::{peak_rss_mib, RssBudget, TrafficBudget, WallClock, WallClockBudget};
pub use engine::{Counters, DiscoveryEngine, LookupHandle};
pub use mpil_gossip::LookupStrategy;
pub use report::Report;
pub use runner::{run_scenario, ExperimentRunner, PerturbResult, SeedStats, SeedSweep};
pub use scenario::{EngineSpec, OverlaySource, PerturbRun, PreparedRun, Scenario};
