//! [`Scenario`]: the one experiment descriptor every driver speaks.
//!
//! A scenario names an engine ([`EngineSpec`]), an overlay size, a
//! workload (insert/lookup pairs from a designated origin), a flapping
//! perturbation schedule, and a master seed. [`Scenario::build`]
//! constructs the engine converged — reproducing, per engine, the exact
//! RNG draw order the original per-experiment runners used, so results
//! (and the calibrated test thresholds that depend on them) are
//! bit-identical to the pre-harness code.

use std::fmt;

use mpil::{DynamicConfig, DynamicNetwork, MpilConfig};
use mpil_chord::{ChordConfig, ChordSim};
use mpil_gossip::{EpidemicConfig, EpidemicSim, GossipConfig, GossipSim, LookupStrategy};
use mpil_id::Id;
use mpil_kademlia::{KademliaConfig, KademliaSim};
use mpil_overlay::transit_stub::{self, TransitStubConfig};
use mpil_overlay::{generators, NodeIdx};
use mpil_pastry::{PastryConfig, PastrySim};
use mpil_sim::{AlwaysOn, ConstantLatency, SimDuration, TransitStubLatency};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::engine::DiscoveryEngine;

/// A source of frozen neighbor graphs for MPIL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlaySource {
    /// Pastry leaf sets ∪ routing tables.
    Pastry,
    /// Chord successors ∪ fingers ∪ predecessor.
    Chord,
    /// Kademlia bucket contents.
    Kademlia,
    /// Random regular graph with the given degree.
    RandomRegular(usize),
    /// Inet-style power-law graph.
    PowerLaw,
    /// Converged gossip partial views (each node's bounded view frozen
    /// as its neighbor list), with the given view size.
    Gossip {
        /// Partial-view bound (the overlay's out-degree).
        view: usize,
    },
    /// Converged HyParView active views (each node's symmetric active
    /// view frozen as its neighbor list), with the given active bound.
    HyParView {
        /// Active-view bound (the overlay's degree).
        active: usize,
    },
}

impl OverlaySource {
    /// Label used in tables.
    pub fn label(&self) -> String {
        match self {
            OverlaySource::Pastry => "Pastry overlay".into(),
            OverlaySource::Chord => "Chord overlay".into(),
            OverlaySource::Kademlia => "Kademlia overlay".into(),
            OverlaySource::RandomRegular(d) => format!("random d={d}"),
            OverlaySource::PowerLaw => "power-law".into(),
            OverlaySource::Gossip { view } => format!("gossip view={view}"),
            OverlaySource::HyParView { active } => format!("hyparview active={active}"),
        }
    }

    /// Builds the frozen (ids, neighbor lists) pair.
    ///
    /// # Panics
    ///
    /// Panics if a generator fails for the requested size (degree too
    /// large for `nodes`, etc.).
    pub fn build(&self, nodes: usize, seed: u64) -> (Vec<Id>, Vec<Vec<NodeIdx>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            OverlaySource::Pastry => {
                let config = PastryConfig::default();
                let ids = mpil_pastry::bootstrap::random_ids(nodes, &mut rng);
                let states = mpil_pastry::build_converged_states(&ids, &config, &mut rng);
                let nbrs = states.iter().map(|s| s.neighbor_list()).collect();
                (ids, nbrs)
            }
            OverlaySource::Chord => {
                let config = ChordConfig::default();
                let ids = mpil_chord::random_ids(nodes, &mut rng);
                let states = mpil_chord::build_converged_states(&ids, &config);
                let nbrs = states.iter().map(|s| s.neighbor_list()).collect();
                (ids, nbrs)
            }
            OverlaySource::Kademlia => {
                let config = KademliaConfig::default();
                let ids = mpil_chord::random_ids(nodes, &mut rng);
                let tables = mpil_kademlia::build_converged_tables(&ids, &config);
                let nbrs = tables.iter().map(|t| t.iter().collect()).collect();
                (ids, nbrs)
            }
            OverlaySource::RandomRegular(d) => {
                let topo = generators::random_regular(nodes, *d, &mut rng).expect("generator"); // mpil-lint: allow(P001, generator failure on these fixed parameters is a programming error in the spec)
                let nbrs = topo
                    .iter_nodes()
                    .map(|n| topo.neighbors(n).to_vec())
                    .collect();
                (topo.ids().to_vec(), nbrs)
            }
            OverlaySource::PowerLaw => {
                let topo =
                    generators::power_law(nodes, Default::default(), &mut rng).expect("generator"); // mpil-lint: allow(P001, generator failure on these fixed parameters is a programming error in the spec)
                let nbrs = topo
                    .iter_nodes()
                    .map(|n| topo.neighbors(n).to_vec())
                    .collect();
                (topo.ids().to_vec(), nbrs)
            }
            OverlaySource::Gossip { view } => {
                let ids = mpil_chord::random_ids(nodes, &mut rng);
                let views = mpil_gossip::build_converged_views(nodes, *view, &mut rng);
                let nbrs = views.iter().map(|v| v.peers()).collect();
                (ids, nbrs)
            }
            OverlaySource::HyParView { active } => {
                let ids = mpil_chord::random_ids(nodes, &mut rng);
                let members = mpil_gossip::build_converged_membership(
                    nodes,
                    *active,
                    EpidemicConfig::default().passive_size,
                    &mut rng,
                );
                let nbrs = members.iter().map(|m| m.active.peers()).collect();
                (ids, nbrs)
            }
        }
    }
}

impl fmt::Display for OverlaySource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One perturbation run's parameters (overlay size, workload, flapping
/// schedule, failure injection, master seed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerturbRun {
    /// Overlay size (1000 in the paper).
    pub nodes: usize,
    /// Insert/lookup pairs (1000 in the paper).
    pub operations: usize,
    /// Idle (online) seconds per flapping period.
    pub idle_secs: u64,
    /// Offline seconds per flapping period.
    pub offline_secs: u64,
    /// Flapping probability.
    pub probability: f64,
    /// Cap on the per-lookup deadline in seconds (60 by default).
    pub deadline_cap_secs: u64,
    /// Independent per-message link-loss probability injected in stage 2
    /// (0 = lossless; Castro et al.'s dependability study sweeps this).
    pub loss_probability: f64,
    /// Master seed.
    pub seed: u64,
}

impl PerturbRun {
    /// A run with the paper's defaults for everything but the sweep
    /// variables.
    pub fn new(idle_secs: u64, offline_secs: u64, probability: f64) -> Self {
        PerturbRun {
            nodes: 1000,
            operations: 1000,
            idle_secs,
            offline_secs,
            probability,
            deadline_cap_secs: 60,
            loss_probability: 0.0,
            seed: 42,
        }
    }

    /// Sets the stage-2 link-loss probability.
    pub fn with_loss(mut self, loss_probability: f64) -> Self {
        self.loss_probability = loss_probability;
        self
    }

    /// One full flapping period (idle + offline).
    pub fn period(&self) -> SimDuration {
        SimDuration::from_secs(self.idle_secs + self.offline_secs)
    }

    /// The per-lookup deadline window: `min(period, cap)`.
    pub fn deadline_window(&self) -> SimDuration {
        SimDuration::from_secs((self.idle_secs + self.offline_secs).min(self.deadline_cap_secs))
    }
}

/// Which engine a scenario runs, with its engine-specific knobs.
///
/// Each variant reproduces one of the original experiment methodologies
/// exactly, including its latency model and RNG stream layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineSpec {
    /// MSPastry with full maintenance over transit-stub latencies
    /// (Figures 1 and 11), optionally with Replication on Route.
    Pastry {
        /// Leave replicas along the insert route (the "RR" variant).
        replication_on_route: bool,
    },
    /// Chord with stabilize/fix-fingers/check-predecessor, constant
    /// latency (the `ext_dht_comparison` baseline).
    Chord,
    /// Kademlia with the given `(k, alpha)`, constant latency.
    Kademlia {
        /// Bucket size / replication factor.
        k: usize,
        /// Lookup parallelism.
        alpha: usize,
    },
    /// MPIL over the frozen Pastry overlay with transit-stub latencies
    /// and zero maintenance — "MPIL with/without DS" in Figures 11–12.
    MpilOverPastry {
        /// Duplicate suppression on/off.
        duplicate_suppression: bool,
    },
    /// MPIL (no maintenance, no DS) over the frozen neighbor graph of
    /// any overlay family, constant latency (the overlay-independence
    /// extensions).
    MpilOver(OverlaySource),
    /// The epidemic/unstructured engine: gossip-maintained partial
    /// views with either k-random-walk or expanding-ring lookups,
    /// constant latency.
    Gossip {
        /// Partial-view bound (membership out-degree).
        view: usize,
        /// Random walks per lookup (ignored by the ring strategy).
        walkers: usize,
        /// Walk hop budget / ring TTL cap.
        ttl: u32,
        /// How lookups spread.
        strategy: LookupStrategy,
    },
    /// The two-layer epidemic engine: HyParView membership under
    /// Plumtree dissemination, with tree-query or FOAF-walk lookups,
    /// constant latency.
    Epidemic {
        /// Active-view bound (symmetric protocol links).
        active: usize,
        /// Passive-view bound (reactive-replacement reservoir).
        passive: usize,
        /// How lookups spread (`Plumtree` or `Foaf`).
        strategy: LookupStrategy,
    },
}

impl EngineSpec {
    /// The system label used in figure legends and table rows.
    pub fn label(&self) -> String {
        match self {
            EngineSpec::Pastry {
                replication_on_route: false,
            } => "MSPastry".into(),
            EngineSpec::Pastry {
                replication_on_route: true,
            } => "MSPastry with RR".into(),
            EngineSpec::Chord => "Chord".into(),
            EngineSpec::Kademlia { k, alpha } => format!("Kademlia k={k} α={alpha}"),
            EngineSpec::MpilOverPastry {
                duplicate_suppression: true,
            } => "MPIL with DS".into(),
            EngineSpec::MpilOverPastry {
                duplicate_suppression: false,
            } => "MPIL without DS".into(),
            EngineSpec::MpilOver(src) => format!("MPIL over {}", src.label()),
            EngineSpec::Gossip {
                view,
                walkers,
                ttl,
                strategy: LookupStrategy::KRandomWalk,
            } => format!("Gossip k-walk view={view} k={walkers} ttl={ttl}"),
            EngineSpec::Gossip {
                view,
                ttl,
                strategy: LookupStrategy::ExpandingRing,
                ..
            } => format!("Gossip ring view={view} ttl={ttl}"),
            EngineSpec::Gossip { strategy, .. } => {
                unreachable!("GossipConfig rejects {strategy:?}")
            }
            EngineSpec::Epidemic {
                active,
                passive,
                strategy: LookupStrategy::Plumtree,
            } => format!("Plumtree active={active} passive={passive}"),
            EngineSpec::Epidemic {
                active,
                passive,
                strategy: LookupStrategy::Foaf,
            } => format!("FOAF active={active} passive={passive}"),
            EngineSpec::Epidemic { strategy, .. } => {
                unreachable!("EpidemicConfig rejects {strategy:?}")
            }
        }
    }
}

impl fmt::Display for EngineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A fully-specified experiment: an engine plus run parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Which engine (and engine knobs) to run.
    pub engine: EngineSpec,
    /// Overlay size, workload, perturbation schedule, seed.
    pub run: PerturbRun,
}

impl Scenario {
    /// Pairs an engine with run parameters.
    pub fn new(engine: EngineSpec, run: PerturbRun) -> Self {
        Scenario { engine, run }
    }

    /// The single label all drivers and table emitters use: the engine
    /// label (scenario rows vary the engine; sweep variables go in
    /// column headers).
    pub fn label(&self) -> String {
        self.engine.label()
    }

    /// Builds the engine converged and ready for stage 1, with the
    /// workload objects drawn and the RNG parked exactly where the
    /// perturbation stage expects it.
    pub fn build(&self) -> PreparedRun {
        let run = self.run;
        match self.engine {
            EngineSpec::Pastry {
                replication_on_route,
            } => {
                let mut rng = SmallRng::seed_from_u64(run.seed);
                let config =
                    PastryConfig::default().with_replication_on_route(replication_on_route);
                let ids = mpil_pastry::bootstrap::random_ids(run.nodes, &mut rng);
                let states = mpil_pastry::build_converged_states(&ids, &config, &mut rng);
                let ts = transit_stub::generate(run.nodes, TransitStubConfig::default(), &mut rng)
                    .expect("transit-stub generation"); // mpil-lint: allow(P001, default transit-stub parameters always produce a graph)
                let latency = TransitStubLatency::new(ts, 0.1);
                let sim = PastrySim::new(
                    ids,
                    states,
                    config,
                    Box::new(AlwaysOn),
                    Box::new(latency),
                    run.seed ^ 0x5151,
                );
                let objects = draw_objects(run.operations, &mut rng);
                PreparedRun {
                    engine: Box::new(sim),
                    origin: NodeIdx::new(0),
                    objects,
                    rng,
                    maintenance: true,
                    warmup_secs: 90,
                }
            }
            EngineSpec::Chord => {
                let config = ChordConfig::default();
                let mut rng = SmallRng::seed_from_u64(run.seed);
                let ids = mpil_chord::random_ids(run.nodes, &mut rng);
                let states = mpil_chord::build_converged_states(&ids, &config);
                let sim = ChordSim::new(
                    ids,
                    states,
                    config,
                    Box::new(AlwaysOn),
                    Box::new(ConstantLatency(SimDuration::from_millis(20))),
                    run.seed ^ 0x5151,
                );
                let objects = draw_objects(run.operations, &mut rng);
                PreparedRun {
                    engine: Box::new(sim),
                    origin: NodeIdx::new(0),
                    objects,
                    rng,
                    maintenance: true,
                    warmup_secs: 0,
                }
            }
            EngineSpec::Kademlia { k, alpha } => {
                let config = KademliaConfig::default().with_k(k).with_alpha(alpha);
                let mut rng = SmallRng::seed_from_u64(run.seed);
                // Historical quirk, kept for stream compatibility: the
                // Kademlia baseline (and OverlaySource::Kademlia) draw
                // their ids through the Chord helper.
                let ids = mpil_chord::random_ids(run.nodes, &mut rng);
                let tables = mpil_kademlia::build_converged_tables(&ids, &config);
                let sim = KademliaSim::new(
                    ids,
                    tables,
                    config,
                    Box::new(AlwaysOn),
                    Box::new(ConstantLatency(SimDuration::from_millis(20))),
                    run.seed ^ 0x5151,
                );
                let objects = draw_objects(run.operations, &mut rng);
                PreparedRun {
                    engine: Box::new(sim),
                    origin: NodeIdx::new(0),
                    objects,
                    rng,
                    maintenance: true,
                    warmup_secs: 0,
                }
            }
            EngineSpec::MpilOverPastry {
                duplicate_suppression,
            } => {
                let mut rng = SmallRng::seed_from_u64(run.seed);
                // Build the same structured overlay MSPastry would have...
                let pastry_config = PastryConfig::default();
                let ids = mpil_pastry::bootstrap::random_ids(run.nodes, &mut rng);
                let states = mpil_pastry::build_converged_states(&ids, &pastry_config, &mut rng);
                let neighbors: Vec<Vec<NodeIdx>> =
                    states.iter().map(|s| s.neighbor_list()).collect();
                let ts = transit_stub::generate(run.nodes, TransitStubConfig::default(), &mut rng)
                    .expect("transit-stub generation"); // mpil-lint: allow(P001, default transit-stub parameters always produce a graph)
                let latency = TransitStubLatency::new(ts, 0.1);
                // ...then route on it with MPIL and zero maintenance.
                let mpil_config = MpilConfig::default()
                    .with_max_flows(10)
                    .with_num_replicas(5)
                    .with_duplicate_suppression(duplicate_suppression);
                let net = DynamicNetwork::new(
                    ids,
                    neighbors,
                    DynamicConfig {
                        mpil: mpil_config,
                        heartbeat_period: None,
                    },
                    Box::new(AlwaysOn),
                    Box::new(latency),
                    run.seed ^ 0x5151,
                );
                let objects = draw_objects(run.operations, &mut rng);
                PreparedRun {
                    engine: Box::new(net),
                    origin: NodeIdx::new(0),
                    objects,
                    rng,
                    maintenance: false,
                    warmup_secs: 0,
                }
            }
            EngineSpec::MpilOver(source) => {
                let (ids, neighbors) = source.build(run.nodes, run.seed);
                let mut rng = SmallRng::seed_from_u64(run.seed ^ 0xdada);
                let mpil_config = MpilConfig::default()
                    .with_max_flows(10)
                    .with_num_replicas(5)
                    .with_duplicate_suppression(false);
                let net = DynamicNetwork::new(
                    ids,
                    neighbors,
                    DynamicConfig {
                        mpil: mpil_config,
                        heartbeat_period: None,
                    },
                    Box::new(AlwaysOn),
                    Box::new(ConstantLatency(SimDuration::from_millis(20))),
                    run.seed ^ 0x5151,
                );
                let objects = draw_objects(run.operations, &mut rng);
                PreparedRun {
                    engine: Box::new(net),
                    origin: NodeIdx::new(0),
                    objects,
                    rng,
                    maintenance: false,
                    warmup_secs: 0,
                }
            }
            EngineSpec::Gossip {
                view,
                walkers,
                ttl,
                strategy,
            } => {
                let mut rng = SmallRng::seed_from_u64(run.seed);
                let config = GossipConfig::default()
                    .with_view_size(view)
                    .with_walkers(walkers)
                    .with_ttl(ttl)
                    .with_strategy(strategy);
                let views = mpil_gossip::build_converged_views(run.nodes, view, &mut rng);
                let sim = GossipSim::new(
                    views,
                    config,
                    Box::new(AlwaysOn),
                    Box::new(ConstantLatency(SimDuration::from_millis(20))),
                    run.seed ^ 0x5151,
                );
                let objects = draw_objects(run.operations, &mut rng);
                PreparedRun {
                    engine: Box::new(sim),
                    origin: NodeIdx::new(0),
                    objects,
                    rng,
                    maintenance: true,
                    warmup_secs: 0,
                }
            }
            EngineSpec::Epidemic {
                active,
                passive,
                strategy,
            } => {
                let mut rng = SmallRng::seed_from_u64(run.seed);
                let config = EpidemicConfig::default()
                    .with_views(active, passive)
                    .with_strategy(strategy);
                let members =
                    mpil_gossip::build_converged_membership(run.nodes, active, passive, &mut rng);
                let sim = EpidemicSim::new(
                    members,
                    config,
                    Box::new(AlwaysOn),
                    Box::new(ConstantLatency(SimDuration::from_millis(20))),
                    run.seed ^ 0x5151,
                );
                let objects = draw_objects(run.operations, &mut rng);
                PreparedRun {
                    engine: Box::new(sim),
                    origin: NodeIdx::new(0),
                    objects,
                    rng,
                    maintenance: true,
                    warmup_secs: 0,
                }
            }
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = &self.run;
        write!(
            f,
            "{} ({} nodes, {} ops, idle:offline={}:{}, p={}, loss={}, seed={})",
            self.engine.label(),
            r.nodes,
            r.operations,
            r.idle_secs,
            r.offline_secs,
            r.probability,
            r.loss_probability,
            r.seed
        )
    }
}

/// A converged engine plus everything stage 2 needs, in exact legacy
/// RNG order.
pub struct PreparedRun {
    /// The engine, converged and quiet.
    pub engine: Box<dyn DiscoveryEngine>,
    /// The designated measurement origin (exempt from flapping).
    pub origin: NodeIdx,
    /// The workload objects, already drawn.
    pub objects: Vec<Id>,
    /// The scenario RNG, parked where the flapping model expects it.
    pub rng: SmallRng,
    /// Whether to turn on overlay maintenance before perturbing.
    pub maintenance: bool,
    /// Seconds to run between starting maintenance and perturbing.
    pub warmup_secs: u64,
}

fn draw_objects(operations: usize, rng: &mut SmallRng) -> Vec<Id> {
    (0..operations).map(|_| Id::random(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_legacy_legend() {
        assert_eq!(
            EngineSpec::Pastry {
                replication_on_route: false
            }
            .label(),
            "MSPastry"
        );
        assert_eq!(
            EngineSpec::Pastry {
                replication_on_route: true
            }
            .label(),
            "MSPastry with RR"
        );
        assert_eq!(
            EngineSpec::MpilOverPastry {
                duplicate_suppression: true
            }
            .label(),
            "MPIL with DS"
        );
        assert_eq!(
            EngineSpec::MpilOverPastry {
                duplicate_suppression: false
            }
            .label(),
            "MPIL without DS"
        );
        assert_eq!(
            EngineSpec::Kademlia { k: 8, alpha: 3 }.label(),
            "Kademlia k=8 α=3"
        );
        assert_eq!(
            EngineSpec::MpilOver(OverlaySource::Chord).label(),
            "MPIL over Chord overlay"
        );
        assert_eq!(
            EngineSpec::Gossip {
                view: 8,
                walkers: 8,
                ttl: 16,
                strategy: LookupStrategy::KRandomWalk
            }
            .label(),
            "Gossip k-walk view=8 k=8 ttl=16"
        );
        assert_eq!(
            EngineSpec::Gossip {
                view: 8,
                walkers: 8,
                ttl: 8,
                strategy: LookupStrategy::ExpandingRing
            }
            .label(),
            "Gossip ring view=8 ttl=8"
        );
        assert_eq!(
            EngineSpec::MpilOver(OverlaySource::Gossip { view: 8 }).label(),
            "MPIL over gossip view=8"
        );
        assert_eq!(
            EngineSpec::Epidemic {
                active: 5,
                passive: 24,
                strategy: LookupStrategy::Plumtree
            }
            .label(),
            "Plumtree active=5 passive=24"
        );
        assert_eq!(
            EngineSpec::Epidemic {
                active: 5,
                passive: 24,
                strategy: LookupStrategy::Foaf
            }
            .label(),
            "FOAF active=5 passive=24"
        );
        assert_eq!(
            EngineSpec::MpilOver(OverlaySource::HyParView { active: 5 }).label(),
            "MPIL over hyparview active=5"
        );
    }

    #[test]
    fn scenario_display_names_the_sweep_variables() {
        let s = Scenario::new(EngineSpec::Chord, PerturbRun::new(30, 30, 0.5));
        let text = s.to_string();
        assert!(text.contains("Chord"));
        assert!(text.contains("idle:offline=30:30"));
        assert!(text.contains("p=0.5"));
    }

    #[test]
    fn build_prepares_each_engine_kind() {
        let mut run = PerturbRun::new(30, 30, 0.0);
        run.nodes = 60;
        run.operations = 3;
        for spec in [
            EngineSpec::Pastry {
                replication_on_route: false,
            },
            EngineSpec::Chord,
            EngineSpec::Kademlia { k: 4, alpha: 2 },
            EngineSpec::MpilOverPastry {
                duplicate_suppression: false,
            },
            EngineSpec::MpilOver(OverlaySource::RandomRegular(8)),
            EngineSpec::MpilOver(OverlaySource::Gossip { view: 8 }),
            EngineSpec::Gossip {
                view: 8,
                walkers: 8,
                ttl: 16,
                strategy: LookupStrategy::KRandomWalk,
            },
            EngineSpec::Gossip {
                view: 8,
                walkers: 8,
                ttl: 8,
                strategy: LookupStrategy::ExpandingRing,
            },
            EngineSpec::Epidemic {
                active: 5,
                passive: 24,
                strategy: LookupStrategy::Plumtree,
            },
            EngineSpec::Epidemic {
                active: 5,
                passive: 24,
                strategy: LookupStrategy::Foaf,
            },
            EngineSpec::MpilOver(OverlaySource::HyParView { active: 5 }),
        ] {
            let prepared = Scenario::new(spec, run).build();
            assert_eq!(prepared.engine.len(), 60, "{}", spec.label());
            assert_eq!(prepared.objects.len(), 3, "{}", spec.label());
            assert_eq!(prepared.origin, NodeIdx::new(0));
        }
    }

    #[test]
    fn deadline_window_is_capped() {
        let run = PerturbRun::new(300, 300, 0.5);
        assert_eq!(run.period(), SimDuration::from_secs(600));
        assert_eq!(run.deadline_window(), SimDuration::from_secs(60));
        let short = PerturbRun::new(1, 1, 0.5);
        assert_eq!(short.deadline_window(), SimDuration::from_secs(2));
    }
}
