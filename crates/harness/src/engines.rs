//! [`DiscoveryEngine`] implementations for all five engines.
//!
//! Each impl is a direct mapping onto the engine's existing inherent
//! API — no behavior lives here, so driving an engine through the trait
//! is bit-identical to driving it directly.

use mpil::{DynamicNetwork, MessageId};
use mpil_chord::ChordSim;
use mpil_gossip::{EpidemicSim, GossipSim, LookupStrategy};
use mpil_id::Id;
use mpil_kademlia::KademliaSim;
use mpil_overlay::NodeIdx;
use mpil_pastry::PastrySim;
use mpil_sim::{Availability, LookupOutcome, NetStats, SimTime};

use crate::engine::{Counters, DiscoveryEngine, LookupHandle};

impl DiscoveryEngine for DynamicNetwork {
    fn name(&self) -> &'static str {
        "MPIL"
    }

    fn len(&self) -> usize {
        DynamicNetwork::len(self)
    }

    fn now(&self) -> SimTime {
        DynamicNetwork::now(self)
    }

    fn insert(&mut self, origin: NodeIdx, object: Id) {
        let _ = DynamicNetwork::insert(self, origin, object);
    }

    fn issue_lookup(&mut self, origin: NodeIdx, object: Id, deadline: SimTime) -> LookupHandle {
        LookupHandle(DynamicNetwork::issue_lookup(self, origin, object, deadline).0)
    }

    fn lookup_outcome(&self, lookup: LookupHandle) -> LookupOutcome {
        self.lookup_status(MessageId(lookup.0))
    }

    fn set_availability(&mut self, availability: Box<dyn Availability>) {
        DynamicNetwork::set_availability(self, availability);
    }

    fn set_loss_probability(&mut self, p: f64) {
        DynamicNetwork::set_loss_probability(self, p);
    }

    fn replica_holders(&self, object: Id) -> Vec<NodeIdx> {
        DynamicNetwork::replica_holders(self, object)
    }

    fn replica_count(&self, object: Id) -> usize {
        DynamicNetwork::replica_count(self, object)
    }

    fn run_until(&mut self, deadline: SimTime) {
        DynamicNetwork::run_until(self, deadline);
    }

    fn run_to_quiescence(&mut self) {
        DynamicNetwork::run_to_quiescence(self);
    }

    fn counters(&self) -> Counters {
        let s = self.stats();
        Counters {
            lookup_messages: s.lookup_messages,
            insert_messages: s.insert_messages,
            reply_messages: s.replies_sent,
            maintenance_messages: s.heartbeats_sent + s.deletes_sent,
            // MPIL sends no acks: the kernel's send count is the total.
            total_messages: self.net_stats().sent,
        }
    }

    fn net_stats(&self) -> NetStats {
        DynamicNetwork::net_stats(self)
    }
}

impl DiscoveryEngine for ChordSim {
    fn name(&self) -> &'static str {
        "Chord"
    }

    fn len(&self) -> usize {
        ChordSim::len(self)
    }

    fn now(&self) -> SimTime {
        ChordSim::now(self)
    }

    fn insert(&mut self, origin: NodeIdx, object: Id) {
        ChordSim::insert(self, origin, object);
    }

    fn issue_lookup(&mut self, origin: NodeIdx, object: Id, deadline: SimTime) -> LookupHandle {
        LookupHandle(ChordSim::issue_lookup(self, origin, object, deadline))
    }

    fn lookup_outcome(&self, lookup: LookupHandle) -> LookupOutcome {
        ChordSim::lookup_outcome(self, lookup.0)
    }

    fn join(&mut self, joiner: NodeIdx, bootstrap: NodeIdx) -> bool {
        ChordSim::join(self, joiner, bootstrap);
        true
    }

    fn start_maintenance(&mut self) {
        ChordSim::start_maintenance(self);
    }

    fn set_availability(&mut self, availability: Box<dyn Availability>) {
        ChordSim::set_availability(self, availability);
    }

    fn set_loss_probability(&mut self, p: f64) {
        ChordSim::set_loss_probability(self, p);
    }

    fn replica_holders(&self, object: Id) -> Vec<NodeIdx> {
        ChordSim::replica_holders(self, object)
    }

    fn replica_count(&self, object: Id) -> usize {
        ChordSim::replica_count(self, object)
    }

    fn run_until(&mut self, deadline: SimTime) {
        ChordSim::run_until(self, deadline);
    }

    fn run_to_quiescence(&mut self) {
        ChordSim::run_to_quiescence(self);
    }

    fn counters(&self) -> Counters {
        let s = self.stats();
        Counters {
            lookup_messages: s.lookup_messages,
            insert_messages: s.insert_messages,
            reply_messages: s.reply_messages,
            maintenance_messages: s.maintenance_messages,
            total_messages: s.total_messages(),
        }
    }

    fn net_stats(&self) -> NetStats {
        ChordSim::net_stats(self)
    }
}

impl DiscoveryEngine for KademliaSim {
    fn name(&self) -> &'static str {
        "Kademlia"
    }

    fn len(&self) -> usize {
        KademliaSim::len(self)
    }

    fn now(&self) -> SimTime {
        KademliaSim::now(self)
    }

    fn insert(&mut self, origin: NodeIdx, object: Id) {
        KademliaSim::insert(self, origin, object);
    }

    fn issue_lookup(&mut self, origin: NodeIdx, object: Id, deadline: SimTime) -> LookupHandle {
        LookupHandle(KademliaSim::issue_lookup(self, origin, object, deadline))
    }

    fn lookup_outcome(&self, lookup: LookupHandle) -> LookupOutcome {
        KademliaSim::lookup_outcome(self, lookup.0)
    }

    fn start_maintenance(&mut self) {
        KademliaSim::start_maintenance(self);
    }

    fn set_availability(&mut self, availability: Box<dyn Availability>) {
        KademliaSim::set_availability(self, availability);
    }

    fn set_loss_probability(&mut self, p: f64) {
        KademliaSim::set_loss_probability(self, p);
    }

    fn replica_holders(&self, object: Id) -> Vec<NodeIdx> {
        KademliaSim::replica_holders(self, object)
    }

    fn replica_count(&self, object: Id) -> usize {
        KademliaSim::replica_count(self, object)
    }

    fn run_until(&mut self, deadline: SimTime) {
        KademliaSim::run_until(self, deadline);
    }

    fn run_to_quiescence(&mut self) {
        KademliaSim::run_to_quiescence(self);
    }

    fn counters(&self) -> Counters {
        let s = self.stats();
        Counters {
            lookup_messages: s.lookup_messages,
            insert_messages: s.insert_messages,
            reply_messages: s.reply_messages,
            maintenance_messages: s.maintenance_messages,
            total_messages: s.total_messages(),
        }
    }

    fn net_stats(&self) -> NetStats {
        KademliaSim::net_stats(self)
    }
}

impl DiscoveryEngine for GossipSim {
    fn name(&self) -> &'static str {
        "Gossip"
    }

    fn len(&self) -> usize {
        GossipSim::len(self)
    }

    fn now(&self) -> SimTime {
        GossipSim::now(self)
    }

    fn insert(&mut self, origin: NodeIdx, object: Id) {
        GossipSim::insert(self, origin, object);
    }

    fn issue_lookup(&mut self, origin: NodeIdx, object: Id, deadline: SimTime) -> LookupHandle {
        LookupHandle(GossipSim::issue_lookup(self, origin, object, deadline))
    }

    fn lookup_outcome(&self, lookup: LookupHandle) -> LookupOutcome {
        GossipSim::lookup_outcome(self, lookup.0)
    }

    fn join(&mut self, joiner: NodeIdx, bootstrap: NodeIdx) -> bool {
        GossipSim::join(self, joiner, bootstrap);
        true
    }

    fn start_maintenance(&mut self) {
        GossipSim::start_maintenance(self);
    }

    fn set_availability(&mut self, availability: Box<dyn Availability>) {
        GossipSim::set_availability(self, availability);
    }

    fn set_loss_probability(&mut self, p: f64) {
        GossipSim::set_loss_probability(self, p);
    }

    fn replica_holders(&self, object: Id) -> Vec<NodeIdx> {
        GossipSim::replica_holders(self, object)
    }

    fn replica_count(&self, object: Id) -> usize {
        GossipSim::replica_count(self, object)
    }

    fn run_until(&mut self, deadline: SimTime) {
        GossipSim::run_until(self, deadline);
    }

    fn run_to_quiescence(&mut self) {
        GossipSim::run_to_quiescence(self);
    }

    fn counters(&self) -> Counters {
        let s = self.stats();
        Counters {
            lookup_messages: s.lookup_messages,
            insert_messages: s.insert_messages,
            reply_messages: s.reply_messages,
            maintenance_messages: s.maintenance_messages,
            total_messages: s.total_messages(),
        }
    }

    fn net_stats(&self) -> NetStats {
        GossipSim::net_stats(self)
    }
}

impl DiscoveryEngine for EpidemicSim {
    fn name(&self) -> &'static str {
        match self.config().strategy {
            LookupStrategy::Foaf => "FOAF",
            _ => "Plumtree",
        }
    }

    fn len(&self) -> usize {
        EpidemicSim::len(self)
    }

    fn now(&self) -> SimTime {
        EpidemicSim::now(self)
    }

    fn insert(&mut self, origin: NodeIdx, object: Id) {
        EpidemicSim::insert(self, origin, object);
    }

    fn issue_lookup(&mut self, origin: NodeIdx, object: Id, deadline: SimTime) -> LookupHandle {
        LookupHandle(EpidemicSim::issue_lookup(self, origin, object, deadline))
    }

    fn lookup_outcome(&self, lookup: LookupHandle) -> LookupOutcome {
        EpidemicSim::lookup_outcome(self, lookup.0)
    }

    fn join(&mut self, joiner: NodeIdx, bootstrap: NodeIdx) -> bool {
        EpidemicSim::join(self, joiner, bootstrap);
        true
    }

    fn start_maintenance(&mut self) {
        EpidemicSim::start_maintenance(self);
    }

    fn set_availability(&mut self, availability: Box<dyn Availability>) {
        EpidemicSim::set_availability(self, availability);
    }

    fn set_loss_probability(&mut self, p: f64) {
        EpidemicSim::set_loss_probability(self, p);
    }

    fn replica_holders(&self, object: Id) -> Vec<NodeIdx> {
        EpidemicSim::replica_holders(self, object)
    }

    fn replica_count(&self, object: Id) -> usize {
        EpidemicSim::replica_count(self, object)
    }

    fn run_until(&mut self, deadline: SimTime) {
        EpidemicSim::run_until(self, deadline);
    }

    fn run_to_quiescence(&mut self) {
        EpidemicSim::run_to_quiescence(self);
    }

    fn counters(&self) -> Counters {
        let s = self.stats();
        Counters {
            lookup_messages: s.lookup_messages,
            insert_messages: s.insert_messages,
            reply_messages: s.reply_messages,
            maintenance_messages: s.maintenance_messages,
            total_messages: s.total_messages(),
        }
    }

    fn net_stats(&self) -> NetStats {
        EpidemicSim::net_stats(self)
    }
}

impl DiscoveryEngine for PastrySim {
    fn name(&self) -> &'static str {
        "MSPastry"
    }

    fn len(&self) -> usize {
        PastrySim::len(self)
    }

    fn now(&self) -> SimTime {
        PastrySim::now(self)
    }

    fn insert(&mut self, origin: NodeIdx, object: Id) {
        PastrySim::insert(self, origin, object);
    }

    fn issue_lookup(&mut self, origin: NodeIdx, object: Id, deadline: SimTime) -> LookupHandle {
        LookupHandle(PastrySim::issue_lookup(self, origin, object, deadline))
    }

    fn lookup_outcome(&self, lookup: LookupHandle) -> LookupOutcome {
        PastrySim::lookup_outcome(self, lookup.0)
    }

    fn join(&mut self, joiner: NodeIdx, bootstrap: NodeIdx) -> bool {
        PastrySim::join(self, joiner, bootstrap);
        true
    }

    fn start_maintenance(&mut self) {
        PastrySim::start_maintenance(self);
    }

    fn set_availability(&mut self, availability: Box<dyn Availability>) {
        PastrySim::set_availability(self, availability);
    }

    fn set_loss_probability(&mut self, p: f64) {
        PastrySim::set_loss_probability(self, p);
    }

    fn replica_holders(&self, object: Id) -> Vec<NodeIdx> {
        PastrySim::replica_holders(self, object)
    }

    fn replica_count(&self, object: Id) -> usize {
        PastrySim::replica_count(self, object)
    }

    fn run_until(&mut self, deadline: SimTime) {
        PastrySim::run_until(self, deadline);
    }

    fn run_to_quiescence(&mut self) {
        PastrySim::run_to_quiescence(self);
    }

    fn counters(&self) -> Counters {
        let s = self.stats();
        Counters {
            lookup_messages: s.lookup_messages,
            insert_messages: s.insert_messages,
            reply_messages: s.reply_messages,
            maintenance_messages: s.maintenance_messages,
            total_messages: s.total_messages(),
        }
    }

    fn net_stats(&self) -> NetStats {
        PastrySim::net_stats(self)
    }
}
